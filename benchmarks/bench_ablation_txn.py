"""Ablation ABL-TXN — Aria's deterministic reordering optimisation.

StateFlow's protocol is "an extension of Aria" (Section 3).  Aria's
deterministic reordering commits transactions whose only conflicts are
write-after-read; without it every RAW conflict aborts.  We drive a
high-contention transfer workload (hot zipfian keys, small key space)
through the pure protocol logic and compare abort rates, then check the
end-to-end latency effect on the full runtime.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import env_ms, format_table, run_ycsb_cell
from repro.runtimes.stateflow.aria import BatchMember, decide
from repro.workloads.distributions import ZipfianDistribution


def synth_batch(size: int, keys: int, seed: int) -> list[BatchMember]:
    """A hot-key batch mixing blind writers with read-only scans.

    Read-only transactions that read under a smaller-TID writer have a
    pure RAW conflict (they never write, so no WAR): Aria's reordering
    commits them by serializing them before the writer, while the
    baseline aborts them.
    """
    dist = ZipfianDistribution(keys, seed=seed)
    members = []
    for tid in range(size):
        first = ("Account", dist.next_index())
        second = ("Account", dist.next_index())
        if tid % 2 == 0:  # blind writer
            members.append(BatchMember(
                tid=tid, read_set=frozenset(),
                write_set=frozenset({first})))
        else:  # read-only scan over two keys
            members.append(BatchMember(
                tid=tid, read_set=frozenset({first, second}),
                write_set=frozenset()))
    return members


def run_reordering_ablation():
    results = {}
    for reordering in (True, False):
        aborts = total = 0
        for seed in range(40):
            members = synth_batch(size=24, keys=32, seed=seed)
            report = decide(members, reordering=reordering)
            aborts += report.abort_count
            total += len(members)
        results[reordering] = aborts / total
    return results


def test_ablation_reordering_abort_rate(benchmark):
    results = benchmark.pedantic(run_reordering_ablation, rounds=1,
                                 iterations=1)
    emit("ablation_txn_reordering", "\n".join([
        "ABL-TXN: Aria deterministic reordering (abort rate, hot batch)",
        "-" * 60,
        f"with reordering:    {results[True]:.2%}",
        f"without reordering: {results[False]:.2%}",
    ]))
    assert results[True] < results[False], (
        "reordering must save pure-RAW readers from aborting")


def test_ablation_contention_latency(benchmark):
    """End-to-end: hot keys (64) vs the paper's 1000-key table."""
    duration = env_ms("REPRO_ABL_DURATION_MS", 8_000.0)

    def run_cells():
        hot = run_ycsb_cell("stateflow", "T", "zipfian", rps=400.0,
                            duration_ms=duration, record_count=64,
                            seed=7)
        hot.extra["contention"] = "hot-64-keys"
        cold = run_ycsb_cell("stateflow", "T", "zipfian", rps=400.0,
                             duration_ms=duration, record_count=1000,
                             seed=7)
        cold.extra["contention"] = "paper-1000-keys"
        return [hot, cold]

    rows = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    emit("ablation_txn_contention", format_table(
        rows, "ABL-TXN: contention effect on transactional latency",
        columns=["system", "workload", "contention", "p50_ms", "p99_ms",
                 "txn_aborts", "txn_retries", "completed"]))
    hot, cold = rows
    assert hot.extra["txn_aborts"] >= cold.extra["txn_aborts"], (
        "hot keys must produce at least as many aborts")
