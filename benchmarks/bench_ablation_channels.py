"""Ablation ABL-COMM — direct channels vs Kafka loop-backs.

The paper attributes StateFlow's win over Statefun to "internal
function-to-function communication [that] does not require the roundtrips
to Kafka" (Section 4).  This ablation isolates that design choice: the
same StateFlow runtime, transactional workload T, with its inter-worker
channels either direct (production mode) or forced through a Kafka
loop-back topic per hop (what a cycle-free dataflow engine must do).
"""

from __future__ import annotations

from conftest import emit

from repro.bench import env_ms, format_table, run_ycsb_cell


def run_channel_ablation():
    duration = env_ms("REPRO_ABL_DURATION_MS", 10_000.0)
    rows = []
    for mode in ("direct", "kafka"):
        row = run_ycsb_cell(
            "stateflow", "T", "zipfian", rps=100.0, duration_ms=duration,
            runtime_overrides={"channel_mode": mode})
        row.extra["channel_mode"] = mode
        rows.append(row)
    return rows


def test_ablation_channels(benchmark):
    rows = benchmark.pedantic(run_channel_ablation, rounds=1, iterations=1)
    emit("ablation_channels", format_table(
        rows, "ABL-COMM: function-to-function channels (workload T)",
        columns=["system", "workload", "channel_mode", "p50_ms", "p99_ms",
                 "completed"]))
    direct, kafka = rows
    assert direct.p99_ms < kafka.p99_ms, (
        "direct channels must beat per-hop Kafka loop-backs")
