"""Ablation ABL-SPLIT — splitting granularity.

The paper's algorithm splits "either when a remote call occurs or on a
control-flow structure" (Section 2.4).  Our compiler only splits control
flow that actually contains remote interactions; this ablation compares
the two policies: block counts per method, and end-to-end latency of a
control-flow-heavy method on the Local runtime.
"""

from __future__ import annotations

import time

from conftest import emit

from repro import compile_program
from repro.runtimes import LocalRuntime
from repro.workloads.tpcc import TPCC_ENTITIES


def _block_counts(split_all: bool) -> dict[str, int]:
    program = compile_program(TPCC_ENTITIES,
                              split_all_control_flow=split_all)
    counts = {}
    for name, compiled in program.entities.items():
        for method, machine in ((m, cm.machine)
                                for m, cm in compiled.methods.items()):
            counts[f"{name}.{method}"] = len(machine.nodes)
    return counts


def _latency_us(split_all: bool, rounds: int = 300) -> float:
    from repro.core.refs import EntityRef
    from repro.workloads import order_line_refs, sample_dataset

    program = compile_program(TPCC_ENTITIES,
                              split_all_control_flow=split_all)
    runtime = LocalRuntime(program, check_state_serializable=False)
    for entity_name, rows in sample_dataset().items():
        for args in rows:
            runtime.create(entity_name, *args)
    customer = EntityRef("Customer", "wh-0:d-0:c-0")
    district = EntityRef("District", "wh-0:d-0")
    lines = order_line_refs("wh-0", [1, 2, 3])
    started = time.perf_counter()
    for _ in range(rounds):
        runtime.call(customer, "new_order", district, lines, [1, 1, 1])
    return (time.perf_counter() - started) / rounds * 1e6


def run_split_ablation():
    lazy_counts = _block_counts(False)
    eager_counts = _block_counts(True)
    return {
        "lazy_blocks": sum(lazy_counts.values()),
        "eager_blocks": sum(eager_counts.values()),
        "lazy_us": _latency_us(False),
        "eager_us": _latency_us(True),
        "per_method": {name: (lazy_counts[name], eager_counts[name])
                       for name in lazy_counts},
    }


def test_ablation_split_granularity(benchmark):
    results = benchmark.pedantic(run_split_ablation, rounds=1, iterations=1)
    lines = [
        "ABL-SPLIT: splitting granularity (TPC-C entities)",
        "-" * 52,
        f"total blocks  lazy={results['lazy_blocks']} "
        f"eager(paper-literal)={results['eager_blocks']}",
        f"NewOrder local latency  lazy={results['lazy_us']:.0f}us "
        f"eager={results['eager_us']:.0f}us",
        "",
        "method                        lazy  eager",
    ]
    for name, (lazy, eager) in sorted(results["per_method"].items()):
        lines.append(f"{name:28s}  {lazy:4d}  {eager:5d}")
    emit("ablation_split", "\n".join(lines))
    assert results["eager_blocks"] > results["lazy_blocks"]
    # Behaviour must be identical either way; latency may differ but
    # both stay in the sub-millisecond range locally.
    assert results["lazy_us"] < 10_000
    assert results["eager_us"] < 20_000
