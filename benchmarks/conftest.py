"""Shared helpers for the paper-figure benchmarks."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
