"""Figure 4 — p50/p99 latency vs input throughput, mixed workload M.

Regenerates the paper's Figure 4: both systems driven with workload M
(45% reads, 45% updates, 10% transfers) at increasing request rates from
1000 to 4000 RPS.

Shape assertions: Statefun's p99 diverges (its remote-function pool —
half the CPU budget — saturates) before the top rate, while StateFlow,
which "bundles execution, state, and messaging" on all its workers,
sustains the sweep with far lower latency.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import check_figure4_shape, format_table, run_figure4


def test_figure4_throughput(benchmark):
    rows = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    emit("fig4_throughput", format_table(
        rows, "Figure 4: latency vs input throughput (workload M)",
        columns=["system", "rps", "p50_ms", "p99_ms", "sent", "completed",
                 "errors"]))
    problems = check_figure4_shape(rows)
    assert not problems, problems
