"""Section 4 "System overhead" — runtime component breakdown.

Synthetic workload with entity state from 50 to 200 kB; for each event we
measure the duration of runtime components (object construction, function
execution, state serialisation, state storage, and the function-splitting
/ state-machine instrumentation).  The paper's claim under reproduction:
"function splitting/instrumentation is only responsible for less than 1%
of the total overhead."
"""

from __future__ import annotations

from conftest import emit

from repro.bench import (
    format_overhead_table,
    format_snapshot_table,
    run_overhead_breakdown,
    run_snapshot_overhead,
    snapshot_speedups,
)


def test_snapshot_overhead(benchmark):
    """Snapshotting must not deep-copy all committed state: the
    copy-on-write backend's snapshot is at least 5x cheaper than the
    dict backend's at >= 10k keys."""
    rows = benchmark.pedantic(
        run_snapshot_overhead,
        kwargs={"key_counts": [1_000, 10_000, 20_000]},
        rounds=1, iterations=1)
    emit("snapshot_overhead", format_snapshot_table(rows))
    speedups = snapshot_speedups(rows)
    assert {10_000, 20_000} <= set(speedups), (
        f"speedup cells missing for the large key counts: {speedups}")
    for keys, speedup in speedups.items():
        if keys >= 10_000:
            assert speedup >= 5.0, (
                f"cow snapshot should be >= 5x cheaper than dict at "
                f"{keys} keys; got {speedup:.1f}x")


def test_overhead_breakdown(benchmark):
    rows = benchmark.pedantic(
        run_overhead_breakdown,
        kwargs={"state_kbs": [50, 100, 150, 200], "operations": 300},
        rounds=1, iterations=1)
    emit("overhead_breakdown", format_overhead_table(rows))
    # The wall-clock <1% claim lives here, in the benchmark tier, where
    # timing ratios belong; tier 1 asserts the counted-operation
    # structure instead.  share() is None only for unmeasured
    # components — a real run measures all of them.
    for row in rows:
        assert row.split_share is not None
        assert row.split_share < 0.01, (
            f"split instrumentation should be <1% of total at "
            f"{row.state_kb} kB; got {row.split_share:.2%}")
    # Serialisation cost must grow with state size (sanity of the setup).
    serde = [row.component_ms["state_serde"] for row in rows]
    assert serde == sorted(serde)
