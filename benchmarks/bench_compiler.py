"""Compiler micro-benchmarks (Section 2.4 worked example).

Measures the cost of the pipeline itself: full compilation of the
Figure 1 shop application, splitting of the ``buy_item`` method, and the
per-invocation execution overhead of split vs direct code on the Local
runtime.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import ycsb_program
from repro.compiler import analyze_class, compile_program, split_method
from repro.compiler.callgraph import build_call_graph
from repro.runtimes import LocalRuntime
from repro.workloads.ycsb import Account


def test_compile_program_cost(benchmark):
    program = benchmark(compile_program, [Account])
    machines = program.entities["Account"].methods
    emit("compiler_summary", "\n".join([
        "Compiler pipeline (Account entity)",
        "----------------------------------",
        *(f"{name}: {len(m.machine.nodes)} block(s), "
          f"split={m.machine.is_split}" for name, m in machines.items()),
    ]))


def test_split_method_cost(benchmark):
    descriptor = analyze_class(Account)
    descriptors = {"Account": descriptor}
    graph = build_call_graph(descriptors)
    needs = graph.methods_needing_split()

    result = benchmark(split_method, descriptor, "transfer", descriptors,
                       needs)
    assert result.was_split
    assert result.entry == "transfer_0"


def test_local_invocation_cost(benchmark):
    """Per-invocation cost of the compiled (split) execution path."""
    program = ycsb_program()
    runtime = LocalRuntime(program, check_state_serializable=False)
    ref = runtime.create(Account, "bench-acct", 10_000)
    other = runtime.create(Account, "bench-other", 10_000)

    def one_transfer():
        # Amount 0 exercises the full split path without ever depleting
        # the source balance across benchmark rounds.
        return runtime.call(ref, "transfer", 0, other)

    assert benchmark(one_transfer) is True
