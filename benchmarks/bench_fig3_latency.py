"""Figure 3 — p99 latency, YCSB A/B/T x {zipfian, uniform} at 100 RPS.

Regenerates the bar series of the paper's Figure 3: Statefun and
StateFlow on YCSB A and B under both key distributions, plus StateFlow on
the transactional workload T (Statefun offers no transaction support and
is not run on T, exactly as in the paper).

Shape assertions (not absolute numbers — our substrate is a simulator):
- Statefun's p99 is roughly equal across workloads and distributions
  (no locking, every call pays the same external-runtime round trip);
- StateFlow beats Statefun on every A/B cell (direct function-to-function
  channels, no Kafka round trips per hop);
- StateFlow's T latency is the highest of its bars yet stays below the
  figure's 200 ms axis.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import check_figure3_shape, format_table, run_figure3


def test_figure3_latency(benchmark):
    rows = benchmark.pedantic(run_figure3, rounds=1, iterations=1)
    emit("fig3_latency", format_table(
        rows, "Figure 3: YCSB p99 latency at 100 RPS"))
    problems = check_figure3_shape(rows)
    assert not problems, problems
    flow_rows = [r for r in rows if r.system == "stateflow"]
    t_rows = [r for r in flow_rows if r.workload == "T"]
    ab_rows = [r for r in flow_rows if r.workload != "T"]
    assert min(r.p99_ms for r in t_rows) > max(r.p99_ms for r in ab_rows), (
        "transactional workload should cost more than single-key ops")
