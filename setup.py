"""Shim so ``pip install -e .`` also works on toolchains without the
``wheel`` package (legacy editable path); metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
