"""Partial TPC-C on StateFlow (the paper: "partly TPC-C ... with
promising performance").

Loads a small TPC-C universe (warehouses, districts, customers, stock),
then drives NewOrder and Payment transactions through the simulated
StateFlow deployment and prints latency and protocol statistics.

Run:  python examples/tpcc_demo.py
"""

import random

from repro import compile_program
from repro.core.refs import EntityRef
from repro.runtimes.stateflow import StateflowRuntime
from repro.workloads import (
    TPCC_ENTITIES,
    order_line_refs,
    sample_dataset,
)


def main() -> None:
    program = compile_program(TPCC_ENTITIES)
    runtime = StateflowRuntime(program)

    dataset = sample_dataset(warehouses=2, districts_per_wh=2,
                             customers_per_district=10, items=50)
    for entity_name, rows in dataset.items():
        runtime.preload(entity_name, rows)
    runtime.start()

    rng = random.Random(5)
    latencies: dict[str, list[float]] = {"new_order": [], "payment": []}
    for txn_index in range(60):
        warehouse = f"wh-{rng.randrange(2)}"
        district = f"{warehouse}:d-{rng.randrange(2)}"
        customer = EntityRef("Customer", f"{district}:c-{rng.randrange(10)}")
        if rng.random() < 0.6:
            items = rng.sample(range(50), k=rng.randint(1, 5))
            lines = order_line_refs(warehouse, items)
            quantities = [rng.randint(1, 5) for _ in items]
            result = runtime.invoke(customer, "new_order",
                                    EntityRef("District", district),
                                    lines, quantities)
            latencies["new_order"].append(result.latency_ms)
            assert result.ok and result.value >= 0, result.error
        else:
            result = runtime.invoke(customer, "payment", rng.randint(1, 500),
                                    EntityRef("Warehouse", warehouse),
                                    EntityRef("District", district))
            latencies["payment"].append(result.latency_ms)
            assert result.ok, result.error

    for name, values in latencies.items():
        values.sort()
        print(f"{name:9s}: n={len(values)} "
              f"p50={values[len(values) // 2]:.1f} ms "
              f"max={values[-1]:.1f} ms")
    print("aria:", runtime.coordinator.stats)

    # Money conservation: customer spending equals warehouse+district YTD.
    wh_ytd = sum(runtime.entity_state(EntityRef("Warehouse", f"wh-{w}"))["ytd"]
                 for w in range(2))
    print(f"warehouse YTD collected: {wh_ytd}")


if __name__ == "__main__":
    main()
