"""E-commerce checkout: a multi-entity saga without saga code.

The scenario the paper's introduction motivates: a web shop where the
business logic — reserve stock for every line item, charge the customer —
must stay consistent across partitioned state, without the programmer
writing retries, rollbacks, or idempotency bookkeeping.

``Cart.checkout`` iterates its line items (a while loop over remote
calls — split by the compiler), reserves stock, and charges the wallet;
``@transactional`` makes the whole call tree atomic on StateFlow.

Run:  python examples/ecommerce_checkout.py
"""

from repro import compile_program, entity, transactional
from repro.runtimes.stateflow import StateflowRuntime


@entity
class Product:
    def __init__(self, sku: str, price: int, stock: int):
        self.sku: str = sku
        self.price: int = price
        self.stock: int = stock

    def __key__(self):
        return self.sku

    def reserve(self, quantity: int) -> int:
        """Take stock; returns the line cost or -1 if unavailable."""
        if self.stock < quantity:
            return -1
        self.stock -= quantity
        return self.price * quantity

    def release(self, quantity: int) -> int:
        """Compensate a reservation (Figure 1's update_stock pattern)."""
        self.stock += quantity
        return self.stock


@entity
class Wallet:
    def __init__(self, owner: str, funds: int):
        self.owner: str = owner
        self.funds: int = funds

    def __key__(self):
        return self.owner

    def charge(self, amount: int) -> bool:
        if self.funds < amount:
            return False
        self.funds -= amount
        return True


@entity
class Cart:
    def __init__(self, cart_id: str):
        self.cart_id: str = cart_id
        self.skus: list = []
        self.quantities: list = []
        self.orders_placed: int = 0

    def __key__(self):
        return self.cart_id

    def add(self, product: Product, quantity: int) -> int:
        self.skus.append(product)
        self.quantities.append(quantity)
        return len(self.skus)

    @transactional
    def checkout(self, wallet: Wallet) -> int:
        """Reserve every line item, then charge the wallet.

        Business-level failures compensate explicitly (the Figure 1
        pattern: put reserved stock back); the *system* guarantees the
        whole call tree — reservations, charge, compensations — applies
        atomically and exactly once, with no visible intermediate state
        and no retry/idempotency code.  Returns the order total, or -1.
        """
        total: int = 0
        reserved: int = 0
        failed: bool = False
        i: int = 0
        while i < len(self.skus):
            product: Product = self.skus[i]
            quantity: int = self.quantities[i]
            cost: int = product.reserve(quantity)
            if cost < 0:
                failed = True
                break
            total = total + cost
            reserved = reserved + 1
            i = i + 1
        if not failed:
            paid: bool = wallet.charge(total)
            if not paid:
                failed = True
        if failed:
            # Compensate every successful reservation, then report.
            j: int = 0
            while j < reserved:
                line: Product = self.skus[j]
                line.release(self.quantities[j])
                j = j + 1
            return -1
        self.orders_placed += 1
        return total


def main() -> None:
    program = compile_program([Product, Wallet, Cart])
    runtime = StateflowRuntime(program)

    espresso = runtime.create(Product, "espresso-machine", 120, 5)
    beans = runtime.create(Product, "arabica-1kg", 18, 50)
    wallet = runtime.create(Wallet, "alice", 200)
    cart = runtime.create(Cart, "alice-cart-1")

    runtime.call(cart, "add", espresso, 1)
    runtime.call(cart, "add", beans, 2)

    result = runtime.invoke(cart, "checkout", wallet)
    print(f"checkout total: {result.value} "
          f"(latency {result.latency_ms:.1f} ms simulated)")
    print("wallet:", runtime.entity_state(wallet))
    print("espresso stock:", runtime.entity_state(espresso)["stock"])

    # A second checkout fails on funds.  The compensations inside the
    # method run in the same atomic transaction, so clients can never
    # observe a state where stock is reserved but nothing was paid.
    before = runtime.entity_state(espresso)["stock"]
    result = runtime.invoke(cart, "checkout", wallet)
    after = runtime.entity_state(espresso)["stock"]
    print(f"second checkout (insufficient funds): {result.value}")
    print(f"stock restored by compensation: {before} == {after} "
          f"-> {before == after}")
    assert before == after
    assert runtime.entity_state(cart)["orders_placed"] == 1


if __name__ == "__main__":
    main()
