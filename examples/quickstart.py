"""Quickstart: the paper's Figure 1 — a User buying Items.

Two annotated Python classes become stateful entities; the compiler turns
them into a dataflow; the Local runtime executes it in-process so you can
debug and unit test, then the same program runs unchanged on the
distributed runtimes (see the other examples).

Run:  python examples/quickstart.py
"""

from repro import LocalRuntime, compile_program, entity, transactional


@entity
class Item:
    def __init__(self, item_id: str, price: int):
        self.item_id: str = item_id
        self.stock: int = 0
        self.price_per_unit: int = price

    def __key__(self):
        return self.item_id

    def price(self) -> int:
        return self.price_per_unit

    def update_stock(self, amount: int) -> bool:
        self.stock += amount
        return self.stock >= 0


@entity
class User:
    def __init__(self, username: str):
        self.username: str = username
        self.balance: int = 100

    def __key__(self):
        return self.username

    @transactional
    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(-amount)
        if not available:
            item.update_stock(amount)  # compensate: put the stock back
            return False
        self.balance -= total_price
        return True


def main() -> None:
    program = compile_program([Item, User])
    print(program.dataflow.describe())
    print()

    runtime = LocalRuntime(program)
    apple = runtime.create(Item, "apple", 3)
    runtime.call(apple, "update_stock", 10)
    alice = runtime.create(User, "alice")

    print("alice buys 2 apples:", runtime.call(alice, "buy_item", 2, apple))
    print("alice:", runtime.entity_state(alice))
    print("apple:", runtime.entity_state(apple))

    # Not enough stock: the transaction compensates and reports False,
    # leaving both entities untouched.
    print("alice buys 30 apples:", runtime.call(alice, "buy_item", 30, apple))
    print("apple after failed purchase:", runtime.entity_state(apple))


if __name__ == "__main__":
    main()
