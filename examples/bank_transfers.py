"""Bank transfers with failure injection: exactly-once in action.

Runs the YCSB+T transfer workload on the simulated StateFlow deployment,
kills a worker mid-run, and lets snapshot recovery replay the source.
The two checks at the end are the paper's core promise (Section 1):

- conservation: the sum of all balances is unchanged — every committed
  transfer's debit and credit applied atomically, exactly once;
- no duplicate replies reach the client despite the replay.

Run:  python examples/bank_transfers.py
"""

from repro import compile_program
from repro.runtimes.stateflow import StateflowRuntime
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload


def main() -> None:
    program = compile_program([Account])
    runtime = StateflowRuntime(program)
    workload = YcsbWorkload("T", record_count=100, distribution="zipfian",
                            initial_balance=10_000)
    runtime.preload(Account, workload.dataset_rows())
    runtime.start()

    # Kill worker 2 at t=4s of simulated time; the watchdog detects the
    # stalled batch, restores the last snapshot, rewinds Kafka, replays.
    runtime.fail_worker(2, at_ms=4_000.0)

    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=150, duration_ms=10_000, warmup_ms=0, drain_ms=8_000))
    result = driver.run()

    total = sum(runtime.entity_state(workload.ref(i))["balance"]
                for i in range(workload.record_count))
    print(f"requests sent:        {result.sent}")
    print(f"replies delivered:    {result.completed}")
    print(f"recoveries:           {runtime.coordinator.recoveries}")
    print(f"duplicate replies suppressed: "
          f"{runtime.duplicate_client_replies + runtime.coordinator.duplicate_replies}")
    print(f"p99 latency:          {result.percentile(99):.1f} ms "
          f"(includes the outage)")
    print(f"balance conservation: {total} == {workload.total_balance()} "
          f"-> {total == workload.total_balance()}")
    print(f"aria stats:           {runtime.coordinator.stats}")
    assert total == workload.total_balance(), "conservation violated!"
    print("exactly-once held through the failure.")


if __name__ == "__main__":
    main()
