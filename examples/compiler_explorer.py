"""Compiler explorer: watch the pipeline transform imperative code.

Shows, for the Figure 1 application:
- the split function blocks (the paper's ``buy_item_0``, ``buy_item_1``,
  ... from Section 2.4) with their read/write variable sets;
- the state machine (execution graph) of each split method;
- the serialized engine-independent IR, and that the IR round-trips:
  deserialised on a "different system", recompiled from shipped source,
  and executed with identical results.

Run:  python examples/compiler_explorer.py
"""

from quickstart import Item, User

from repro import compile_program, dataflow_from_json, dataflow_to_json
from repro.compiler import recompile_from_ir
from repro.runtimes import LocalRuntime


def main() -> None:
    program = compile_program([Item, User])

    print("=" * 70)
    print("Function splitting of User.buy_item (paper Section 2.4)")
    print("=" * 70)
    split = program.split("User", "buy_item")
    for block_id, block in split.blocks.items():
        print(f"\n--- {block_id}")
        print(f"    reads:  {sorted(block.reads)}")
        print(f"    writes: {sorted(block.writes)}")
        for line in block.source().splitlines():
            print(f"    | {line}")
        print(f"    => {block.terminator}")

    print()
    print("=" * 70)
    print("State machine (execution graph, Section 2.5)")
    print("=" * 70)
    machine = program.entities["User"].methods["buy_item"].machine
    for node in machine:
        print(f"  {node.node_id}: {node.terminator.to_dict()}")

    print()
    print("=" * 70)
    print("Portable IR -> different system -> same behaviour")
    print("=" * 70)
    document = dataflow_to_json(program.dataflow)
    print(f"serialized IR: {len(document)} bytes of JSON")
    shipped = dataflow_from_json(document)
    other_system = recompile_from_ir(shipped)
    runtime = LocalRuntime(other_system)
    apple = runtime.create("Item", "apple", 3)
    runtime.call(apple, "update_stock", 10)
    alice = runtime.create("User", "alice")
    print("buy on recompiled system:",
          runtime.call(alice, "buy_item", 2, apple))
    print("alice state:", runtime.entity_state(alice))


if __name__ == "__main__":
    main()
