"""Shared test entities: the paper's Figure 1 shop, a control-flow zoo
with plain-Python oracle twins (for split-execution equivalence tests),
and helpers.

The zoo methods deliberately cover every splitting shape: straight-line
remote calls, remote calls nested in expressions, branches, for/while
loops with break/continue, early returns in local control flow, helper
self-calls, and in-method entity construction.
"""

from __future__ import annotations

from repro import entity, transactional

# ---------------------------------------------------------------------------
# Figure 1: the shop
# ---------------------------------------------------------------------------


@entity
class Item:
    def __init__(self, item_id: str, price: int):
        self.item_id: str = item_id
        self.stock: int = 0
        self.price_per_unit: int = price

    def __key__(self):
        return self.item_id

    def price(self) -> int:
        return self.price_per_unit

    def update_stock(self, amount: int) -> bool:
        self.stock += amount
        return self.stock >= 0


@entity
class User:
    def __init__(self, username: str):
        self.username: str = username
        self.balance: int = 100

    def __key__(self):
        return self.username

    @transactional
    def buy_item(self, amount: int, item: Item) -> bool:
        total_price: int = amount * item.price()
        if self.balance < total_price:
            return False
        available: bool = item.update_stock(-amount)
        if not available:
            item.update_stock(amount)
            return False
        self.balance -= total_price
        return True


# ---------------------------------------------------------------------------
# Control-flow zoo + oracles
# ---------------------------------------------------------------------------


@entity
class Counter:
    def __init__(self, cid: str):
        self.cid: str = cid
        self.value: int = 0

    def __key__(self):
        return self.cid

    def add(self, amount: int) -> int:
        self.value += amount
        return self.value

    def get(self) -> int:
        return self.value


@entity
class Zoo:
    def __init__(self, zid: str):
        self.zid: str = zid
        self.calls: int = 0

    def __key__(self):
        return self.zid

    def straight(self, c: Counter, x: int) -> int:
        a: int = c.add(x)
        b: int = c.add(x * 2)
        self.calls += 1
        return a + b

    def expr_nested(self, c: Counter, x: int) -> int:
        return x * c.add(1) + c.add(2)

    def branch(self, c: Counter, x: int) -> str:
        if x > 0:
            up: int = c.add(x)
            return "pos" + str(up)
        down: int = c.add(-x)
        return "neg" + str(down)

    def branch_else(self, c: Counter, x: int) -> int:
        if x % 2 == 0:
            even: int = c.add(10)
            result: int = even
        else:
            odd: int = c.add(20)
            result = odd * 2
        self.calls += 1
        return result + x

    def loop_for(self, c: Counter, n: int) -> int:
        total: int = 0
        for i in range(n):
            total += c.add(i)
        return total

    def loop_nested_if(self, c: Counter, n: int) -> int:
        total: int = 0
        for i in range(n):
            if i % 2 == 0:
                total += c.add(i)
            else:
                total -= 1
        return total

    def loop_while_break(self, c: Counter, n: int) -> int:
        i: int = 0
        total: int = 0
        while True:
            if i >= n:
                break
            v: int = c.add(1)
            if v % 3 == 0:
                i += 2
                continue
            total += v
            i += 1
        return total

    def local_only(self, x: int) -> int:
        if x < 0:
            return -1
        total = 0
        for i in range(x):
            if i % 2:
                continue
            total += i
        return total

    def helper_chain(self, c: Counter, x: int) -> int:
        doubled: int = self.double_add(c, x)
        return doubled + 1

    def double_add(self, c: Counter, x: int) -> int:
        r: int = c.add(x)
        return r * 2

    def constructs(self, name: str, x: int) -> int:
        fresh: Counter = Counter(name)
        r: int = fresh.add(x)
        return r

    def remote_in_condition(self, c: Counter, x: int) -> str:
        if c.add(x) > 5:
            return "big"
        return "small"

    def remote_in_while_condition(self, c: Counter, limit: int) -> int:
        rounds: int = 0
        while c.add(1) < limit:
            rounds += 1
        return rounds


# Plain-Python oracle twins (no decorators, direct execution) -----------------


class OracleCounter:
    def __init__(self, cid: str):
        self.cid = cid
        self.value = 0

    def add(self, amount: int) -> int:
        self.value += amount
        return self.value

    def get(self) -> int:
        return self.value


class OracleZoo:
    def __init__(self, zid: str):
        self.zid = zid
        self.calls = 0

    def straight(self, c, x):
        a = c.add(x)
        b = c.add(x * 2)
        self.calls += 1
        return a + b

    def expr_nested(self, c, x):
        return x * c.add(1) + c.add(2)

    def branch(self, c, x):
        if x > 0:
            up = c.add(x)
            return "pos" + str(up)
        down = c.add(-x)
        return "neg" + str(down)

    def branch_else(self, c, x):
        if x % 2 == 0:
            even = c.add(10)
            result = even
        else:
            odd = c.add(20)
            result = odd * 2
        self.calls += 1
        return result + x

    def loop_for(self, c, n):
        total = 0
        for i in range(n):
            total += c.add(i)
        return total

    def loop_nested_if(self, c, n):
        total = 0
        for i in range(n):
            if i % 2 == 0:
                total += c.add(i)
            else:
                total -= 1
        return total

    def loop_while_break(self, c, n):
        i = 0
        total = 0
        while True:
            if i >= n:
                break
            v = c.add(1)
            if v % 3 == 0:
                i += 2
                continue
            total += v
            i += 1
        return total

    def local_only(self, x):
        if x < 0:
            return -1
        total = 0
        for i in range(x):
            if i % 2:
                continue
            total += i
        return total

    def helper_chain(self, c, x):
        doubled = self.double_add(c, x)
        return doubled + 1

    def double_add(self, c, x):
        r = c.add(x)
        return r * 2

    def remote_in_condition(self, c, x):
        if c.add(x) > 5:
            return "big"
        return "small"

    def remote_in_while_condition(self, c, limit):
        rounds = 0
        while c.add(1) < limit:
            rounds += 1
        return rounds


#: (method, args-builder) pairs shared by equivalence tests; each args
#: builder takes an int seed and returns positional args after the
#: Counter ref.
ZOO_CASES = [
    ("straight", lambda x: (x,)),
    ("expr_nested", lambda x: (x,)),
    ("branch", lambda x: (x - 3,)),
    ("branch_else", lambda x: (x,)),
    ("loop_for", lambda x: (x % 6,)),
    ("loop_nested_if", lambda x: (x % 6,)),
    ("loop_while_break", lambda x: (x % 5,)),
    ("helper_chain", lambda x: (x,)),
    ("remote_in_condition", lambda x: (x,)),
    ("remote_in_while_condition", lambda x: (x % 7 + 2,)),
]

SHOP_ENTITIES = [Item, User]
ZOO_ENTITIES = [Counter, Zoo]
