"""Additional splitting shapes: entity refs in state, nested loops,
elif chains, tuple targets — with plain-Python oracles."""

from __future__ import annotations

from repro import entity


@entity
class Cell:
    def __init__(self, cell_id: str):
        self.cell_id: str = cell_id
        self.value: int = 0

    def __key__(self):
        return self.cell_id

    def bump(self, amount: int) -> int:
        self.value += amount
        return self.value

    def pair(self, amount: int) -> tuple:
        self.value += amount
        return (self.value, amount)


@entity
class Shape:
    def __init__(self, sid: str, partner: Cell):
        self.sid: str = sid
        self.partner: Cell = partner
        self.score: int = 0

    def __key__(self):
        return self.sid

    def via_state_ref(self, amount: int) -> int:
        """Remote call through an entity ref held in *state*."""
        result: int = self.partner.bump(amount)
        self.score += result
        return result

    def nested_loops(self, c: Cell, n: int) -> int:
        total: int = 0
        for i in range(n):
            for j in range(i):
                total += c.bump(j)
        return total

    def elif_chain(self, c: Cell, x: int) -> str:
        if x < 0:
            low: int = c.bump(-1)
            return "neg" + str(low)
        elif x == 0:
            return "zero"
        elif x < 5:
            mid: int = c.bump(1)
            return "small" + str(mid)
        else:
            return "big"

    def tuple_unpack(self, c: Cell, amount: int) -> int:
        value, echoed = c.pair(amount)
        return value * 10 + echoed

    def return_inside_loop(self, c: Cell, n: int, stop: int) -> int:
        for i in range(n):
            v: int = c.bump(1)
            if v == stop:
                return i
        return -1

    def augassign_remote(self, c: Cell, n: int) -> int:
        total: int = 100
        total += c.bump(n)
        total -= c.bump(1)
        return total

    def arg_is_remote_result(self, c: Cell, other: Cell, n: int) -> int:
        """A remote result feeding another remote call's argument."""
        fed: int = other.bump(c.bump(n))
        return fed


class OracleCell:
    def __init__(self, cell_id: str):
        self.cell_id = cell_id
        self.value = 0

    def bump(self, amount):
        self.value += amount
        return self.value

    def pair(self, amount):
        self.value += amount
        return (self.value, amount)


class OracleShape:
    def __init__(self, sid: str, partner):
        self.sid = sid
        self.partner = partner
        self.score = 0

    def via_state_ref(self, amount):
        result = self.partner.bump(amount)
        self.score += result
        return result

    def nested_loops(self, c, n):
        total = 0
        for i in range(n):
            for j in range(i):
                total += c.bump(j)
        return total

    def elif_chain(self, c, x):
        if x < 0:
            low = c.bump(-1)
            return "neg" + str(low)
        elif x == 0:
            return "zero"
        elif x < 5:
            mid = c.bump(1)
            return "small" + str(mid)
        else:
            return "big"

    def tuple_unpack(self, c, amount):
        value, echoed = c.pair(amount)
        return value * 10 + echoed

    def return_inside_loop(self, c, n, stop):
        for i in range(n):
            v = c.bump(1)
            if v == stop:
                return i
        return -1

    def augassign_remote(self, c, n):
        total = 100
        total += c.bump(n)
        total -= c.bump(1)
        return total

    def arg_is_remote_result(self, c, other, n):
        fed = other.bump(c.bump(n))
        return fed
