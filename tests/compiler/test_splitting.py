"""Function splitting: the paper's worked example and every control-flow
shape."""

import pytest

from zoo import Counter, Item, User, Zoo

from repro.compiler import analyze_class, build_call_graph, split_method
from repro.compiler.blocks import (
    BranchTerminator,
    ConstructTerminator,
    InvokeTerminator,
    ReturnTerminator,
)


def _split(classes, entity_name, method, **kwargs):
    descriptors = {cls.__name__: analyze_class(cls) for cls in classes}
    graph = build_call_graph(descriptors)
    needs = graph.methods_needing_split()
    return split_method(descriptors[entity_name], method, descriptors,
                        needs, **kwargs)


class TestPaperExample:
    """Section 2.4: buy_item splits at each remote call."""

    def test_block_naming(self):
        result = _split([Item, User], "User", "buy_item")
        assert result.entry == "buy_item_0"
        assert all(bid.startswith("buy_item_") for bid in result.block_ids())

    def test_was_split(self):
        result = _split([Item, User], "User", "buy_item")
        assert result.was_split
        assert len(result.blocks) >= 4

    def test_first_block_suspends_at_price(self):
        result = _split([Item, User], "User", "buy_item")
        entry = result.block("buy_item_0")
        assert isinstance(entry.terminator, InvokeTerminator)
        assert entry.terminator.method == "price"
        assert entry.terminator.entity_type == "Item"

    def test_continuation_receives_return_value(self):
        result = _split([Item, User], "User", "buy_item")
        terminator = result.block("buy_item_0").terminator
        continuation = result.block(terminator.continuation)
        # The continuation references the call's result variable.
        assert terminator.result_var in continuation.reads

    def test_blocks_return_defined_take_referenced(self):
        """Paper: 'each function that was split takes as arguments the
        variables it references in its body and returns the variables it
        defines.'"""
        result = _split([Item, User], "User", "buy_item")
        for block in result.blocks.values():
            assert block.reads.isdisjoint({"self"})
            for name in ("__cond__", "__ret__"):
                assert name not in block.reads

    def test_compensation_branch_present(self):
        result = _split([Item, User], "User", "buy_item")
        invokes = [b.terminator for b in result.blocks.values()
                   if isinstance(b.terminator, InvokeTerminator)]
        assert sum(1 for t in invokes if t.method == "update_stock") == 2


class TestShapes:
    def test_unsplit_method_single_block(self):
        result = _split([Item, User], "Item", "update_stock")
        assert not result.was_split
        only = result.block(result.entry)
        assert isinstance(only.terminator, ReturnTerminator)

    def test_straight_line_two_calls(self):
        result = _split([Counter, Zoo], "Zoo", "straight")
        invokes = [b for b in result.blocks.values()
                   if isinstance(b.terminator, InvokeTerminator)]
        assert len(invokes) == 2

    def test_expression_nesting_hoisted(self):
        result = _split([Counter, Zoo], "Zoo", "expr_nested")
        invokes = [b for b in result.blocks.values()
                   if isinstance(b.terminator, InvokeTerminator)]
        assert len(invokes) == 2

    def test_branch_produces_branch_terminator(self):
        result = _split([Counter, Zoo], "Zoo", "branch")
        kinds = [type(b.terminator) for b in result.blocks.values()]
        assert BranchTerminator in kinds

    def test_loop_has_cycle(self):
        result = _split([Counter, Zoo], "Zoo", "loop_for")
        # Some block must jump backwards (to the loop header).
        ids = result.block_ids()
        position = {bid: i for i, bid in enumerate(ids)}
        has_back_edge = False
        for block in result.blocks.values():
            for target in _targets(block):
                if position[target] < position[block.block_id]:
                    has_back_edge = True
        assert has_back_edge

    def test_self_call_marked(self):
        result = _split([Counter, Zoo], "Zoo", "helper_chain")
        invoke = next(b.terminator for b in result.blocks.values()
                      if isinstance(b.terminator, InvokeTerminator))
        assert invoke.is_self_call
        assert invoke.entity_type == "Zoo"

    def test_constructor_terminator(self):
        result = _split([Counter, Zoo], "Zoo", "constructs")
        kinds = [type(b.terminator) for b in result.blocks.values()]
        assert ConstructTerminator in kinds

    def test_local_only_stays_single_block(self):
        result = _split([Counter, Zoo], "Zoo", "local_only")
        assert not result.was_split

    def test_split_all_control_flow_mode(self):
        lazy = _split([Counter, Zoo], "Zoo", "local_only")
        eager = _split([Counter, Zoo], "Zoo", "local_only",
                       split_all_control_flow=True)
        assert len(eager.blocks) > len(lazy.blocks)

    def test_remote_in_condition_splits_before_if(self):
        result = _split([Counter, Zoo], "Zoo", "remote_in_condition")
        entry = result.block(result.entry)
        assert isinstance(entry.terminator, InvokeTerminator)

    def test_while_with_remote_condition(self):
        result = _split([Counter, Zoo], "Zoo", "remote_in_while_condition")
        assert result.was_split
        assert any(isinstance(b.terminator, BranchTerminator)
                   for b in result.blocks.values())


def _targets(block):
    terminator = block.terminator
    if isinstance(terminator, BranchTerminator):
        return [terminator.true_target, terminator.false_target]
    if isinstance(terminator, InvokeTerminator):
        return [terminator.continuation]
    if hasattr(terminator, "target"):
        return [terminator.target]
    return []


class TestStructure:
    def test_every_block_has_terminator(self):
        result = _split([Item, User], "User", "buy_item")
        for block in result.blocks.values():
            assert block.terminator is not None

    def test_all_targets_exist(self):
        result = _split([Counter, Zoo], "Zoo", "loop_while_break")
        for block in result.blocks.values():
            for target in _targets(block):
                assert target in result.blocks

    def test_serializable(self):
        result = _split([Item, User], "User", "buy_item")
        document = result.to_dict()
        assert document["entry"] == "buy_item_0"
        assert set(document["blocks"]) == set(result.block_ids())
