"""Tail-call elimination: recursion -> loops (paper Section 5)."""

import pytest

from repro.compiler import analyze_class, compile_descriptors
from repro.compiler.tailcalls import eliminate_tail_calls
from repro.core.errors import RecursionNotSupportedError
from repro.runtimes import LocalRuntime

TAIL_SOURCE = (
    "class Tail:\n"
    "    def __init__(self, tid: str):\n"
    "        self.tid: str = tid\n"
    "        self.steps: int = 0\n"
    "    def __key__(self):\n"
    "        return self.tid\n"
    "    def countdown(self, n: int) -> int:\n"
    "        self.steps += 1\n"
    "        if n <= 0:\n"
    "            return 0\n"
    "        return self.countdown(n - 1)\n"
    "    def factorial(self, n: int, acc: int) -> int:\n"
    "        if n <= 1:\n"
    "            return acc\n"
    "        return self.factorial(n - 1, acc * n)\n"
    "    def gcd(self, a: int, b: int) -> int:\n"
    "        if b == 0:\n"
    "            return a\n"
    "        return self.gcd(b, a % b)\n")

NON_TAIL_SOURCE = (
    "class Deep:\n"
    "    def __init__(self, did: str):\n"
    "        self.did: str = did\n"
    "    def __key__(self):\n"
    "        return self.did\n"
    "    def tree(self, n: int) -> int:\n"
    "        if n <= 1:\n"
    "            return 1\n"
    "        return self.tree(n - 1) + self.tree(n - 2)\n")


def _compile(source, **kwargs):
    descriptor = analyze_class(source=source)
    return compile_descriptors({descriptor.name: descriptor}, **kwargs)


class TestRewrite:
    def test_tail_methods_transformed(self):
        descriptor = analyze_class(source=TAIL_SOURCE)
        transformed = eliminate_tail_calls(descriptor)
        assert set(transformed) == {"countdown", "factorial", "gcd"}

    def test_non_tail_left_alone(self):
        descriptor = analyze_class(source=NON_TAIL_SOURCE)
        assert eliminate_tail_calls(descriptor) == []

    def test_local_methods_untouched(self):
        descriptor = analyze_class(source=TAIL_SOURCE)
        before = len(descriptor.methods["__init__"].source_ast.body)
        eliminate_tail_calls(descriptor)
        assert len(descriptor.methods["__init__"].source_ast.body) == before


class TestSemantics:
    @pytest.fixture(scope="class")
    def runtime(self):
        program = _compile(TAIL_SOURCE)
        runtime = LocalRuntime(program)
        runtime._tail_ref = runtime.create("Tail", "t1")
        return runtime

    def test_countdown(self, runtime):
        assert runtime.call(runtime._tail_ref, "countdown", 10) == 0
        # self mutations happen on every "recursive" step.
        assert runtime.entity_state(runtime._tail_ref)["steps"] == 11

    def test_factorial(self, runtime):
        assert runtime.call(runtime._tail_ref, "factorial", 6, 1) == 720

    def test_gcd(self, runtime):
        assert runtime.call(runtime._tail_ref, "gcd", 252, 105) == 21
        assert runtime.call(runtime._tail_ref, "gcd", 7, 0) == 7

    def test_deep_recursion_no_stack_growth(self, runtime):
        # 50k frames would overflow CPython's stack; the loop must not.
        assert runtime.call(runtime._tail_ref, "countdown", 50_000) == 0


class TestPipelineIntegration:
    def test_tail_recursive_program_compiles(self):
        program = _compile(TAIL_SOURCE)
        assert "Tail" in program.entities

    def test_non_tail_recursion_still_rejected(self):
        with pytest.raises(RecursionNotSupportedError):
            _compile(NON_TAIL_SOURCE)

    def test_opt_out_restores_rejection(self):
        with pytest.raises(RecursionNotSupportedError):
            _compile(TAIL_SOURCE, eliminate_tail_recursion=False)

    def test_simultaneous_rebinding(self):
        # gcd(b, a % b) needs simultaneous assignment: sequential
        # rebinding (a = b; b = a % b) would corrupt `a % b`.
        program = _compile(TAIL_SOURCE)
        runtime = LocalRuntime(program)
        ref = runtime.create("Tail", "t2")
        assert runtime.call(ref, "gcd", 48, 18) == 6
