"""State machines (execution graphs): structure, validation, serde."""

import pytest

from zoo import Counter, Item, User, Zoo

from repro.compiler import (
    StateMachine,
    analyze_class,
    build_call_graph,
    split_method,
)
from repro.compiler.blocks import InvokeTerminator, JumpTerminator
from repro.compiler.state_machine import StateNode
from repro.core.errors import CompilationError


def _machine(classes, entity_name, method):
    descriptors = {cls.__name__: analyze_class(cls) for cls in classes}
    needs = build_call_graph(descriptors).methods_needing_split()
    split = split_method(descriptors[entity_name], method, descriptors, needs)
    return StateMachine.from_split(split)


class TestDerivation:
    def test_entry_and_nodes(self):
        machine = _machine([Item, User], "User", "buy_item")
        assert machine.entry == "buy_item_0"
        assert machine.is_split
        assert set(machine.nodes) == {f"buy_item_{i}"
                                      for i in range(len(machine.nodes))}

    def test_remote_transitions(self):
        machine = _machine([Item, User], "User", "buy_item")
        remote = machine.remote_transitions()
        assert len(remote) == 3  # price + update_stock x2

    def test_terminal_nodes(self):
        machine = _machine([Item, User], "User", "buy_item")
        assert len(machine.terminal_nodes()) >= 2  # success + failure paths

    def test_unsplit_machine(self):
        machine = _machine([Item, User], "Item", "price")
        assert not machine.is_split
        assert len(machine.nodes) == 1

    def test_successors_cover_graph(self):
        machine = _machine([Counter, Zoo], "Zoo", "loop_for")
        reachable = {machine.entry}
        stack = [machine.entry]
        while stack:
            for successor in machine.node(stack.pop()).successors():
                if successor not in reachable:
                    reachable.add(successor)
                    stack.append(successor)
        assert reachable == set(machine.nodes)


class TestValidation:
    def _single_return_node(self, node_id="m_0"):
        from repro.compiler.blocks import ReturnTerminator

        return StateNode(node_id=node_id, terminator=ReturnTerminator(),
                         reads=frozenset(), writes=frozenset())

    def test_missing_entry_rejected(self):
        machine = StateMachine(entity="E", method="m", entry="nope",
                               nodes={"m_0": self._single_return_node()})
        with pytest.raises(CompilationError):
            machine.validate()

    def test_dangling_edge_rejected(self):
        node = StateNode(node_id="m_0",
                         terminator=JumpTerminator(target="missing"),
                         reads=frozenset(), writes=frozenset())
        machine = StateMachine(entity="E", method="m", entry="m_0",
                               nodes={"m_0": node})
        with pytest.raises(CompilationError):
            machine.validate()

    def test_unreachable_node_rejected(self):
        machine = StateMachine(
            entity="E", method="m", entry="m_0",
            nodes={"m_0": self._single_return_node("m_0"),
                   "m_1": self._single_return_node("m_1")})
        with pytest.raises(CompilationError):
            machine.validate()

    def test_no_return_rejected(self):
        node = StateNode(node_id="m_0",
                         terminator=JumpTerminator(target="m_0"),
                         reads=frozenset(), writes=frozenset())
        machine = StateMachine(entity="E", method="m", entry="m_0",
                               nodes={"m_0": node})
        with pytest.raises(CompilationError):
            machine.validate()


class TestSerde:
    def test_roundtrip(self):
        machine = _machine([Item, User], "User", "buy_item")
        restored = StateMachine.from_dict(machine.to_dict())
        assert restored.entry == machine.entry
        assert set(restored.nodes) == set(machine.nodes)
        for node_id, node in machine.nodes.items():
            twin = restored.node(node_id)
            assert twin.terminator.to_dict() == node.terminator.to_dict()
            assert twin.reads == node.reads
            assert twin.writes == node.writes

    def test_invoke_terminator_fields_survive(self):
        machine = _machine([Item, User], "User", "buy_item")
        restored = StateMachine.from_dict(machine.to_dict())
        entry = restored.node(restored.entry)
        assert isinstance(entry.terminator, InvokeTerminator)
        assert entry.terminator.method == "price"
