"""Code generation: block execution, early returns, materialisation."""

import pytest

from zoo import Counter, Item, User

from repro.compiler import analyze_class, compile_program, materialize_class
from repro.core.errors import CompilationError, InvocationError
from repro.core.entity import entity_source


class TestBlockExecution:
    def test_initial_store_binds_params(self, shop_program):
        method = shop_program.entities["User"].methods["buy_item"]
        store = method.initial_store((3, "item-ref"))
        assert store == {"amount": 3, "item": "item-ref"}

    def test_initial_store_arity_checked(self, shop_program):
        method = shop_program.entities["User"].methods["buy_item"]
        with pytest.raises(InvocationError):
            method.initial_store((1,))

    def test_execute_block_updates_instance(self, shop_program):
        compiled = shop_program.entities["Item"]
        method = compiled.methods["update_stock"]
        instance = compiled.make_instance(
            {"item_id": "a", "stock": 5, "price_per_unit": 2})
        outcome = method.execute_block(method.entry, instance,
                                       {"amount": 3})
        assert instance.stock == 8
        assert outcome.return_value is True

    def test_user_exception_wrapped(self, shop_program):
        compiled = shop_program.entities["Item"]
        method = compiled.methods["update_stock"]
        instance = compiled.make_instance(
            {"item_id": "a", "stock": 5, "price_per_unit": 2})
        with pytest.raises(InvocationError) as excinfo:
            method.execute_block(method.entry, instance, {"amount": "oops"})
        assert "update_stock" in str(excinfo.value)

    def test_store_survives_conditionally_undefined_names(self, zoo_program):
        compiled = zoo_program.entities["Zoo"]
        method = compiled.methods["local_only"]
        instance = compiled.make_instance({"zid": "z", "calls": 0})
        outcome = method.execute_block(method.entry, instance, {"x": -5})
        assert outcome.returned
        assert outcome.return_value == -1


class TestInstanceBridge:
    def test_make_and_extract_state(self, shop_program):
        compiled = shop_program.entities["User"]
        state = {"username": "bob", "balance": 7}
        instance = compiled.make_instance(state)
        assert compiled.extract_state(instance) == state

    def test_key_of_state(self, shop_program):
        compiled = shop_program.entities["Item"]
        assert compiled.key_of_state(
            {"item_id": "pear", "stock": 0, "price_per_unit": 1}) == "pear"

    def test_blank_instance_skips_init(self, shop_program):
        compiled = shop_program.entities["User"]
        instance = compiled.blank_instance()
        assert not vars(instance)

    def test_unknown_method_rejected(self, shop_program):
        with pytest.raises(InvocationError):
            shop_program.entities["User"].method("does_not_exist")


class TestMaterialisation:
    def test_materialize_from_source(self):
        descriptor = analyze_class(Item)
        cls, namespace = materialize_class(descriptor)
        instance = cls("pear", 4)
        assert instance.price_per_unit == 4
        assert namespace[descriptor.name] is cls

    def test_materialize_with_decorators_in_source(self):
        descriptor = analyze_class(User)
        assert "@" in entity_source(User) or True  # decorators may be absent
        cls, _ = materialize_class(descriptor)
        assert cls.__name__ == "User"

    def test_materialize_requires_source(self):
        descriptor = analyze_class(Item)
        descriptor.source = None
        with pytest.raises(CompilationError):
            materialize_class(descriptor)


class TestModuleGlobals:
    def test_module_helpers_usable_in_blocks(self, tmp_path):
        # An entity whose method uses a module-level helper function.
        module_file = tmp_path / "helpermod.py"
        module_file.write_text(
            "from repro import entity\n"
            "def bonus(x):\n"
            "    return x + 100\n"
            "@entity\n"
            "class Uses:\n"
            "    def __init__(self, uid: str):\n"
            "        self.uid: str = uid\n"
            "        self.total: int = 0\n"
            "    def __key__(self):\n"
            "        return self.uid\n"
            "    def apply(self, x: int) -> int:\n"
            "        self.total = bonus(x)\n"
            "        return self.total\n")
        import sys
        sys.path.insert(0, str(tmp_path))
        try:
            import helpermod

            program = compile_program([helpermod.Uses])
            from repro.runtimes import LocalRuntime

            runtime = LocalRuntime(program)
            ref = runtime.create("Uses", "u1")
            assert runtime.call(ref, "apply", 5) == 105
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("helpermod", None)

    def test_comprehension_over_store_variables(self, tmp_path):
        """Regression guard for exec-scope pitfalls: comprehensions in
        method bodies must see store variables."""
        module_file = tmp_path / "compmod.py"
        module_file.write_text(
            "from repro import entity\n"
            "@entity\n"
            "class Comp:\n"
            "    def __init__(self, cid: str):\n"
            "        self.cid: str = cid\n"
            "    def __key__(self):\n"
            "        return self.cid\n"
            "    def squares(self, n: int) -> int:\n"
            "        values = [i * i for i in range(n)]\n"
            "        scale = 2\n"
            "        scaled = [v * scale for v in values]\n"
            "        return sum(scaled)\n")
        import sys
        sys.path.insert(0, str(tmp_path))
        try:
            import compmod

            program = compile_program([compmod.Comp])
            from repro.runtimes import LocalRuntime

            runtime = LocalRuntime(program)
            ref = runtime.create("Comp", "c1")
            assert runtime.call(ref, "squares", 4) == 2 * (0 + 1 + 4 + 9)
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("compmod", None)
