"""Pass 1: state schema, method signatures, hints, key extraction."""

import pytest

from zoo import Item, User

from repro.compiler import analyze_class, parse_class_ast
from repro.core.errors import (
    CompilationError,
    MissingKeyError,
    MissingTypeHintError,
    UnsupportedConstructError,
)


class TestShopAnalysis:
    def test_state_schema(self):
        descriptor = analyze_class(Item)
        fields = {f.name: f.type_name for f in descriptor.state}
        assert fields == {"item_id": "str", "stock": "int",
                          "price_per_unit": "int"}

    def test_key_attribute(self):
        assert analyze_class(Item).key_attribute == "item_id"
        assert analyze_class(User).key_attribute == "username"

    def test_method_signatures(self):
        descriptor = analyze_class(User)
        buy = descriptor.methods["buy_item"]
        assert [p.name for p in buy.params] == ["amount", "item"]
        assert [p.type_name for p in buy.params] == ["int", "Item"]
        assert buy.return_type == "bool"

    def test_transactional_marker_travels(self):
        descriptor = analyze_class(User)
        assert descriptor.methods["buy_item"].is_transactional
        assert not analyze_class(Item).methods["price"].is_transactional

    def test_constructor_descriptor(self):
        descriptor = analyze_class(Item)
        init = descriptor.methods["__init__"]
        assert init.is_constructor
        assert init.return_type == "None"

    def test_key_method_excluded_from_methods(self):
        assert "__key__" not in analyze_class(Item).methods


def _analyze(source: str):
    return analyze_class(source=source)


class TestLimitations:
    def test_missing_param_hint_rejected(self):
        source = (
            "class Bad:\n"
            "    def __init__(self, bid: str):\n"
            "        self.bid: str = bid\n"
            "    def __key__(self):\n"
            "        return self.bid\n"
            "    def method(self, x) -> int:\n"
            "        return x\n")
        with pytest.raises(MissingTypeHintError) as excinfo:
            _analyze(source)
        assert excinfo.value.method == "method"

    def test_missing_return_hint_rejected(self):
        source = (
            "class Bad:\n"
            "    def __init__(self, bid: str):\n"
            "        self.bid: str = bid\n"
            "    def __key__(self):\n"
            "        return self.bid\n"
            "    def method(self, x: int):\n"
            "        return x\n")
        with pytest.raises(MissingTypeHintError):
            _analyze(source)

    def test_missing_key_rejected(self):
        source = (
            "class Bad:\n"
            "    def __init__(self, bid: str):\n"
            "        self.bid: str = bid\n")
        with pytest.raises(MissingKeyError):
            _analyze(source)

    def test_complex_key_rejected(self):
        source = (
            "class Bad:\n"
            "    def __init__(self, bid: str):\n"
            "        self.bid: str = bid\n"
            "    def __key__(self):\n"
            "        return self.bid.upper()\n")
        with pytest.raises(CompilationError):
            _analyze(source)

    def test_key_must_be_state_attribute(self):
        source = (
            "class Bad:\n"
            "    def __init__(self, bid: str):\n"
            "        self.bid: str = bid\n"
            "    def __key__(self):\n"
            "        return self.other\n")
        with pytest.raises(CompilationError):
            _analyze(source)

    def test_missing_init_rejected(self):
        source = (
            "class Bad:\n"
            "    def __key__(self):\n"
            "        return self.x\n")
        with pytest.raises(CompilationError):
            _analyze(source)

    def test_varargs_rejected(self):
        source = (
            "class Bad:\n"
            "    def __init__(self, bid: str):\n"
            "        self.bid: str = bid\n"
            "    def __key__(self):\n"
            "        return self.bid\n"
            "    def method(self, *args) -> int:\n"
            "        return 0\n")
        with pytest.raises(UnsupportedConstructError):
            _analyze(source)

    def test_async_method_rejected(self):
        source = (
            "class Bad:\n"
            "    def __init__(self, bid: str):\n"
            "        self.bid: str = bid\n"
            "    def __key__(self):\n"
            "        return self.bid\n"
            "    async def method(self) -> int:\n"
            "        return 0\n")
        with pytest.raises(UnsupportedConstructError):
            _analyze(source)

    def test_hints_optional_when_relaxed(self):
        source = (
            "class Relaxed:\n"
            "    def __init__(self, rid: str):\n"
            "        self.rid: str = rid\n"
            "    def __key__(self):\n"
            "        return self.rid\n"
            "    def method(self, x):\n"
            "        return x\n")
        descriptor = analyze_class(source=source, require_hints=False)
        assert descriptor.methods["method"].params[0].type_name == "Any"


class TestParseClassAst:
    def test_finds_named_class(self):
        node = parse_class_ast("class A:\n    pass\n", "A")
        assert node.name == "A"

    def test_no_class_rejected(self):
        with pytest.raises(CompilationError):
            parse_class_ast("x = 1\n")

    def test_two_classes_rejected(self):
        with pytest.raises(CompilationError):
            parse_class_ast("class A:\n    pass\nclass B:\n    pass\n")
