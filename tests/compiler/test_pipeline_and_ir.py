"""End-to-end pipeline + IR serialisation/portability."""

import pytest

from zoo import SHOP_ENTITIES

from repro import compile_program, dataflow_from_json, dataflow_to_json
from repro.compiler import recompile_from_ir
from repro.core.entity import scoped_registry
from repro.ir import EGRESS, INGRESS, StatefulDataflow
from repro.ir.serde import load_dataflow, save_dataflow
from repro.runtimes import LocalRuntime


class TestPipeline:
    def test_operator_per_entity(self, shop_program):
        assert set(shop_program.dataflow.operators) == {"Item", "User"}

    def test_edges_include_routers(self, shop_program):
        targets = shop_program.dataflow.successors(INGRESS)
        assert set(targets) == {"Item", "User"}
        assert EGRESS in shop_program.dataflow.successors("Item")

    def test_call_edges_both_directions(self, shop_program):
        assert "Item" in shop_program.dataflow.successors("User")
        assert "User" in shop_program.dataflow.successors("Item")

    def test_dataflow_has_cycles_for_calls(self, shop_program):
        assert shop_program.dataflow.has_cycles()

    def test_transactional_methods_listed(self, shop_program):
        assert shop_program.dataflow.transactional_methods() == [
            ("User", "buy_item")]

    def test_split_method_count(self, shop_program):
        assert shop_program.dataflow.split_method_count() == 1

    def test_compile_from_registry(self):
        registry = scoped_registry(SHOP_ENTITIES)
        program = compile_program(registry=registry)
        assert set(program.entities) == {"Item", "User"}

    def test_describe_readable(self, shop_program):
        text = shop_program.dataflow.describe()
        assert "operator User" in text
        assert "[split]" in text
        assert "[transactional]" in text


class TestIrSerde:
    def test_json_roundtrip(self, shop_program):
        document = dataflow_to_json(shop_program.dataflow)
        restored = dataflow_from_json(document)
        assert set(restored.operators) == {"Item", "User"}
        machine = restored.operator("User").machine("buy_item")
        assert machine.entry == "buy_item_0"

    def test_file_roundtrip(self, shop_program, tmp_path):
        path = str(tmp_path / "app.dataflow.json")
        save_dataflow(shop_program.dataflow, path)
        restored = load_dataflow(path)
        assert restored.to_dict() == shop_program.dataflow.to_dict()

    def test_bad_document_rejected(self):
        with pytest.raises(ValueError):
            dataflow_from_json('{"format": "other"}')
        with pytest.raises(ValueError):
            dataflow_from_json(
                '{"format": "stateful-dataflow-ir", "version": 99}')

    def test_unknown_operator_lookup(self):
        with pytest.raises(Exception) as excinfo:
            StatefulDataflow().operator("Ghost")
        assert "Ghost" in str(excinfo.value)


class TestPortability:
    """The IR deploys to a "different system": recompiled from shipped
    source, it must behave identically."""

    def test_recompile_and_run(self, shop_program):
        document = dataflow_to_json(shop_program.dataflow)
        shipped = dataflow_from_json(document)
        program = recompile_from_ir(shipped)
        runtime = LocalRuntime(program)
        apple = runtime.create("Item", "apple", 3)
        runtime.call(apple, "update_stock", 10)
        alice = runtime.create("User", "alice")
        assert runtime.call(alice, "buy_item", 2, apple) is True
        assert runtime.entity_state(alice)["balance"] == 94
        assert runtime.entity_state(apple)["stock"] == 8

    def test_recompiled_preserves_transactional(self, shop_program):
        shipped = dataflow_from_json(dataflow_to_json(shop_program.dataflow))
        program = recompile_from_ir(shipped)
        descriptor = program.entities["User"].descriptor
        assert descriptor.methods["buy_item"].is_transactional

    def test_recompiled_machines_equivalent(self, shop_program):
        shipped = dataflow_from_json(dataflow_to_json(shop_program.dataflow))
        program = recompile_from_ir(shipped)
        original = shop_program.entities["User"].methods["buy_item"].machine
        rebuilt = program.entities["User"].methods["buy_item"].machine
        assert rebuilt.to_dict() == original.to_dict()
