"""Splitting shapes beyond the basic zoo, oracle-checked."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from shapes import Cell, OracleCell, OracleShape, Shape

from repro import compile_program
from repro.runtimes import LocalRuntime


@pytest.fixture(scope="module")
def shapes_program():
    return compile_program([Cell, Shape])


def _fresh(shapes_program):
    runtime = LocalRuntime(shapes_program)
    cell = runtime.create("Cell", "c1")
    other = runtime.create("Cell", "c2")
    shape = runtime.create("Shape", "s1", cell)
    return runtime, cell, other, shape


def _oracle():
    cell = OracleCell("c1")
    other = OracleCell("c2")
    shape = OracleShape("s1", cell)
    return cell, other, shape


def test_remote_call_through_state_ref(shapes_program):
    runtime, cell, _, shape = _fresh(shapes_program)
    assert runtime.call(shape, "via_state_ref", 7) == 7
    assert runtime.call(shape, "via_state_ref", 3) == 10
    assert runtime.entity_state(shape)["score"] == 17
    assert runtime.entity_state(cell)["value"] == 10


@given(n=st.integers(0, 5))
@settings(max_examples=10, deadline=None)
def test_nested_loops(shapes_program, n):
    runtime, cell, _, shape = _fresh(shapes_program)
    oracle_cell, _, oracle = _oracle()
    assert runtime.call(shape, "nested_loops", cell, n) == \
        oracle.nested_loops(oracle_cell, n)
    assert runtime.entity_state(cell)["value"] == oracle_cell.value


@given(x=st.integers(-3, 8))
@settings(max_examples=15, deadline=None)
def test_elif_chain(shapes_program, x):
    runtime, cell, _, shape = _fresh(shapes_program)
    oracle_cell, _, oracle = _oracle()
    assert runtime.call(shape, "elif_chain", cell, x) == \
        oracle.elif_chain(oracle_cell, x)


def test_tuple_unpack_of_remote_result(shapes_program):
    runtime, cell, _, shape = _fresh(shapes_program)
    assert runtime.call(shape, "tuple_unpack", cell, 4) == 4 * 10 + 4


@given(n=st.integers(0, 6), stop=st.integers(1, 8))
@settings(max_examples=15, deadline=None)
def test_return_inside_loop(shapes_program, n, stop):
    runtime, cell, _, shape = _fresh(shapes_program)
    oracle_cell, _, oracle = _oracle()
    assert runtime.call(shape, "return_inside_loop", cell, n, stop) == \
        oracle.return_inside_loop(oracle_cell, n, stop)
    assert runtime.entity_state(cell)["value"] == oracle_cell.value


def test_augassign_remote(shapes_program):
    runtime, cell, _, shape = _fresh(shapes_program)
    oracle_cell, _, oracle = _oracle()
    assert runtime.call(shape, "augassign_remote", cell, 5) == \
        oracle.augassign_remote(oracle_cell, 5)


def test_remote_result_as_remote_argument(shapes_program):
    runtime, cell, other, shape = _fresh(shapes_program)
    oracle_cell, oracle_other, oracle = _oracle()
    assert runtime.call(shape, "arg_is_remote_result", cell, other, 6) == \
        oracle.arg_is_remote_result(oracle_cell, oracle_other, 6)
    assert runtime.entity_state(other)["value"] == oracle_other.value


def test_entity_ref_in_state_is_serializable(shapes_program):
    """Shape stores an EntityRef in state; it must survive the codec."""
    from repro.core.serialization import dumps, loads

    runtime, cell, _, shape = _fresh(shapes_program)
    state = runtime.entity_state(shape)
    assert loads(dumps(state)) == state


def test_shapes_on_stateflow_match_local(shapes_program):
    from repro.runtimes.stateflow import StateflowRuntime

    finals = []
    for runtime_cls in (LocalRuntime, StateflowRuntime):
        runtime = runtime_cls(shapes_program)
        cell = runtime.create("Cell", "c1")
        shape = runtime.create("Shape", "s1", cell)
        values = [runtime.call(shape, "via_state_ref", 2),
                  runtime.call(shape, "nested_loops", cell, 4),
                  runtime.call(shape, "elif_chain", cell, 3)]
        finals.append((values, runtime.entity_state(cell)))
    assert finals[0] == finals[1]
