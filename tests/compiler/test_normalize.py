"""Normalization: remote-call hoisting and its guardrails."""

import ast

import pytest

from repro.compiler import analyze_class
from repro.compiler.normalize import Normalizer
from repro.core.errors import UnsupportedConstructError

COUNTER_SOURCE = (
    "class Counter:\n"
    "    def __init__(self, cid: str):\n"
    "        self.cid: str = cid\n"
    "        self.value: int = 0\n"
    "    def __key__(self):\n"
    "        return self.cid\n"
    "    def add(self, amount: int) -> int:\n"
    "        self.value += amount\n"
    "        return self.value\n")


def _normalizer(method_source: str):
    """Build a normalizer for a one-method driver class."""
    driver_source = (
        "class Driver:\n"
        "    def __init__(self, did: str):\n"
        "        self.did: str = did\n"
        "    def __key__(self):\n"
        "        return self.did\n"
        + method_source)
    descriptors = {
        "Counter": analyze_class(source=COUNTER_SOURCE),
        "Driver": analyze_class(source=driver_source),
    }
    normalizer = Normalizer(descriptors["Driver"], "method", descriptors,
                            set())
    body = descriptors["Driver"].methods["method"].source_ast.body
    return normalizer, list(body)


def _unparse(statements) -> str:
    return ast.unparse(ast.Module(body=statements, type_ignores=[]))


class TestHoisting:
    def test_call_in_binop_hoisted(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        total: int = x * c.add(1)\n"
            "        return total\n")
        text = _unparse(normalizer.normalize_body(body))
        assert "_t0 = c.add(1)" in text
        assert "x * _t0" in text

    def test_direct_assign_kept_in_place(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        r: int = c.add(x)\n"
            "        return r\n")
        text = _unparse(normalizer.normalize_body(body))
        assert "_t0" not in text  # already in normal form

    def test_two_calls_ordered_left_to_right(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        return c.add(1) + c.add(2)\n")
        text = _unparse(normalizer.normalize_body(body))
        assert text.index("c.add(1)") < text.index("c.add(2)")
        assert "return _t0 + _t1" in text

    def test_call_as_argument_hoisted(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        r: int = c.add(c.add(x))\n"
            "        return r\n")
        text = _unparse(normalizer.normalize_body(body))
        assert "_t0 = c.add(x)" in text
        assert "c.add(_t0)" in text

    def test_if_condition_hoisted(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        if c.add(x) > 2:\n"
            "            return 1\n"
            "        return 0\n")
        statements = normalizer.normalize_body(body)
        assert isinstance(statements[0], ast.Assign)
        assert isinstance(statements[1], ast.If)

    def test_while_condition_rewritten_to_loop_forever(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        while c.add(1) < x:\n"
            "            pass\n"
            "        return 0\n")
        statements = normalizer.normalize_body(body)
        loop = statements[0]
        assert isinstance(loop, ast.While)
        assert isinstance(loop.test, ast.Constant) and loop.test.value is True
        # First statements in the body re-evaluate the remote condition.
        assert isinstance(loop.body[0], ast.Assign)

    def test_for_iterable_hoisted(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        total: int = 0\n"
            "        for i in range(c.add(x)):\n"
            "            total += i\n"
            "        return total\n")
        statements = normalizer.normalize_body(body)
        kinds = [type(s) for s in statements]
        assert ast.For in kinds
        loop = statements[kinds.index(ast.For)]
        assert "c.add" not in ast.unparse(loop.iter)

    def test_non_remote_calls_untouched(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        return len(str(x))\n")
        text = _unparse(normalizer.normalize_body(body))
        assert "_t" not in text


class TestGuardrails:
    def _expect_unsupported(self, method_source: str):
        normalizer, body = _normalizer(method_source)
        with pytest.raises(UnsupportedConstructError):
            normalizer.normalize_body(body)

    def test_short_circuit_rejected(self):
        self._expect_unsupported(
            "    def method(self, c: Counter, x: int) -> bool:\n"
            "        return x > 0 and c.add(1) > 0\n")

    def test_conditional_expression_rejected(self):
        self._expect_unsupported(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        return c.add(1) if x > 0 else 0\n")

    def test_comprehension_rejected(self):
        self._expect_unsupported(
            "    def method(self, c: Counter, x: int) -> list:\n"
            "        return [c.add(i) for i in range(x)]\n")

    def test_lambda_rejected(self):
        self._expect_unsupported(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        f = lambda: c.add(1)\n"
            "        return 0\n")

    def test_nested_def_rejected(self):
        self._expect_unsupported(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        def inner():\n"
            "            return 1\n"
            "        return inner()\n")

    def test_remote_in_try_rejected(self):
        self._expect_unsupported(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        try:\n"
            "            r: int = c.add(1)\n"
            "        except Exception:\n"
            "            r = 0\n"
            "        return r\n")

    def test_global_rejected(self):
        self._expect_unsupported(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        global something\n"
            "        return 0\n")

    def test_local_try_allowed(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> int:\n"
            "        try:\n"
            "            value = 10 // x\n"
            "        except ZeroDivisionError:\n"
            "            value = 0\n"
            "        return value\n")
        statements = normalizer.normalize_body(body)
        assert any(isinstance(s, ast.Try) for s in statements)

    def test_first_operand_of_boolop_allowed(self):
        normalizer, body = _normalizer(
            "    def method(self, c: Counter, x: int) -> bool:\n"
            "        ok: bool = c.add(1) > 0 and x > 0\n"
            "        return ok\n")
        text = _unparse(normalizer.normalize_body(body))
        assert "_t0 = c.add(1)" in text
