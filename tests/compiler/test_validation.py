"""Whole-program validation: key stability, constructor locality,
generators, unknown callees."""

import pytest

from repro.compiler import analyze_class, build_call_graph, validate_program
from repro.core.errors import (
    CompilationError,
    KeyMutationError,
    UnsupportedConstructError,
)

COUNTER = (
    "class Counter:\n"
    "    def __init__(self, cid: str):\n"
    "        self.cid: str = cid\n"
    "        self.value: int = 0\n"
    "    def __key__(self):\n"
    "        return self.cid\n"
    "    def add(self, amount: int) -> int:\n"
    "        self.value += amount\n"
    "        return self.value\n")


def _validate(*sources: str):
    descriptors = {}
    for source in sources:
        descriptor = analyze_class(source=source)
        descriptors[descriptor.name] = descriptor
    graph = build_call_graph(descriptors)
    validate_program(descriptors, graph)


def test_valid_program_passes():
    _validate(COUNTER)


def test_key_mutation_rejected():
    bad = (
        "class Renamer:\n"
        "    def __init__(self, rid: str):\n"
        "        self.rid: str = rid\n"
        "    def __key__(self):\n"
        "        return self.rid\n"
        "    def rename(self, new_id: str) -> bool:\n"
        "        self.rid = new_id\n"
        "        return True\n")
    with pytest.raises(KeyMutationError) as excinfo:
        _validate(bad)
    assert excinfo.value.method == "rename"


def test_key_augmented_assignment_rejected():
    bad = (
        "class Renamer:\n"
        "    def __init__(self, rid: str):\n"
        "        self.rid: str = rid\n"
        "    def __key__(self):\n"
        "        return self.rid\n"
        "    def mangle(self) -> bool:\n"
        "        self.rid += '-x'\n"
        "        return True\n")
    with pytest.raises(KeyMutationError):
        _validate(bad)


def test_key_assignment_in_init_allowed():
    _validate(COUNTER)  # __init__ assigns self.cid and must be legal


def test_generator_rejected():
    bad = (
        "class Gen:\n"
        "    def __init__(self, gid: str):\n"
        "        self.gid: str = gid\n"
        "    def __key__(self):\n"
        "        return self.gid\n"
        "    def stream(self) -> int:\n"
        "        yield 1\n")
    with pytest.raises(UnsupportedConstructError):
        _validate(bad)


def test_await_rejected():
    bad = (
        "class Waiter:\n"
        "    def __init__(self, wid: str):\n"
        "        self.wid: str = wid\n"
        "    def __key__(self):\n"
        "        return self.wid\n"
        "    def wait(self, thing: int) -> int:\n"
        "        return await thing\n")
    with pytest.raises((UnsupportedConstructError, SyntaxError)):
        _validate(bad)


def test_remote_call_in_constructor_rejected():
    bad = (
        "class Eager:\n"
        "    def __init__(self, eid: str, c: Counter):\n"
        "        self.eid: str = eid\n"
        "        self.start: int = c.add(1)\n"
        "    def __key__(self):\n"
        "        return self.eid\n")
    with pytest.raises(CompilationError) as excinfo:
        _validate(COUNTER, bad)
    assert "__init__" in str(excinfo.value)


def test_call_to_undefined_method_rejected():
    bad = (
        "class Caller:\n"
        "    def __init__(self, cid2: str):\n"
        "        self.cid2: str = cid2\n"
        "    def __key__(self):\n"
        "        return self.cid2\n"
        "    def go(self, c: Counter) -> int:\n"
        "        return c.subtract(1)\n")
    with pytest.raises(CompilationError) as excinfo:
        _validate(COUNTER, bad)
    assert "subtract" in str(excinfo.value)


def test_call_to_unknown_entity_rejected():
    bad = (
        "class Caller:\n"
        "    def __init__(self, cid2: str):\n"
        "        self.cid2: str = cid2\n"
        "    def __key__(self):\n"
        "        return self.cid2\n"
        "    def go(self, m: Missing) -> int:\n"
        "        return m.poke(1)\n")
    descriptors = {"Caller": analyze_class(source=bad)}
    graph = build_call_graph(descriptors)
    # Missing is not an entity, so the call is simply not remote; the
    # program validates (m is treated as an opaque Python object).
    validate_program(descriptors, graph)
