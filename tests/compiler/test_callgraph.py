"""Pass 2: inter-entity call graph, recursion detection."""

import pytest

from zoo import Counter, Item, User, Zoo

from repro.compiler import analyze_class, build_call_graph
from repro.core.errors import RecursionNotSupportedError


def _graph(*classes):
    descriptors = {cls.__name__: analyze_class(cls) for cls in classes}
    return build_call_graph(descriptors), descriptors


class TestShopGraph:
    def test_edges(self):
        graph, _ = _graph(Item, User)
        assert ("User.buy_item", "Item.price") in graph.edges()
        assert ("User.buy_item", "Item.update_stock") in graph.edges()

    def test_interacting_entities(self):
        graph, _ = _graph(Item, User)
        assert graph.interacting_entities() == {("User", "Item")}

    def test_callees_of(self):
        graph, _ = _graph(Item, User)
        sites = graph.callees_of("User", "buy_item")
        assert {s.callee_method for s in sites} == {"price", "update_stock"}
        # update_stock is called twice (buy + compensation).
        assert sum(1 for s in sites
                   if s.callee_method == "update_stock") == 2

    def test_methods_needing_split(self):
        graph, _ = _graph(Item, User)
        assert graph.methods_needing_split() == {("User", "buy_item")}

    def test_descriptor_enriched(self):
        _, descriptors = _graph(Item, User)
        buy = descriptors["User"].methods["buy_item"]
        assert buy.entity_params == {"item": "Item"}
        assert buy.has_remote_interaction()


class TestZooGraph:
    def test_self_call_detected(self):
        graph, _ = _graph(Counter, Zoo)
        sites = graph.callees_of("Zoo", "helper_chain")
        assert any(s.is_self_call and s.callee_method == "double_add"
                   for s in sites)

    def test_self_call_propagates_split(self):
        graph, _ = _graph(Counter, Zoo)
        needs = graph.methods_needing_split()
        assert ("Zoo", "double_add") in needs
        assert ("Zoo", "helper_chain") in needs

    def test_constructor_call_detected(self):
        graph, _ = _graph(Counter, Zoo)
        sites = graph.callees_of("Zoo", "constructs")
        assert any(s.is_constructor and s.callee_entity == "Counter"
                   for s in sites)

    def test_local_only_method_not_split(self):
        graph, _ = _graph(Counter, Zoo)
        assert ("Zoo", "local_only") not in graph.methods_needing_split()


class TestRecursionDetection:
    def _source(self, body: str) -> str:
        return (
            "class Rec:\n"
            "    def __init__(self, rid: str):\n"
            "        self.rid: str = rid\n"
            "    def __key__(self):\n"
            "        return self.rid\n"
            + body)

    def test_direct_self_recursion_rejected(self):
        source = self._source(
            "    def spin(self, x: int) -> int:\n"
            "        return self.spin(x - 1)\n")
        descriptors = {"Rec": __import__("repro").compiler.analyze_class(
            source=source)}
        from repro.compiler import build_call_graph
        graph = build_call_graph(descriptors)
        with pytest.raises(RecursionNotSupportedError):
            graph.check_no_recursion()

    def test_mutual_recursion_rejected(self):
        source = self._source(
            "    def ping(self, x: int) -> int:\n"
            "        return self.pong(x)\n"
            "    def pong(self, x: int) -> int:\n"
            "        return self.ping(x)\n")
        from repro.compiler import analyze_class, build_call_graph
        graph = build_call_graph({"Rec": analyze_class(source=source)})
        with pytest.raises(RecursionNotSupportedError) as excinfo:
            graph.check_no_recursion()
        assert "->" in str(excinfo.value)

    def test_acyclic_chain_accepted(self):
        graph, _ = _graph(Item, User)
        graph.check_no_recursion()  # must not raise
