"""Split-execution equivalence: the compiled state machine must behave
exactly like the original imperative Python.

For every zoo method we run the compiled program on the Local runtime
and the plain-Python oracle twin directly, on the same inputs, and
compare both the return value and the final entity states.  Hypothesis
drives the inputs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from zoo import ZOO_CASES, OracleCounter, OracleZoo

from repro.runtimes import LocalRuntime


def _run_compiled(zoo_program, method, args):
    runtime = LocalRuntime(zoo_program)
    counter = runtime.create("Counter", "c1")
    zoo = runtime.create("Zoo", "z1")
    result = runtime.invoke(zoo, method, counter, *args)
    return (result.unwrap(),
            runtime.entity_state(counter),
            runtime.entity_state(zoo))


def _run_oracle(method, args):
    counter = OracleCounter("c1")
    zoo = OracleZoo("z1")
    value = getattr(zoo, method)(counter, *args)
    return value, vars(counter), vars(zoo)


@pytest.mark.parametrize("method,make_args", ZOO_CASES,
                         ids=[case[0] for case in ZOO_CASES])
@given(x=st.integers(min_value=0, max_value=12))
@settings(max_examples=20, deadline=None)
def test_zoo_method_equivalence(zoo_program, method, make_args, x):
    args = make_args(x)
    compiled_value, compiled_counter, compiled_zoo = _run_compiled(
        zoo_program, method, args)
    oracle_value, oracle_counter, oracle_zoo = _run_oracle(method, args)
    assert compiled_value == oracle_value
    assert compiled_counter == oracle_counter
    assert compiled_zoo == oracle_zoo


@given(x=st.integers(min_value=-10, max_value=10))
@settings(max_examples=25, deadline=None)
def test_local_only_equivalence(zoo_program, x):
    runtime = LocalRuntime(zoo_program)
    zoo = runtime.create("Zoo", "z1")
    compiled = runtime.call(zoo, "local_only", x)
    assert compiled == OracleZoo("z1").local_only(x)


@given(x=st.integers(min_value=0, max_value=8),
       y=st.integers(min_value=0, max_value=8))
@settings(max_examples=15, deadline=None)
def test_sequential_calls_accumulate_like_python(zoo_program, x, y):
    """State persists across invocations identically in both worlds."""
    runtime = LocalRuntime(zoo_program)
    counter = runtime.create("Counter", "c1")
    zoo = runtime.create("Zoo", "z1")
    runtime.call(zoo, "straight", counter, x)
    runtime.call(zoo, "loop_for", counter, y)
    compiled_state = runtime.entity_state(counter)

    oracle_counter = OracleCounter("c1")
    oracle = OracleZoo("z1")
    oracle.straight(oracle_counter, x)
    oracle.loop_for(oracle_counter, y)
    assert compiled_state == vars(oracle_counter)


def test_constructs_creates_entity(zoo_program):
    runtime = LocalRuntime(zoo_program)
    zoo = runtime.create("Zoo", "z1")
    result = runtime.call(zoo, "constructs", "fresh-counter", 9)
    assert result == 9
    from repro.core.refs import EntityRef

    assert runtime.entity_state(
        EntityRef("Counter", "fresh-counter")) == {
            "cid": "fresh-counter", "value": 9}


def test_split_all_mode_equivalent(zoo_program):
    """Paper-literal splitting (every control-flow construct) must not
    change behaviour."""
    from zoo import ZOO_ENTITIES

    from repro import compile_program

    eager = compile_program(ZOO_ENTITIES, split_all_control_flow=True)
    for method, make_args in ZOO_CASES:
        args = make_args(5)
        lazy_result = _run_compiled(zoo_program, method, args)
        eager_result = _run_compiled(eager, method, args)
        assert lazy_result == eager_result, method
