"""Load driver + partial TPC-C."""

import pytest

from repro.core.refs import EntityRef
from repro.runtimes import LocalRuntime
from repro.runtimes.stateflow import StateflowRuntime
from repro.workloads import (
    Account,
    DriverConfig,
    WorkloadDriver,
    YcsbWorkload,
    order_line_refs,
    sample_dataset,
    stock_key,
)


class TestDriver:
    def test_open_loop_rate(self, account_program):
        runtime = StateflowRuntime(account_program)
        workload = YcsbWorkload("A", record_count=50, seed=2)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=200, duration_ms=2_000, warmup_ms=0, drain_ms=2_000,
            seed=4))
        result = driver.run()
        # Poisson arrivals: expect ~400 +- a generous margin.
        assert 300 < result.sent < 500
        assert result.completed == result.sent
        assert result.errors == 0
        assert result.achieved_rps > 0
        assert result.completion_rate == 1.0

    def test_warmup_excluded_from_samples(self, account_program):
        runtime = StateflowRuntime(account_program)
        workload = YcsbWorkload("A", record_count=10, seed=2)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=100, duration_ms=2_000, warmup_ms=1_000, drain_ms=2_000))
        result = driver.run()
        assert result.recorder.count() < result.completed

    def test_labels_recorded(self, account_program):
        runtime = StateflowRuntime(account_program)
        workload = YcsbWorkload("M", record_count=50, seed=2)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=300, duration_ms=2_000, warmup_ms=0, drain_ms=3_000))
        result = driver.run()
        assert result.recorder.count("read") > 0
        assert result.recorder.count("transfer") > 0


@pytest.fixture()
def tpcc_local(tpcc_program):
    runtime = LocalRuntime(tpcc_program)
    for entity_name, rows in sample_dataset().items():
        for args in rows:
            runtime.create(entity_name, *args)
    return runtime


class TestTpcc:
    def test_dataset_shape(self):
        rows = sample_dataset(warehouses=2, districts_per_wh=3,
                              customers_per_district=4, items=10)
        assert len(rows["Warehouse"]) == 2
        assert len(rows["District"]) == 6
        assert len(rows["Customer"]) == 24
        assert len(rows["Stock"]) == 20

    def test_new_order_total(self, tpcc_local):
        customer = EntityRef("Customer", "wh-0:d-0:c-0")
        district = EntityRef("District", "wh-0:d-0")
        lines = order_line_refs("wh-0", [1, 2, 3])
        total = tpcc_local.call(customer, "new_order", district, lines,
                                [5, 3, 2])
        assert total == 5 * 11 + 3 * 12 + 2 * 13
        state = tpcc_local.entity_state(customer)
        assert state["balance"] == total
        assert state["order_count"] == 1

    def test_new_order_draws_order_ids(self, tpcc_local):
        customer = EntityRef("Customer", "wh-0:d-0:c-0")
        district = EntityRef("District", "wh-0:d-0")
        lines = order_line_refs("wh-0", [0])
        tpcc_local.call(customer, "new_order", district, lines, [1])
        tpcc_local.call(customer, "new_order", district, lines, [1])
        assert tpcc_local.entity_state(district)["next_o_id"] == 3

    def test_stock_restocks_below_threshold(self, tpcc_local):
        stock = EntityRef("Stock", stock_key("wh-0", 0))
        # quantity 100; take 95 -> would drop below 10 -> +91 first.
        cost = tpcc_local.call(stock, "take", 95)
        assert cost == 95 * 10
        assert tpcc_local.entity_state(stock)["quantity"] == 100 + 91 - 95

    def test_payment_updates_three_entities(self, tpcc_local):
        customer = EntityRef("Customer", "wh-0:d-1:c-2")
        warehouse = EntityRef("Warehouse", "wh-0")
        district = EntityRef("District", "wh-0:d-1")
        assert tpcc_local.call(customer, "payment", 250, warehouse,
                               district) is True
        assert tpcc_local.entity_state(customer)["ytd_payment"] == 250
        assert tpcc_local.entity_state(warehouse)["ytd"] == 250
        assert tpcc_local.entity_state(district)["ytd"] == 250

    def test_new_order_atomic_on_stateflow(self, tpcc_program):
        runtime = StateflowRuntime(tpcc_program)
        for entity_name, rows in sample_dataset().items():
            runtime.preload(entity_name, rows)
        runtime.start()
        customer = EntityRef("Customer", "wh-0:d-0:c-0")
        district = EntityRef("District", "wh-0:d-0")
        lines = order_line_refs("wh-0", [4, 5])
        total = runtime.call(customer, "new_order", district, lines, [2, 2])
        assert total == 2 * 14 + 2 * 15
        assert runtime.coordinator.stats.transactions >= 1
