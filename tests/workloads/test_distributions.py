"""Key distributions: range, skew, determinism."""

from collections import Counter as TallyCounter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import (
    UniformDistribution,
    ZipfianDistribution,
    make_distribution,
)


class TestUniform:
    def test_in_range(self):
        dist = UniformDistribution(10, seed=1)
        assert all(0 <= dist.next_index() < 10 for _ in range(500))

    def test_roughly_flat(self):
        dist = UniformDistribution(4, seed=1)
        tally = TallyCounter(dist.next_index() for _ in range(8000))
        for count in tally.values():
            assert 1700 < count < 2300


class TestZipfian:
    def test_in_range(self):
        dist = ZipfianDistribution(100, seed=2)
        assert all(0 <= dist.next_index() < 100 for _ in range(2000))

    def test_skew_matches_theory(self):
        dist = ZipfianDistribution(1000, seed=2, theta=0.99)
        tally = TallyCounter(dist.next_index() for _ in range(30000))
        top_share = tally[0] / 30000
        expected = dist.expected_top_share()
        assert expected * 0.8 < top_share < expected * 1.2

    def test_more_skewed_than_uniform(self):
        zipf = ZipfianDistribution(100, seed=3)
        tally = TallyCounter(zipf.next_index() for _ in range(10000))
        assert tally[0] > 10000 / 100 * 4

    def test_rank_zero_hottest(self):
        dist = ZipfianDistribution(50, seed=4)
        tally = TallyCounter(dist.next_index() for _ in range(20000))
        hottest = tally.most_common(1)[0][0]
        assert hottest == 0

    def test_determinism(self):
        first = ZipfianDistribution(100, seed=5)
        second = ZipfianDistribution(100, seed=5)
        assert [first.next_index() for _ in range(50)] == \
            [second.next_index() for _ in range(50)]

    def test_theta_bounds(self):
        with pytest.raises(ValueError):
            ZipfianDistribution(10, theta=0.0)
        with pytest.raises(ValueError):
            ZipfianDistribution(10, theta=-0.5)

    def test_heavy_skew_theta_uses_exact_inversion(self):
        # theta >= 1 (outside Gray's formula) samples from the exact
        # CDF: the empirical top-rank share must track 1/zeta_n.
        heavy = ZipfianDistribution(500, seed=11, theta=1.3)
        tally = TallyCounter(heavy.next_index() for _ in range(20_000))
        top_share = tally[0] / 20_000
        assert abs(top_share - heavy.expected_top_share()) < 0.02
        # Skew is monotone in theta: rank 0 gets hotter, and every draw
        # stays in range.
        mild = ZipfianDistribution(500, seed=11, theta=0.99)
        mild_tally = TallyCounter(mild.next_index() for _ in range(20_000))
        assert top_share > mild_tally[0] / 20_000
        assert all(0 <= rank < 500 for rank in tally)

    def test_heavy_skew_is_deterministic(self):
        a = ZipfianDistribution(200, seed=3, theta=1.1)
        b = ZipfianDistribution(200, seed=3, theta=1.1)
        assert [a.next_index() for _ in range(500)] == \
            [b.next_index() for _ in range(500)]

    def test_scramble_spreads_hot_key(self):
        plain = ZipfianDistribution(100, seed=6)
        scrambled = ZipfianDistribution(100, seed=6, scramble=True)
        plain_tally = TallyCounter(plain.next_index() for _ in range(5000))
        scrambled_tally = TallyCounter(
            scrambled.next_index() for _ in range(5000))
        # Same skew, different hottest identity.
        assert plain_tally.most_common(1)[0][1] == pytest.approx(
            scrambled_tally.most_common(1)[0][1], rel=0.25)


class TestFactory:
    def test_names(self):
        assert make_distribution("zipfian", 10).name == "zipfian"
        assert make_distribution("uniform", 10).name == "uniform"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_distribution("pareto", 10)

    def test_empty_keyspace_rejected(self):
        with pytest.raises(ValueError):
            make_distribution("uniform", 0)


@given(st.integers(1, 500), st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_zipfian_always_in_range(n, seed):
    dist = ZipfianDistribution(n, seed=seed)
    for _ in range(20):
        assert 0 <= dist.next_index() < n
