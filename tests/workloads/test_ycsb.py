"""YCSB workload generation + the Account entity semantics."""

from collections import Counter as TallyCounter

import pytest

from repro.runtimes import LocalRuntime
from repro.workloads import WORKLOAD_MIXES, YcsbWorkload
from repro.workloads.ycsb import Account


class TestMixes:
    def test_paper_mixes(self):
        assert WORKLOAD_MIXES["A"] == (0.50, 0.50, 0.00)
        assert WORKLOAD_MIXES["B"] == (0.95, 0.05, 0.00)
        assert WORKLOAD_MIXES["T"] == (0.00, 0.00, 1.00)
        assert WORKLOAD_MIXES["M"] == (0.45, 0.45, 0.10)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            YcsbWorkload("Z")

    @pytest.mark.parametrize("name", ["A", "B", "M"])
    def test_observed_mix_matches(self, name):
        workload = YcsbWorkload(name, record_count=100, seed=3)
        tally = TallyCounter(op.kind for op in workload.operations(6000))
        read_share, update_share, transfer_share = WORKLOAD_MIXES[name]
        assert tally["read"] / 6000 == pytest.approx(read_share, abs=0.03)
        assert tally["update"] / 6000 == pytest.approx(update_share, abs=0.03)
        assert tally.get("transfer", 0) / 6000 == pytest.approx(
            transfer_share, abs=0.02)

    def test_t_is_all_transfers(self):
        workload = YcsbWorkload("T", record_count=10, seed=3)
        assert all(op.kind == "transfer" for op in workload.operations(200))


class TestOperations:
    def test_transfer_targets_distinct_keys(self):
        workload = YcsbWorkload("T", record_count=5, seed=1)
        for op in workload.operations(300):
            assert op.ref.key != op.args[1].key

    def test_dataset_rows(self):
        workload = YcsbWorkload("A", record_count=3, initial_balance=7)
        assert workload.dataset_rows() == [
            ("acct-000000", 7), ("acct-000001", 7), ("acct-000002", 7)]
        assert workload.total_balance() == 21

    def test_update_payloads_unique(self):
        workload = YcsbWorkload("A", record_count=10, seed=2)
        payloads = [op.args[0] for op in workload.operations(500)
                    if op.kind == "update"]
        assert len(payloads) == len(set(payloads))

    def test_determinism(self):
        first = YcsbWorkload("M", record_count=20, seed=9)
        second = YcsbWorkload("M", record_count=20, seed=9)
        ops_a = [(o.kind, o.ref.key) for o in first.operations(100)]
        ops_b = [(o.kind, o.ref.key) for o in second.operations(100)]
        assert ops_a == ops_b


class TestAccountEntity:
    def test_semantics_on_local_runtime(self, account_program):
        runtime = LocalRuntime(account_program)
        a = runtime.create(Account, "a", 100)
        b = runtime.create(Account, "b", 50)
        assert runtime.call(a, "read") == 100
        assert runtime.call(a, "write", "blob") is True
        assert runtime.entity_state(a)["payload"] == "blob"
        assert runtime.call(a, "transfer", 40, b) is True
        assert runtime.call(a, "read") == 60
        assert runtime.call(b, "read") == 90

    def test_transfer_insufficient(self, account_program):
        runtime = LocalRuntime(account_program)
        a = runtime.create(Account, "a", 10)
        b = runtime.create(Account, "b", 0)
        assert runtime.call(a, "transfer", 40, b) is False
        assert runtime.call(a, "read") == 10

    def test_transfer_is_transactional_method(self, account_program):
        descriptor = account_program.entities["Account"].descriptor
        assert descriptor.methods["transfer"].is_transactional
        assert not descriptor.methods["read"].is_transactional
