"""DES kernel: ordering, cancellation, CPU queueing, metrics."""

import pytest

from repro.substrates.simulation import (
    CpuPool,
    MetricRecorder,
    Simulation,
    SimulationError,
)


class TestKernel:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(5, lambda: order.append("b"))
        sim.schedule(1, lambda: order.append("a"))
        sim.schedule(9, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 9

    def test_ties_break_by_schedule_order(self):
        sim = Simulation()
        order = []
        for tag in "abc":
            sim.schedule(3, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_time(self):
        sim = Simulation()
        fired = []
        sim.schedule(10, lambda: fired.append(1))
        sim.run(until=5)
        assert not fired
        assert sim.now == 5
        sim.run()
        assert fired

    def test_cancellation(self):
        sim = Simulation()
        fired = []
        handle = sim.schedule(1, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert not fired

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulation().schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulation()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulation()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(2, lambda: seen.append(sim.now))

        sim.schedule(1, first)
        sim.run()
        assert seen == [1, 3]

    def test_run_until_predicate(self):
        sim = Simulation()
        box = []
        sim.schedule(4, lambda: box.append(1))
        sim.schedule(8, lambda: box.append(2))
        assert sim.run_until(lambda: len(box) == 1)
        assert sim.now == 4
        assert not sim.run_until(lambda: len(box) == 5)

    def test_determinism_same_seed(self):
        def trace(seed):
            sim = Simulation(seed=seed)
            values = []
            for _ in range(20):
                sim.schedule(sim.rng.random() * 10,
                             lambda: values.append(sim.now))
            sim.run()
            return values

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)


class TestCpuPool:
    def test_single_core_serialises(self):
        sim = Simulation()
        pool = CpuPool(sim, 1)
        done = []
        pool.submit(10, lambda: done.append(sim.now))
        pool.submit(10, lambda: done.append(sim.now))
        sim.run()
        assert done == [10, 20]

    def test_multi_core_parallel(self):
        sim = Simulation()
        pool = CpuPool(sim, 2)
        done = []
        pool.submit(10, lambda: done.append(sim.now))
        pool.submit(10, lambda: done.append(sim.now))
        sim.run()
        assert done == [10, 10]

    def test_queueing_when_saturated(self):
        sim = Simulation()
        pool = CpuPool(sim, 2)
        done = []
        for _ in range(4):
            pool.submit(10, lambda: done.append(sim.now))
        sim.run()
        assert done == [10, 10, 20, 20]

    def test_utilisation(self):
        sim = Simulation()
        pool = CpuPool(sim, 2)
        pool.submit(10, lambda: None)
        sim.run()
        assert pool.utilisation(10) == pytest.approx(0.5)

    def test_zero_cores_rejected(self):
        with pytest.raises(SimulationError):
            CpuPool(Simulation(), 0)

    def test_queue_depth(self):
        sim = Simulation()
        pool = CpuPool(sim, 1)
        pool.submit(10, lambda: None)
        pool.submit(10, lambda: None)
        # A new task would wait for both booked jobs on the single core.
        assert pool.queue_depth_ms == 20


class TestMetricRecorder:
    def test_percentiles(self):
        recorder = MetricRecorder()
        for value in range(1, 101):
            recorder.record(float(value), at_ms=0)
        assert recorder.percentile(50) == pytest.approx(50.5)
        assert recorder.percentile(99) == pytest.approx(99.01)
        assert recorder.mean() == pytest.approx(50.5)

    def test_labels(self):
        recorder = MetricRecorder()
        recorder.record(1.0, 0, label="read")
        recorder.record(9.0, 0, label="transfer")
        assert recorder.values("read") == [1.0]
        assert recorder.count("transfer") == 1
        assert recorder.mean() == 5.0

    def test_empty_is_nan(self):
        import math

        assert math.isnan(MetricRecorder().percentile(99))
