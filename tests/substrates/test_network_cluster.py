"""Network latency models and the cluster layout."""

import pytest

from repro.substrates.cluster import Cluster, ClusterLayout
from repro.substrates.network import LatencyModel, Network, NetworkConfig
from repro.substrates.simulation import Simulation


class TestLatencyModel:
    def test_samples_positive_and_floored(self):
        sim = Simulation(seed=1)
        model = LatencyModel(median_ms=0.0001, floor_ms=0.05)
        assert all(model.sample(sim) >= 0.05 for _ in range(50))

    def test_median_roughly_respected(self):
        sim = Simulation(seed=1)
        model = LatencyModel(median_ms=10.0, sigma=0.3)
        samples = sorted(model.sample(sim) for _ in range(500))
        median = samples[len(samples) // 2]
        assert 8.0 < median < 12.0

    def test_scaled(self):
        model = LatencyModel(median_ms=4.0).scaled(2.0)
        assert model.median_ms == 8.0


class TestNetwork:
    def test_send_delivers_after_latency(self):
        sim = Simulation(seed=2)
        network = Network(sim, NetworkConfig(
            intra_cluster=LatencyModel(median_ms=3.0, sigma=0.0001)))
        seen = []
        network.send(lambda: seen.append(sim.now))
        sim.run()
        assert len(seen) == 1
        assert seen[0] == pytest.approx(3.0, rel=0.05)
        assert network.messages_sent == 1

    def test_rpc_round_trip(self):
        sim = Simulation(seed=2)
        network = Network(sim, NetworkConfig(
            rpc_hop=LatencyModel(median_ms=2.0, sigma=0.0001)))
        trace = []

        def service(done):
            trace.append(("served", sim.now))
            sim.schedule(5.0, done)

        network.rpc(service, lambda: trace.append(("back", sim.now)))
        sim.run()
        assert trace[0][0] == "served"
        assert trace[1][0] == "back"
        # ~2ms there + 5ms service + ~2ms back
        assert trace[1][1] == pytest.approx(9.0, rel=0.1)


class TestCluster:
    def test_paper_layout_totals_14(self):
        layout = ClusterLayout()
        assert layout.total == 14
        assert (layout.kafka_cores, layout.system_cores,
                layout.client_cores) == (4, 6, 4)

    def test_nodes_and_failure(self):
        sim = Simulation()
        cluster = Cluster(sim)
        node = cluster.add_node("w1", cores=2)
        assert cluster.node("w1") is node
        assert node.alive
        node.kill()
        assert cluster.alive_nodes() == []
        node.restart()
        assert cluster.alive_nodes() == [node]

    def test_duplicate_node_rejected(self):
        cluster = Cluster(Simulation())
        cluster.add_node("w1", 1)
        with pytest.raises(ValueError):
            cluster.add_node("w1", 1)
