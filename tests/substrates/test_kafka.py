"""Simulated Kafka: partitioning, ordering, offsets, replay, pause."""

import pytest

from repro.substrates.kafka import KafkaBroker, KafkaConfig, KafkaError
from repro.substrates.network import LatencyModel
from repro.substrates.simulation import Simulation


def _broker(partitions=2, fetch_ms=1.0, produce_ms=1.0):
    sim = Simulation(seed=3)
    config = KafkaConfig(
        produce_latency=LatencyModel(median_ms=produce_ms, sigma=0.0001),
        fetch_latency=LatencyModel(median_ms=fetch_ms, sigma=0.0001))
    broker = KafkaBroker(sim, config)
    broker.create_topic("t", partitions)
    return sim, broker


class TestTopology:
    def test_create_and_partitions(self):
        _, broker = _broker(partitions=3)
        assert broker.partitions("t") == 3

    def test_duplicate_topic_rejected(self):
        _, broker = _broker()
        with pytest.raises(KafkaError):
            broker.create_topic("t", 1)

    def test_unknown_topic_rejected(self):
        _, broker = _broker()
        with pytest.raises(KafkaError):
            broker.produce("ghost", "k", "v")

    def test_zero_partitions_rejected(self):
        _, broker = _broker()
        with pytest.raises(KafkaError):
            broker.create_topic("bad", 0)


class TestProduceConsume:
    def test_same_key_same_partition(self):
        _, broker = _broker(partitions=4)
        assert broker.partition_for("t", "alice") == \
            broker.partition_for("t", "alice")

    def test_per_partition_order_preserved(self):
        sim, broker = _broker(partitions=1, fetch_ms=2.0)
        received = []
        broker.subscribe("g", "t", lambda r: received.append(r.value))
        for index in range(20):
            broker.produce("t", "k", index)
        sim.run()
        assert received == list(range(20))

    def test_deliveries_are_pipelined(self):
        """Throughput must not be limited to one record per fetch
        latency (regression: Figure 4 saturation artefact)."""
        sim, broker = _broker(partitions=1, fetch_ms=5.0, produce_ms=0.1)
        received = []
        broker.subscribe("g", "t", lambda r: received.append(sim.now))
        for _ in range(100):
            broker.produce("t", "k", "v")
        sim.run()
        assert len(received) == 100
        # Serial delivery would need >= 100 * 5ms = 500ms; pipelined
        # delivery completes little after the last produce + one fetch.
        assert sim.now < 60

    def test_two_groups_both_receive(self):
        sim, broker = _broker(partitions=1)
        first, second = [], []
        broker.subscribe("g1", "t", lambda r: first.append(r.value))
        broker.subscribe("g2", "t", lambda r: second.append(r.value))
        broker.produce("t", "k", "v")
        sim.run()
        assert first == ["v"] and second == ["v"]

    def test_ack_callback(self):
        sim, broker = _broker(partitions=2)
        acks = []
        broker.produce("t", "key", "v",
                       on_ack=lambda p, o: acks.append((p, o)))
        sim.run()
        assert len(acks) == 1
        partition, offset = acks[0]
        assert offset == 0
        assert partition == broker.partition_for("t", "key")

    def test_subscribe_requires_handler_first_time(self):
        _, broker = _broker()
        with pytest.raises(KafkaError):
            broker.subscribe("g", "t")


class TestOffsetsAndReplay:
    def test_positions_advance(self):
        sim, broker = _broker(partitions=1)
        broker.subscribe("g", "t", lambda r: None)
        for _ in range(5):
            broker.produce("t", "k", "v")
        sim.run()
        assert broker.position("g", "t", 0) == 5
        assert broker.end_offset("t", 0) == 5

    def test_seek_replays(self):
        sim, broker = _broker(partitions=1)
        received = []
        broker.subscribe("g", "t", lambda r: received.append(r.value))
        for index in range(4):
            broker.produce("t", "k", index)
        sim.run()
        broker.seek("g", "t", 0, 1)
        sim.run()
        assert received == [0, 1, 2, 3, 1, 2, 3]

    def test_pause_blocks_and_resume_replays(self):
        sim, broker = _broker(partitions=1)
        received = []
        broker.subscribe("g", "t", lambda r: received.append(r.value))
        broker.produce("t", "k", "early")
        sim.run()
        broker.pause("g")
        broker.produce("t", "k", "while-paused")
        sim.run()
        assert received == ["early"]
        broker.resume("g")
        sim.run()
        assert received == ["early", "while-paused"]

    def test_pause_seek_resume_recovery_pattern(self):
        """The exact sequence snapshot recovery uses."""
        sim, broker = _broker(partitions=1)
        received = []
        broker.subscribe("g", "t", lambda r: received.append(r.value))
        for index in range(6):
            broker.produce("t", "k", index)
        sim.run()
        broker.pause("g")
        broker.seek("g", "t", 0, 2)
        broker.resume("g")
        sim.run()
        assert received == [0, 1, 2, 3, 4, 5, 2, 3, 4, 5]

    def test_counters(self):
        sim, broker = _broker(partitions=1)
        broker.subscribe("g", "t", lambda r: None)
        for _ in range(3):
            broker.produce("t", "k", "v")
        sim.run()
        assert broker.records_produced == 3
        assert broker.records_delivered == 3
