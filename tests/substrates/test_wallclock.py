"""WallClock kernel: the Simulation surface on a real monotonic clock.

These are tier-1 tests, so every real wait is kept to tens of
milliseconds.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.substrates.simulation import SimulationError
from repro.substrates.wallclock import WallClock


def test_now_advances_with_real_time() -> None:
    clock = WallClock()
    before = clock.now
    time.sleep(0.01)
    assert clock.now >= before + 5.0


def test_schedule_negative_delay_raises() -> None:
    with pytest.raises(SimulationError):
        WallClock().schedule(-1.0, lambda: None)


def test_schedule_at_clamps_past_deadlines() -> None:
    clock = WallClock()
    fired: list[float] = []
    # A deadline already in the past must fire promptly, not raise —
    # real clocks race the scheduler (unlike the simulator).
    clock.schedule_at(clock.now - 100.0, lambda: fired.append(clock.now))
    assert clock.run_until(lambda: bool(fired), max_time=clock.now + 2_000)
    assert fired


def test_timers_fire_in_deadline_order() -> None:
    clock = WallClock()
    order: list[str] = []
    clock.schedule(30.0, lambda: order.append("late"))
    clock.schedule(5.0, lambda: order.append("early"))
    clock.run()
    assert order == ["early", "late"]


def test_cancelled_events_are_skipped_and_pending_counts() -> None:
    clock = WallClock()
    fired: list[str] = []
    keep = clock.schedule(5.0, lambda: fired.append("keep"))
    drop = clock.schedule(5.0, lambda: fired.append("drop"))
    assert clock.pending() == 2
    drop.cancel()
    assert clock.pending() == 1
    clock.run()
    assert fired == ["keep"]
    assert not keep.cancelled


def test_run_until_max_time_is_absolute() -> None:
    clock = WallClock()
    ok = clock.run_until(lambda: False, max_time=clock.now + 30.0)
    assert not ok
    # The deadline bound the wait: well under a second of real time.
    assert clock.now < 2_000.0


def test_run_until_bound_returns_events_processed() -> None:
    clock = WallClock()
    hits: list[int] = []
    clock.schedule(1.0, lambda: hits.append(1))
    assert clock.run_until(lambda: bool(hits),
                           max_time=clock.now + 2_000.0)
    assert clock.processed_events == 1


def test_connection_polling_delivers_frames() -> None:
    clock = WallClock()
    parent, child = multiprocessing.Pipe(duplex=True)
    got: list[bytes] = []
    clock.register_connection(parent, got.append)
    child.send_bytes(b"hello")
    assert clock.run_until(lambda: bool(got), max_time=clock.now + 2_000)
    assert got == [b"hello"]
    clock.unregister_connection(parent)
    parent.close()
    child.close()


def test_dead_peer_drops_registration() -> None:
    clock = WallClock()
    parent, child = multiprocessing.Pipe(duplex=True)
    clock.register_connection(parent, lambda payload: None)
    child.close()
    # The closed peer surfaces as ready-with-EOF; the poll must drop the
    # registration instead of spinning or crashing.
    clock.run_until(lambda: not clock._connections,
                    max_time=clock.now + 2_000)
    assert not clock._connections
    parent.close()


def test_run_with_until_bound_returns() -> None:
    clock = WallClock()
    clock.schedule(10_000.0, lambda: None)  # far-future timer
    start = clock.now
    clock.run(until=start + 20.0)
    assert clock.now >= start + 20.0
    assert clock.now < start + 2_000.0
    assert clock.pending() == 1
