"""Property tests for the process substrate's binary wire format.

Every message type must survive an encode/decode round trip unchanged —
including identity-sensitive payloads (``TOMBSTONE``), structured
migration fragments (``SlotDelta``), and frames torn at arbitrary byte
boundaries across ``FrameDecoder.feed`` calls.  Truncated or corrupt
input must raise :class:`FrameError`, never yield a partial message.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtimes.state import TOMBSTONE, SlotDelta, StateDelta
from repro.substrates.wire import (
    MAGIC,
    MAX_FRAME_BYTES,
    MESSAGE_TYPES,
    Ack,
    ApplyWrites,
    CaptureSlot,
    Deliver,
    ExecuteSingleKey,
    FrameDecoder,
    FrameError,
    InstallSlot,
    Out,
    Seed,
    Shutdown,
    SingleKeyDone,
    SlotCaptured,
    decode_frame,
    encode_frame,
)

# ---------------------------------------------------------------------------
# Strategies: state values as they actually appear on the wire
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), st.text(max_size=20),
    st.binary(max_size=20),
    st.floats(allow_nan=False, allow_infinity=False))

_states = st.one_of(
    _scalars,
    st.just(TOMBSTONE),
    st.dictionaries(st.text(max_size=8), _scalars, max_size=4),
    st.lists(_scalars, max_size=4),
    st.tuples(_scalars, _scalars))

_keys = st.tuples(st.sampled_from(["Account", "Cart"]),
                  st.one_of(st.integers(), st.text(max_size=8)))

_write_sets = st.dictionaries(_keys, _states, max_size=5)

_slot_deltas = st.builds(
    SlotDelta,
    slot=st.integers(min_value=0, max_value=127),
    delta=st.builds(
        StateDelta,
        layers=st.tuples(st.dictionaries(_keys, _states, max_size=3))))


def _messages() -> st.SearchStrategy:
    return st.one_of(
        st.builds(Seed, payload=_write_sets, incarnation=st.integers(0, 5)),
        st.builds(Deliver, events=st.lists(_states, max_size=4),
                  incarnation=st.integers(0, 5)),
        st.builds(ApplyWrites, writes=_write_sets,
                  seq=st.integers(0, 1000), incarnation=st.integers(0, 5),
                  ack=st.booleans()),
        st.builds(ExecuteSingleKey, events=st.lists(_states, max_size=4),
                  seq=st.integers(0, 1000)),
        st.builds(CaptureSlot, slot=st.integers(0, 127),
                  mode=st.sampled_from(["full", "incremental"]),
                  seq=st.integers(0, 1000)),
        st.builds(InstallSlot, slot=st.integers(0, 127),
                  payload=st.one_of(_states, _slot_deltas),
                  seq=st.integers(0, 1000)),
        st.builds(Shutdown),
        st.builds(Out, events=st.lists(_states, max_size=4)),
        st.builds(Ack, seq=st.integers(0, 1000),
                  incarnation=st.integers(0, 5)),
        st.builds(SingleKeyDone, seq=st.integers(0, 1000),
                  replies=st.lists(_states, max_size=3),
                  writes=_write_sets),
        st.builds(SlotCaptured, seq=st.integers(0, 1000),
                  slot=st.integers(0, 127),
                  fragment=st.one_of(_states, _slot_deltas)))


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(_messages())
def test_round_trip_every_message_type(message) -> None:
    decoded = decode_frame(encode_frame(message))
    assert type(decoded) is type(message)
    assert decoded == message


def test_message_types_registry_is_exhaustive() -> None:
    swept = {Seed, Deliver, ApplyWrites, ExecuteSingleKey, CaptureSlot,
             InstallSlot, Shutdown, Out, Ack, SingleKeyDone, SlotCaptured}
    assert set(MESSAGE_TYPES) == swept


def test_tombstone_survives_by_identity() -> None:
    message = ApplyWrites(writes={("Account", 1): TOMBSTONE,
                                  ("Account", 2): {"balance": 7}})
    decoded = decode_frame(encode_frame(message))
    assert decoded.writes[("Account", 1)] is TOMBSTONE
    assert decoded.writes[("Account", 2)] == {"balance": 7}


def test_slot_delta_round_trip() -> None:
    delta = SlotDelta(slot=9, delta=StateDelta(layers=(
        {("Account", 1): {"balance": 10}},
        {("Account", 1): TOMBSTONE})))
    decoded = decode_frame(encode_frame(InstallSlot(slot=9, payload=delta)))
    assert decoded.payload.slot == 9
    merged = decoded.payload.delta.merged()
    assert merged[("Account", 1)] is TOMBSTONE


def test_out_of_band_buffers_round_trip() -> None:
    blob = b"x" * 4096
    message = Deliver(events=[pickle.PickleBuffer(blob)])
    frame = encode_frame(message)
    decoded = decode_frame(frame)
    assert bytes(decoded.events[0]) == blob


# ---------------------------------------------------------------------------
# Streaming: torn frames, batched chunks
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(st.lists(_messages(), min_size=1, max_size=5),
       st.integers(min_value=1, max_value=13))
def test_decoder_reassembles_torn_frames(messages, chunk_size) -> None:
    stream = b"".join(encode_frame(m) for m in messages)
    decoder = FrameDecoder()
    collected = []
    for start in range(0, len(stream), chunk_size):
        collected.extend(decoder.feed(stream[start:start + chunk_size]))
    assert collected == messages
    assert decoder.buffered_bytes == 0


def test_decoder_holds_partial_frame() -> None:
    frame = encode_frame(Ack(seq=7))
    decoder = FrameDecoder()
    assert decoder.feed(frame[:-1]) == []
    assert decoder.buffered_bytes == len(frame) - 1
    assert decoder.feed(frame[-1:]) == [Ack(seq=7)]


# ---------------------------------------------------------------------------
# Rejection: garbage must never decode
# ---------------------------------------------------------------------------


def test_truncated_frame_raises() -> None:
    frame = encode_frame(Seed(payload={("Account", 1): {"v": 1}}))
    for cut in (1, len(MAGIC), len(MAGIC) + 2, len(frame) - 1):
        with pytest.raises(FrameError):
            decode_frame(frame[:cut])


def test_trailing_garbage_raises() -> None:
    with pytest.raises(FrameError):
        decode_frame(encode_frame(Ack(seq=1)) + b"junk")


def test_bad_magic_raises() -> None:
    frame = bytearray(encode_frame(Ack(seq=1)))
    frame[0] ^= 0xFF
    with pytest.raises(FrameError):
        decode_frame(bytes(frame))
    with pytest.raises(FrameError):
        FrameDecoder().feed(bytes(frame))


def test_corrupt_body_raises() -> None:
    frame = bytearray(encode_frame(Ack(seq=1)))
    frame[-1] ^= 0xFF  # smash the pickle body, keep the length honest
    with pytest.raises(FrameError):
        decode_frame(bytes(frame))


def test_oversize_length_prefix_raises() -> None:
    bogus = MAGIC + (MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"\0" * 8
    with pytest.raises(FrameError):
        decode_frame(bogus)
    with pytest.raises(FrameError):
        FrameDecoder().feed(bogus)


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=0, max_size=64))
def test_random_garbage_never_decodes_silently(garbage) -> None:
    try:
        decoded = decode_frame(garbage)
    except FrameError:
        return
    # The only way random bytes decode is by being a genuine frame.
    assert decode_frame(encode_frame(decoded)) == decoded
