"""Spawner wiring: substrate resolution and the tier-1 process smoke.

The heavyweight process-substrate parity battery (serial oracle,
crash/recovery) lives in ``tests/integration/test_process_spawner.py``
and is marked ``slow``; this file keeps a fast end-to-end smoke in
tier 1 so a broken process path fails the default suite, not just CI's
process-smoke job.
"""

from __future__ import annotations

import pytest

from repro.compiler.pipeline import compile_program
from repro.faults import FaultPlan
from repro.ir.events import EntityRef
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.runtime import RuntimeExecutionError
from repro.substrates import (
    ProcessSpawner,
    Simulation,
    SimulatorSpawner,
    WallClock,
    make_spawner,
)
from repro.workloads import Account


def test_make_spawner_resolves_names() -> None:
    assert isinstance(make_spawner("simulator"), SimulatorSpawner)
    assert isinstance(make_spawner("process"), ProcessSpawner)
    instance = SimulatorSpawner()
    assert make_spawner(instance) is instance


def test_make_spawner_rejects_unknown_names() -> None:
    with pytest.raises(ValueError, match="process"):
        make_spawner("threads")


def test_spawner_kernels() -> None:
    assert isinstance(SimulatorSpawner().make_kernel(7), Simulation)
    kernel = ProcessSpawner().make_kernel(7)
    assert isinstance(kernel, WallClock)
    assert SimulatorSpawner().wallclock is False
    assert ProcessSpawner().wallclock is True


def test_default_config_stays_on_the_simulator() -> None:
    program = compile_program([Account])
    runtime = StateflowRuntime(program)
    assert isinstance(runtime.sim, Simulation)
    assert runtime.spawner.name == "simulator"


def test_fault_plan_rejected_on_process_spawner() -> None:
    program = compile_program([Account])
    with pytest.raises(RuntimeExecutionError, match="fault plans"):
        StateflowRuntime(program, config=StateflowConfig(
            spawner="process", fault_plan=FaultPlan(seed=1)))


def test_process_substrate_smoke() -> None:
    """End-to-end on real worker processes: create, read, transfer,
    and committed state lands in the parent's authoritative store."""
    program = compile_program([Account])
    runtime = StateflowRuntime(program, config=StateflowConfig(
        spawner="process", workers=2, exec_service_ms=0.0,
        state_op_ms=0.0))
    try:
        runtime.preload(Account, [("alice", 100), ("bob", 50)])
        runtime.start()
        alice = EntityRef("Account", "alice")
        bob = EntityRef("Account", "bob")
        assert runtime.invoke(alice, "read").unwrap() == 100
        assert runtime.invoke(alice, "transfer", 30, bob).unwrap() is True
        assert runtime.invoke(alice, "read").unwrap() == 70
        assert runtime.invoke(bob, "read").unwrap() == 80
        # The parent-side store is authoritative.
        assert runtime.entity_state(alice)["balance"] == 70
        assert runtime.entity_state(bob)["balance"] == 80
    finally:
        runtime.close()
