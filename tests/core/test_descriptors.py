"""Descriptor dataclasses: serde, helpers."""

from zoo import User

from repro.compiler import analyze_class, build_call_graph
from repro.core.descriptors import (
    EntityDescriptor,
    MethodDescriptor,
    ParamSpec,
    StateField,
)


def _user_descriptor():
    descriptor = analyze_class(User)
    from zoo import Item

    build_call_graph({"User": descriptor, "Item": analyze_class(Item)})
    return descriptor


class TestSerde:
    def test_entity_roundtrip(self):
        descriptor = _user_descriptor()
        restored = EntityDescriptor.from_dict(descriptor.to_dict())
        assert restored.name == "User"
        assert restored.key_attribute == "username"
        assert restored.state_names == descriptor.state_names
        assert set(restored.methods) == set(descriptor.methods)

    def test_method_roundtrip_preserves_enrichment(self):
        descriptor = _user_descriptor()
        buy = descriptor.methods["buy_item"]
        restored = MethodDescriptor.from_dict(buy.to_dict())
        assert restored.is_transactional
        assert restored.entity_params == {"item": "Item"}
        assert ("Item", "price") in restored.calls

    def test_param_and_field_roundtrips(self):
        param = ParamSpec("amount", "int")
        assert ParamSpec.from_dict(param.to_dict()) == param
        state_field = StateField("balance", "int")
        assert StateField.from_dict(state_field.to_dict()) == state_field


class TestHelpers:
    def test_param_names(self):
        descriptor = _user_descriptor()
        assert descriptor.methods["buy_item"].param_names == [
            "amount", "item"]

    def test_public_methods_include_init(self):
        descriptor = _user_descriptor()
        names = {m.name for m in descriptor.public_methods()}
        assert "__init__" in names
        assert "buy_item" in names

    def test_has_remote_interaction(self):
        descriptor = _user_descriptor()
        assert descriptor.methods["buy_item"].has_remote_interaction()
        assert not descriptor.methods["__init__"].has_remote_interaction()

    def test_method_lookup(self):
        descriptor = _user_descriptor()
        assert descriptor.method("buy_item").name == "buy_item"
