"""Annotation resolution, type environments, and entity refs."""

import ast

from repro.core.refs import EntityRef, is_entity_ref, ref_for
from repro.core.types import TypeEnvironment, annotation_name


def _ann(source: str) -> ast.expr:
    return ast.parse(source, mode="eval").body


class TestAnnotationName:
    def test_plain_name(self):
        assert annotation_name(_ann("int")) == "int"

    def test_forward_reference_string(self):
        assert annotation_name(_ann("'Item'")) == "Item"

    def test_dotted(self):
        assert annotation_name(_ann("typing.Optional")) == "typing.Optional"

    def test_subscript_container(self):
        assert annotation_name(_ann("list[int]")) == "list"

    def test_optional_unwraps(self):
        assert annotation_name(_ann("Optional[Item]")) == "Item"

    def test_pep604_union_prefers_non_none(self):
        assert annotation_name(_ann("Item | None")) == "Item"
        assert annotation_name(_ann("None | Item")) == "Item"

    def test_none_constant(self):
        assert annotation_name(_ann("None")) == "None"

    def test_missing(self):
        assert annotation_name(None) is None


class TestTypeEnvironment:
    def setup_method(self):
        self.env = TypeEnvironment(frozenset({"Item", "User"}))

    def test_bind_and_lookup(self):
        self.env.bind("item", "Item")
        assert self.env.entity_type_of("item") == "Item"

    def test_non_entity_binding_ignored(self):
        self.env.bind("x", "int")
        assert self.env.entity_type_of("x") is None

    def test_rebinding_to_non_entity_shadows(self):
        self.env.bind("x", "Item")
        self.env.bind("x", "int")
        assert self.env.entity_type_of("x") is None

    def test_copy_is_independent(self):
        self.env.bind("a", "Item")
        clone = self.env.copy()
        clone.bind("b", "User")
        assert self.env.entity_type_of("b") is None
        assert clone.entity_type_of("a") == "Item"

    def test_bound_entities_snapshot(self):
        self.env.bind("a", "Item")
        assert self.env.bound_entities() == {"a": "Item"}


class TestEntityRef:
    def test_equality_and_hash(self):
        assert EntityRef("Item", "apple") == EntityRef("Item", "apple")
        assert len({EntityRef("Item", "a"), EntityRef("Item", "a")}) == 1

    def test_dict_roundtrip(self):
        ref = EntityRef("User", "alice")
        assert EntityRef.from_dict(ref.to_dict()) == ref

    def test_helpers(self):
        ref = ref_for("Item", 7)
        assert is_entity_ref(ref)
        assert not is_entity_ref("Item/7")
        assert str(ref) == "Item/7"
