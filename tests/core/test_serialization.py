"""State codec: roundtrips, legality enforcement, property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.refs import EntityRef
from repro.core.serialization import (
    check_serializable,
    decode,
    dumps,
    encode,
    loads,
    state_size_bytes,
)
from repro.core.errors import SerializationError


class TestCheckSerializable:
    def test_scalars_pass(self):
        for value in (1, 2.5, "x", True, None, b"abc"):
            check_serializable(value)

    def test_containers_pass(self):
        check_serializable({"a": [1, 2, (3, 4)], "b": {5, 6}})

    def test_entity_ref_passes(self):
        check_serializable({"ref": EntityRef("Item", "apple")})

    def test_open_file_rejected(self, tmp_path):
        handle = open(tmp_path / "f.txt", "w")
        try:
            with pytest.raises(SerializationError):
                check_serializable({"conn": handle})
        finally:
            handle.close()

    def test_lambda_rejected(self):
        with pytest.raises(SerializationError):
            check_serializable([lambda: 1])

    def test_arbitrary_object_rejected(self):
        class Widget:
            pass

        with pytest.raises(SerializationError) as excinfo:
            check_serializable({"w": Widget()})
        assert "Widget" in str(excinfo.value)

    def test_error_reports_path(self):
        with pytest.raises(SerializationError) as excinfo:
            check_serializable({"outer": [1, {"inner": object()}]})
        assert "outer" in str(excinfo.value)

    def test_non_scalar_dict_key_rejected(self):
        with pytest.raises(SerializationError):
            check_serializable({(1, 2): object()})


class TestRoundtrip:
    def test_plain_dict(self):
        state = {"name": "alice", "balance": 42, "tags": ["a", "b"]}
        assert loads(dumps(state)) == state

    def test_tuple_survives(self):
        assert loads(dumps((1, "x"))) == (1, "x")

    def test_set_survives(self):
        assert loads(dumps({1, 2, 3})) == {1, 2, 3}

    def test_bytes_survive(self):
        assert loads(dumps(b"\x00\xff")) == b"\x00\xff"

    def test_entity_ref_survives(self):
        ref = EntityRef("User", "alice")
        assert loads(dumps({"r": ref})) == {"r": ref}

    def test_non_string_dict_keys(self):
        value = {1: "a", (2, 3): "b"}
        assert loads(dumps(value)) == value

    def test_encode_rejects_object(self):
        with pytest.raises(SerializationError):
            encode(object())

    def test_decode_rejects_unknown(self):
        with pytest.raises(SerializationError):
            decode(object())

    def test_state_size_grows(self):
        small = state_size_bytes({"payload": "x" * 10})
        large = state_size_bytes({"payload": "x" * 1000})
        assert large > small


json_like = st.recursive(
    st.none() | st.booleans() | st.integers(-2**31, 2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12)


@given(json_like)
def test_roundtrip_property(value):
    assert loads(dumps(value)) == value


@given(json_like)
def test_check_accepts_whatever_encodes(value):
    check_serializable(value)  # must never raise on encodable values
