"""@entity / @transactional decorators and the registry."""

import pytest

from zoo import Counter, Item, User

from repro.core.entity import (
    REGISTRY,
    EntityRegistry,
    entity,
    entity_source,
    is_entity_class,
    is_transactional,
    scoped_registry,
    transactional_methods,
)
from repro.core.errors import CompilationError


def test_decorated_classes_registered_globally():
    assert "Item" in REGISTRY
    assert REGISTRY.get("Item") is Item


def test_is_entity_class():
    assert is_entity_class(User)

    class Plain:
        pass

    assert not is_entity_class(Plain)


def test_source_captured():
    source = entity_source(Item)
    assert "class Item" in source
    assert "def update_stock" in source


def test_transactional_marker():
    assert is_transactional(User.buy_item)
    assert not is_transactional(Item.update_stock)
    assert transactional_methods(User) == frozenset({"buy_item"})


def test_entity_with_explicit_source():
    source = (
        "class Generated:\n"
        "    def __init__(self, gid: str):\n"
        "        self.gid: str = gid\n"
        "    def __key__(self):\n"
        "        return self.gid\n")
    registry = EntityRegistry()
    cls = type("Generated", (), {})
    entity(cls, source=source, registry=registry)
    assert "Generated" in registry
    assert entity_source(cls) == source


def test_dynamic_class_without_source_fails():
    registry = EntityRegistry()
    cls = type("NoSource", (), {})
    with pytest.raises(CompilationError):
        registry.register(cls)


def test_scoped_registry_isolated():
    registry = scoped_registry([Counter])
    assert "Counter" in registry
    assert "Item" not in registry
    assert registry.names() == frozenset({"Counter"})


def test_registry_unregister_and_clear():
    registry = scoped_registry([Counter, Item])
    registry.unregister("Counter")
    assert "Counter" not in registry
    registry.clear()
    assert registry.classes() == []
