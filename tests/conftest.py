"""Shared fixtures: compiled programs are expensive enough to cache per
session."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from zoo import SHOP_ENTITIES, ZOO_ENTITIES  # noqa: E402

from repro import compile_program  # noqa: E402
from repro.workloads import TPCC_ENTITIES, Account  # noqa: E402


@pytest.fixture(scope="session")
def shop_program():
    return compile_program(SHOP_ENTITIES)


@pytest.fixture(scope="session")
def zoo_program():
    return compile_program(ZOO_ENTITIES)


@pytest.fixture(scope="session")
def account_program():
    return compile_program([Account])


@pytest.fixture(scope="session")
def tpcc_program():
    return compile_program(TPCC_ENTITIES)
