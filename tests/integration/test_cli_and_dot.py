"""CLI + Graphviz export."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.ir.dot import dataflow_to_dot, machine_to_dot

SHOP_MODULE = (
    "from repro import entity, transactional\n"
    "\n"
    "@entity\n"
    "class Item:\n"
    "    def __init__(self, item_id: str, price: int):\n"
    "        self.item_id: str = item_id\n"
    "        self.stock: int = 0\n"
    "        self.price_per_unit: int = price\n"
    "    def __key__(self):\n"
    "        return self.item_id\n"
    "    def price(self) -> int:\n"
    "        return self.price_per_unit\n"
    "    def update_stock(self, amount: int) -> bool:\n"
    "        self.stock += amount\n"
    "        return self.stock >= 0\n")


@pytest.fixture()
def shop_module(tmp_path):
    path = tmp_path / "shopapp.py"
    path.write_text(SHOP_MODULE, encoding="utf-8")
    return path


def _cli(*args, timeout=120, env=None):
    return subprocess.run([sys.executable, "-m", "repro", *map(str, args)],
                          capture_output=True, text=True, timeout=timeout,
                          env=env)


class TestCli:
    def test_compile_to_file(self, shop_module, tmp_path):
        out = tmp_path / "app.json"
        completed = _cli("compile", shop_module, "--out", out)
        assert completed.returncode == 0, completed.stderr
        document = json.loads(out.read_text())
        assert document["format"] == "stateful-dataflow-ir"
        assert "Item" in document["dataflow"]["operators"]

    def test_describe(self, shop_module, tmp_path):
        out = tmp_path / "app.json"
        _cli("compile", shop_module, "--out", out)
        completed = _cli("describe", out)
        assert completed.returncode == 0
        assert "operator Item" in completed.stdout

    def test_dot_dataflow(self, shop_module, tmp_path):
        out = tmp_path / "app.json"
        _cli("compile", shop_module, "--out", out)
        completed = _cli("dot", out)
        assert completed.returncode == 0
        assert completed.stdout.startswith("digraph")
        assert "Item" in completed.stdout

    def test_dot_method(self, shop_module, tmp_path):
        out = tmp_path / "app.json"
        _cli("compile", shop_module, "--out", out)
        completed = _cli("dot", out, "--method", "Item.update_stock")
        assert completed.returncode == 0
        assert "update_stock_0" in completed.stdout

    def test_run_create_and_invoke(self, shop_module):
        created = _cli("run", shop_module, "Item", "__init__", "-",
                       '"apple"', "3")
        assert created.returncode == 0, created.stderr
        assert "Item/apple" in created.stdout

    def test_run_error_exit_code(self, shop_module):
        completed = _cli("run", shop_module, "Item", "price", '"ghost"')
        assert completed.returncode == 1
        assert "error" in completed.stderr

    def test_compile_no_entities(self, tmp_path):
        empty = tmp_path / "empty.py"
        empty.write_text("x = 1\n")
        completed = _cli("compile", empty)
        assert completed.returncode != 0


class TestChaosCli:
    def test_plan_generation_is_reproducible(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for out in (first, second):
            completed = _cli("chaos", "plan", "--seed", 11, "--out", out)
            assert completed.returncode == 0, completed.stderr
        assert first.read_text() == second.read_text()
        plan = json.loads(first.read_text())
        assert plan["seed"] == 11
        assert any(event["kind"] == "crash_worker"
                   for event in plan["events"])

    def test_chaos_run_recovers_and_reproduces(self, tmp_path):
        """Acceptance: a seeded plan (worker crash + message drops) on
        StateFlow recovers loss-free, and the printed trace digest is
        identical across reruns of the same seed."""
        plan_path = tmp_path / "plan.json"
        plan = {
            "seed": 13, "name": "acceptance",
            "events": [
                {"kind": "messages", "at_ms": 100.0, "duration_ms": 900.0,
                 "channel": "network",
                 "profile": {"drop_p": 0.05, "delay_p": 0.1,
                             "delay_ms": 10.0}},
                {"kind": "crash_worker", "at_ms": 500.0, "worker": 1},
            ],
        }
        plan_path.write_text(json.dumps(plan), encoding="utf-8")
        digests = []
        for _ in range(2):
            completed = _cli("chaos", "run", "--plan", plan_path,
                             "--seed", 13, "--duration-ms", 1500,
                             "--records", 30, timeout=300)
            assert completed.returncode == 0, (
                completed.stdout + completed.stderr)
            assert "serializable, loss-free, exactly-once" in completed.stdout
            assert "recoveries" in completed.stdout
            (digest_line,) = [line for line in completed.stdout.splitlines()
                              if line.startswith("trace digest:")]
            digests.append(digest_line.split()[-1])
        assert digests[0] == digests[1], "same seed must replay identically"

    def test_chaos_run_different_seed_different_digest(self, tmp_path):
        outputs = []
        for seed in (3, 4):
            completed = _cli("chaos", "run", "--seed", seed,
                             "--duration-ms", 1200, "--records", 25,
                             timeout=300)
            assert completed.returncode == 0, (
                completed.stdout + completed.stderr)
            (digest_line,) = [line for line in completed.stdout.splitlines()
                              if line.startswith("trace digest:")]
            outputs.append(digest_line.split()[-1])
        assert outputs[0] != outputs[1]

    def test_bench_accepts_faults_flag(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        completed = _cli("chaos", "plan", "--seed", 5, "--duration-ms", 1000,
                         "--out", plan_path)
        assert completed.returncode == 0, completed.stderr
        bench_env = {**os.environ, "REPRO_BENCH_DIR": str(tmp_path)}
        completed = _cli("bench", "--duration-ms", 1000, "--rps", 60,
                         "--records", 25, "--faults", plan_path, timeout=300,
                         env=bench_env)
        assert completed.returncode == 0, completed.stderr
        assert "recoveries" in completed.stdout


class TestDot:
    def test_dataflow_dot_structure(self, shop_program):
        dot = dataflow_to_dot(shop_program.dataflow)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"User" -> "Item"' in dot
        assert "ingress router" in dot

    def test_machine_dot_structure(self, shop_program):
        machine = shop_program.entities["User"].methods["buy_item"].machine
        dot = machine_to_dot(machine)
        assert "buy_item_0" in dot
        assert "call Item.price" in dot
        assert "doublecircle" in dot  # return nodes

    def test_branch_edges_labelled(self, shop_program):
        machine = shop_program.entities["User"].methods["buy_item"].machine
        dot = machine_to_dot(machine)
        assert 'label="true"' in dot
        assert 'label="false"' in dot
