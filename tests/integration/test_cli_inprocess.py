"""In-process CLI coverage: drives ``repro.cli.main`` directly (the
subprocess tests in test_cli_and_dot.py check the real entry point; these
make the handler logic visible to the coverage gate)."""

import json

import pytest

from repro.cli import main

SHOP = (
    "from repro import entity\n"
    "@entity\n"
    "class Gadget:\n"
    "    def __init__(self, gid: str):\n"
    "        self.gid: str = gid\n"
    "        self.uses: int = 0\n"
    "    def __key__(self):\n"
    "        return self.gid\n"
    "    def use(self, n: int) -> int:\n"
    "        self.uses += n\n"
    "        return self.uses\n")


@pytest.fixture()
def module_path(tmp_path):
    path = tmp_path / "gadget_app.py"
    path.write_text(SHOP, encoding="utf-8")
    return str(path)


def test_compile_describe_dot_round_trip(module_path, tmp_path, capsys):
    ir_path = str(tmp_path / "app.json")
    assert main(["compile", module_path, "--out", ir_path]) == 0
    assert main(["describe", ir_path]) == 0
    assert main(["dot", ir_path]) == 0
    assert main(["dot", ir_path, "--method", "Gadget.use"]) == 0
    out = capsys.readouterr().out
    assert "Gadget" in out and "digraph" in out


def test_run_create_then_invoke(module_path, capsys):
    assert main(["run", module_path, "Gadget", "__init__", "-",
                 '"g1"']) == 0
    assert main(["run", module_path, "Gadget", "use", '"g1"', "3"]) == 1
    # invoking on a fresh runtime: the entity doesn't exist -> exit 1


def test_run_with_fault_plan(module_path, tmp_path, capsys):
    plan_path = str(tmp_path / "plan.json")
    assert main(["chaos", "plan", "--seed", "3", "--no-process-faults",
                 "--out", plan_path]) == 0
    assert main(["run", module_path, "Gadget", "__init__", "-", '"g2"',
                 "--faults", plan_path]) == 0
    assert "Gadget/g2" in capsys.readouterr().out


def test_run_rescale_flag_is_noted_and_ignored(module_path, tmp_path,
                                               capsys):
    plan_path = str(tmp_path / "rescale.json")
    assert main(["rescale", "plan", "--targets", "3",
                 "--out", plan_path]) == 0
    assert main(["run", module_path, "Gadget", "__init__", "-", '"g3"',
                 "--rescale", plan_path]) == 0
    captured = capsys.readouterr()
    assert "single-process" in captured.err
    assert "Gadget/g3" in captured.out


def test_rescale_plan_to_stdout(capsys):
    assert main(["rescale", "plan", "--targets", "4,3"]) == 0
    assert '"workers": 4' in capsys.readouterr().out


def test_rescale_plan_rejects_bad_targets(capsys):
    import pytest
    with pytest.raises(SystemExit, match="targets"):
        main(["rescale", "plan", "--targets", "4,x"])
    with pytest.raises(SystemExit, match="targets"):
        main(["rescale", "plan", "--targets", "0"])


def test_chaos_plan_with_rescales(capsys):
    assert main(["chaos", "plan", "--seed", "9", "--rescales", "2"]) == 0
    assert '"rescale"' in capsys.readouterr().out


def test_chaos_plan_to_stdout(capsys):
    assert main(["chaos", "plan", "--seed", "9",
                 "--coordinator-faults"]) == 0
    plan = json.loads(capsys.readouterr().out)
    assert plan["seed"] == 9
    assert any(event["kind"] == "crash_coordinator"
               for event in plan["events"])


def test_chaos_run_inprocess(capsys):
    code = main(["chaos", "run", "--seed", "11", "--duration-ms", "1200",
                 "--records", "25", "--rps", "80"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "trace digest:" in out
    assert "serializable, loss-free, exactly-once" in out


def test_bench_with_faults_inprocess(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    plan_path = str(tmp_path / "plan.json")
    assert main(["chaos", "plan", "--seed", "5", "--duration-ms", "1000",
                 "--out", plan_path]) == 0
    assert main(["bench", "--duration-ms", "1000", "--rps", "60",
                 "--records", "25", "--faults", plan_path]) == 0
    assert "recoveries" in capsys.readouterr().out


def test_bench_rejects_unknown_env_backend(monkeypatch):
    monkeypatch.setenv("REPRO_STATE_BACKEND", "chalkboard")
    with pytest.raises(SystemExit):
        main(["bench", "--duration-ms", "500"])


def test_bench_pipeline_depth_flag(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main(["bench", "--duration-ms", "600", "--rps", "80",
                 "--records", "25", "--pipeline-depth", "1"]) == 0
    assert "YCSB" in capsys.readouterr().out


def test_bench_pipeline_depth_requires_stateflow(capsys):
    with pytest.raises(SystemExit):
        main(["bench", "--system", "statefun", "--duration-ms", "500",
              "--pipeline-depth", "2"])


def test_chaos_run_pipeline_depth_requires_stateflow(capsys):
    with pytest.raises(SystemExit):
        main(["chaos", "run", "--system", "statefun",
              "--pipeline-depth", "2"])


def test_run_pipeline_depth_flag_is_noted_and_ignored(module_path, capsys):
    assert main(["run", module_path, "Gadget", "__init__", "-", '"g3"',
                 "--pipeline-depth", "4"]) == 0
    captured = capsys.readouterr()
    assert "--pipeline-depth applies to" in captured.err
    assert "Gadget/g3" in captured.out


def test_bench_pipeline_cell_rejects_unsupported_flags(tmp_path):
    with pytest.raises(SystemExit):
        main(["bench", "--cell", "pipeline", "--system", "statefun"])
    with pytest.raises(SystemExit):
        main(["bench", "--cell", "pipeline", "--pipeline-depth", "2"])
    plan_path = str(tmp_path / "plan.json")
    assert main(["chaos", "plan", "--seed", "3", "--out", plan_path]) == 0
    with pytest.raises(SystemExit):
        main(["bench", "--cell", "pipeline", "--faults", plan_path])


def test_bench_spawner_matrix_named_in_rejections(tmp_path):
    """Every process-spawner rejection spells out the valid
    cell/spawner matrix instead of just naming the offending flag."""
    with pytest.raises(SystemExit, match="valid combinations"):
        main(["bench", "--spawner", "process", "--system", "statefun"])
    # The simulator-only cells are rejected explicitly (recovery used
    # to silently ignore the spawner).
    with pytest.raises(SystemExit, match="simulator-only"):
        main(["bench", "--spawner", "process", "--cell", "recovery"])
    with pytest.raises(SystemExit, match="simulator-only"):
        main(["bench", "--spawner", "process", "--cell", "autoscale"])
    plan_path = str(tmp_path / "plan.json")
    assert main(["chaos", "plan", "--seed", "3", "--out", plan_path]) == 0
    with pytest.raises(SystemExit, match="valid combinations"):
        main(["bench", "--spawner", "process", "--faults", plan_path])


def test_bench_autoscale_flag_rejections(tmp_path):
    rescale_path = str(tmp_path / "rescale.json")
    assert main(["rescale", "plan", "--targets", "3",
                 "--out", rescale_path]) == 0
    with pytest.raises(SystemExit, match="scaling authority"):
        main(["bench", "--autoscale", "--rescale", rescale_path])
    with pytest.raises(SystemExit, match="stateflow"):
        main(["bench", "--system", "statefun", "--autoscale"])
    with pytest.raises(SystemExit, match="autoscale"):
        main(["bench", "--cell", "pipeline", "--autoscale"])
    with pytest.raises(SystemExit, match="autoscale"):
        main(["bench", "--cell", "recovery", "--autoscale"])
    with pytest.raises(SystemExit, match="stateflow"):
        main(["bench", "--cell", "autoscale", "--system", "statefun"])
    with pytest.raises(SystemExit, match="pipeline-depth"):
        main(["bench", "--cell", "autoscale", "--pipeline-depth", "2"])


def test_chaos_run_autoscale_requires_stateflow():
    with pytest.raises(SystemExit, match="autoscale"):
        main(["chaos", "run", "--system", "statefun", "--autoscale"])


def test_bench_ycsb_autoscale_flag(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main(["bench", "--autoscale", "--duration-ms", "800",
                 "--rps", "120", "--records", "30"]) == 0
    assert "YCSB" in capsys.readouterr().out


def test_run_autoscale_flag_is_noted_and_ignored(module_path, capsys):
    assert main(["run", module_path, "Gadget", "__init__", "-", '"g4"',
                 "--autoscale"]) == 0
    captured = capsys.readouterr()
    assert "--autoscale applies to" in captured.err
    assert "Gadget/g4" in captured.out


def test_bench_pipeline_cell_honours_load_flags(capsys):
    assert main(["bench", "--cell", "pipeline", "--rps", "2000",
                 "--duration-ms", "250", "--records", "200",
                 "--state-backend", "cow", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "pipeline speedup" in out
    assert "wrote" in out and "BENCH_pipeline.json" in out
    payload = json.loads(
        __import__("pathlib").Path("BENCH_pipeline.json").read_text())
    assert payload["rps"] == 2000.0


def test_bench_views_cell_inprocess(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main(["bench", "--cell", "views", "--records", "400",
                 "--duration-ms", "800", "--rps", "120"]) == 0
    out = capsys.readouterr().out
    assert "incremental views" in out and "BENCH_views.json" in out
    payload = json.loads((tmp_path / "BENCH_views.json").read_text())
    assert payload["cell"] == "views"
    assert payload["gates"]["zero_mismatches"] is True
    assert payload["gates"]["speedup_ok"] is True
    (leg,) = payload["legs"]
    assert leg["record_count"] == 400
    assert leg["probe_mismatches"] == 0
    assert leg["freshness"]["final_lag_batches"] == 0


def test_bench_views_cell_flag_rejections(tmp_path):
    with pytest.raises(SystemExit, match="stateflow"):
        main(["bench", "--cell", "views", "--system", "statefun"])
    with pytest.raises(SystemExit, match="simulator-only"):
        main(["bench", "--cell", "views", "--spawner", "process"])
    with pytest.raises(SystemExit, match="canonical"):
        main(["bench", "--cell", "views", "--snapshot-mode", "full"])
    with pytest.raises(SystemExit, match="autoscale"):
        main(["bench", "--cell", "views", "--autoscale"])
    with pytest.raises(SystemExit, match="rps-sweep"):
        main(["bench", "--cell", "views", "--rps-sweep", "60"])
    plan_path = str(tmp_path / "plan.json")
    assert main(["chaos", "plan", "--seed", "3", "--out", plan_path]) == 0
    with pytest.raises(SystemExit, match="chaos"):
        main(["bench", "--cell", "views", "--faults", plan_path])


def test_bench_rps_sweep_both_backends(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main(["bench", "--rps-sweep", "40,80", "--duration-ms", "600",
                 "--records", "20"]) == 0
    assert "rps sweep" in capsys.readouterr().out
    payload = json.loads((tmp_path / "BENCH_ycsb.json").read_text())
    rows = payload["rows"]
    assert len(rows) == 4, "2 rates x 2 backends"
    assert {row["state_backend"] for row in rows} == {"dict", "cow"}
    assert {row["rps"] for row in rows} == {40.0, 80.0}


def test_bench_rps_sweep_pinned_backend(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main(["bench", "--rps-sweep", "40", "--state-backend", "cow",
                 "--duration-ms", "400", "--records", "20"]) == 0
    payload = json.loads((tmp_path / "BENCH_ycsb.json").read_text())
    assert [row["state_backend"] for row in payload["rows"]] == ["cow"]


def test_bench_rps_sweep_rejections():
    with pytest.raises(SystemExit, match="rps-sweep"):
        main(["bench", "--cell", "recovery", "--rps-sweep", "60"])
    with pytest.raises(SystemExit, match="positive"):
        main(["bench", "--rps-sweep", "0"])
    with pytest.raises(SystemExit, match="comma-separated"):
        main(["bench", "--rps-sweep", "abc"])
