"""Determinism regression: identical (seed, fault plan, rescale plan)
tuples must reproduce the run bit for bit — byte-identical
committed-state snapshots and identical reply traces.  This is the
property that makes every chaos (and rescale) scenario a *test* instead
of an anecdote."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import chaos_coordinator_config
from repro.faults import FaultEvent, FaultPlan, MessageFaultProfile, random_plan
from repro.rescale import RescalePlan, staged_plan
from repro.runtimes.state import materialize_snapshot
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload


def _chaos_config(plan: FaultPlan,
                  rescale_plan: RescalePlan | None = None,
                  workers: int = 5) -> StateflowConfig:
    return StateflowConfig(workers=workers, fault_plan=plan,
                           rescale_plan=rescale_plan,
                           coordinator=chaos_coordinator_config())


def _run_once(account_program, seed: int, plan: FaultPlan,
              rescale_plan: RescalePlan | None = None, workers: int = 5):
    """One chaos run; returns (committed-state bytes, reply trace)."""
    runtime = StateflowRuntime(
        account_program,
        config=_chaos_config(plan, rescale_plan, workers))
    trace: list[tuple] = []
    runtime.reply_tap = lambda reply: trace.append(
        (reply.request_id, repr(reply.payload), reply.error,
         runtime.sim.now))
    workload = YcsbWorkload("T", record_count=20, distribution="uniform",
                            seed=seed + 1, initial_balance=300)
    runtime.preload(Account, workload.dataset_rows())
    runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=90, duration_ms=1_500, warmup_ms=0, drain_ms=20_000,
        seed=seed + 2))
    driver.run()
    runtime.sim.run(until=runtime.sim.now + 20_000)
    state = materialize_snapshot(runtime.committed.snapshot())
    state_bytes = repr(sorted(state.items(), key=repr)).encode("utf-8")
    return state_bytes, trace


# Generated plans: hypothesis picks the plan seed and knobs; the plan
# builder itself is deterministic, so shrinking stays meaningful.
plan_strategy = st.builds(
    lambda plan_seed, intensity, coordinator: random_plan(
        plan_seed, duration_ms=1_500.0, workers=5, intensity=intensity,
        coordinator_faults=coordinator),
    plan_seed=st.integers(0, 2**16),
    intensity=st.sampled_from(["light", "medium", "heavy"]),
    coordinator=st.booleans())


@given(seed=st.integers(0, 2**16), plan=plan_strategy)
@settings(max_examples=5, deadline=None)
def test_same_seed_and_plan_reproduce_identically(account_program, seed,
                                                  plan):
    first_state, first_trace = _run_once(account_program, seed, plan)
    second_state, second_trace = _run_once(account_program, seed, plan)
    assert first_state == second_state, (
        "committed-state snapshots diverged across identical runs")
    assert first_trace == second_trace, (
        "reply traces diverged across identical runs")


def test_fixed_seed_regression(account_program):
    """A pinned scenario (worker crash + drops + partition) so any
    future nondeterminism fails loudly even without hypothesis."""
    plan = FaultPlan(seed=17, events=[
        FaultEvent(kind="messages", at_ms=100.0, duration_ms=600.0,
                   channel="all",
                   profile=MessageFaultProfile(drop_p=0.05, duplicate_p=0.05,
                                               delay_p=0.2, delay_ms=20.0)),
        FaultEvent(kind="crash_worker", at_ms=400.0, worker=2),
        FaultEvent(kind="partition", at_ms=700.0, duration_ms=150.0,
                   isolate=("worker-0",)),
    ])
    first = _run_once(account_program, 17, plan)
    second = _run_once(account_program, 17, plan)
    assert first == second

    runs_differ = _run_once(account_program, 18, plan)
    assert runs_differ[1] != first[1], (
        "different runtime seeds should perturb the trace — if they do "
        "not, the fault machinery is not actually wired in")


# ---------------------------------------------------------------------------
# Rescale determinism: same (seed, workload, rescale plan, fault plan)
# -> byte-identical final state and reply trace
# ---------------------------------------------------------------------------


rescale_plan_strategy = st.builds(
    lambda targets, start, interval: staged_plan(
        targets, start_ms=float(start), interval_ms=float(interval)),
    targets=st.lists(st.integers(1, 8), min_size=1, max_size=3),
    start=st.integers(100, 800),
    interval=st.integers(200, 600))


@given(seed=st.integers(0, 2**16), rescale_plan=rescale_plan_strategy)
@settings(max_examples=5, deadline=None)
def test_same_seed_and_rescale_plan_reproduce_identically(
        account_program, seed, rescale_plan):
    """Pure-rescale runs (no faults) replay byte-identically."""
    empty = FaultPlan(seed=seed)
    first = _run_once(account_program, seed, empty, rescale_plan, workers=2)
    second = _run_once(account_program, seed, empty, rescale_plan, workers=2)
    assert first == second, (
        "a rescale run diverged across identical replays")


@given(seed=st.integers(0, 2**16), plan=plan_strategy,
       rescale_plan=rescale_plan_strategy)
@settings(max_examples=5, deadline=None)
def test_combined_rescale_and_chaos_reproduce_identically(
        account_program, seed, plan, rescale_plan):
    """The full battery: rescale steps interleaved with crashes, drops
    and fail-overs must still replay bit for bit."""
    first = _run_once(account_program, seed, plan, rescale_plan, workers=2)
    second = _run_once(account_program, seed, plan, rescale_plan, workers=2)
    assert first[0] == second[0], (
        "committed-state snapshots diverged across identical "
        "rescale+chaos runs")
    assert first[1] == second[1], (
        "reply traces diverged across identical rescale+chaos runs")


def test_rescale_events_inside_fault_plan_reproduce(account_program):
    """The other scheduling surface — ``rescale`` events inside the
    fault plan itself — is deterministic too, and actually rescales."""
    plan = random_plan(31, duration_ms=1_500.0, workers=2,
                       intensity="medium", rescales=2)
    first_state, first_trace = _run_once(account_program, 31, plan,
                                         workers=2)
    second_state, second_trace = _run_once(account_program, 31, plan,
                                           workers=2)
    assert first_state == second_state
    assert first_trace == second_trace
