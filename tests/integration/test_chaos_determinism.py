"""Determinism regression: identical (seed, fault plan) pairs must
reproduce the run bit for bit — byte-identical committed-state snapshots
and identical reply traces.  This is the property that makes every chaos
scenario a *test* instead of an anecdote."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import chaos_coordinator_config
from repro.faults import FaultEvent, FaultPlan, MessageFaultProfile, random_plan
from repro.runtimes.state import materialize_snapshot
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload


def _chaos_config(plan: FaultPlan) -> StateflowConfig:
    return StateflowConfig(fault_plan=plan,
                           coordinator=chaos_coordinator_config())


def _run_once(account_program, seed: int, plan: FaultPlan):
    """One chaos run; returns (committed-state bytes, reply trace)."""
    runtime = StateflowRuntime(account_program, config=_chaos_config(plan))
    trace: list[tuple] = []
    runtime.reply_tap = lambda reply: trace.append(
        (reply.request_id, repr(reply.payload), reply.error,
         runtime.sim.now))
    workload = YcsbWorkload("T", record_count=20, distribution="uniform",
                            seed=seed + 1, initial_balance=300)
    runtime.preload(Account, workload.dataset_rows())
    runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=90, duration_ms=1_500, warmup_ms=0, drain_ms=20_000,
        seed=seed + 2))
    driver.run()
    runtime.sim.run(until=runtime.sim.now + 20_000)
    state = materialize_snapshot(runtime.committed.snapshot())
    state_bytes = repr(sorted(state.items(), key=repr)).encode("utf-8")
    return state_bytes, trace


# Generated plans: hypothesis picks the plan seed and knobs; the plan
# builder itself is deterministic, so shrinking stays meaningful.
plan_strategy = st.builds(
    lambda plan_seed, intensity, coordinator: random_plan(
        plan_seed, duration_ms=1_500.0, workers=5, intensity=intensity,
        coordinator_faults=coordinator),
    plan_seed=st.integers(0, 2**16),
    intensity=st.sampled_from(["light", "medium", "heavy"]),
    coordinator=st.booleans())


@given(seed=st.integers(0, 2**16), plan=plan_strategy)
@settings(max_examples=5, deadline=None)
def test_same_seed_and_plan_reproduce_identically(account_program, seed,
                                                  plan):
    first_state, first_trace = _run_once(account_program, seed, plan)
    second_state, second_trace = _run_once(account_program, seed, plan)
    assert first_state == second_state, (
        "committed-state snapshots diverged across identical runs")
    assert first_trace == second_trace, (
        "reply traces diverged across identical runs")


def test_fixed_seed_regression(account_program):
    """A pinned scenario (worker crash + drops + partition) so any
    future nondeterminism fails loudly even without hypothesis."""
    plan = FaultPlan(seed=17, events=[
        FaultEvent(kind="messages", at_ms=100.0, duration_ms=600.0,
                   channel="all",
                   profile=MessageFaultProfile(drop_p=0.05, duplicate_p=0.05,
                                               delay_p=0.2, delay_ms=20.0)),
        FaultEvent(kind="crash_worker", at_ms=400.0, worker=2),
        FaultEvent(kind="partition", at_ms=700.0, duration_ms=150.0,
                   isolate=("worker-0",)),
    ])
    first = _run_once(account_program, 17, plan)
    second = _run_once(account_program, 17, plan)
    assert first == second

    runs_differ = _run_once(account_program, 18, plan)
    assert runs_differ[1] != first[1], (
        "different runtime seeds should perturb the trace — if they do "
        "not, the fault machinery is not actually wired in")
