"""End-to-end correctness of elastic rescaling with live state
migration.

Mirrors ``test_serializability.py``: the same serial-order oracles
(conservation, non-negative balances, exact sums, TPC-C vs the
fault-free Local runtime) must hold while the cluster resizes
mid-workload — including the canonical 2 -> 4 -> 3 acceptance scenario
on both state backends, with byte-identical replays and recorded
migration metrics, and with a fault plan layered on top (rescale under
chaos)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import chaos_coordinator_config
from repro.faults import FaultEvent, FaultPlan, MessageFaultProfile, random_plan
from repro.rescale import RescalePlan, RescaleStep, staged_plan
from repro.runtimes.state import materialize_snapshot
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.workloads import Account


def _rescale_config(targets=(4, 3), *, workers=2, start_ms=300.0,
                    interval_ms=400.0, state_backend="dict",
                    fault_plan=None) -> StateflowConfig:
    return StateflowConfig(
        workers=workers, state_backend=state_backend,
        rescale_plan=staged_plan(targets, start_ms=start_ms,
                                 interval_ms=interval_ms),
        fault_plan=fault_plan,
        coordinator=chaos_coordinator_config())


def _quiesce(runtime, extra_ms=30_000.0):
    runtime.sim.run(until=runtime.sim.now + extra_ms)


transfer_plan = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 30)),
    min_size=1, max_size=30)


@pytest.mark.parametrize("state_backend", ["dict", "cow"])
@given(transfer_plan)
@settings(max_examples=8, deadline=None)
def test_transfers_serializable_under_rescale(account_program, state_backend,
                                              plan):
    """Transfer histories spanning a 2 -> 4 -> 3 resize must still
    check out: conservation, non-negative balances, exactly one commit
    per submitted request."""
    runtime = StateflowRuntime(
        account_program, config=_rescale_config(state_backend=state_backend))
    refs = runtime.preload(Account,
                           [(f"acct-{i}", 100) for i in range(6)])
    runtime.start()
    replies: list[int] = []
    for index, (source, target, amount) in enumerate(plan):
        if source == target:
            target = (target + 1) % 6
        runtime.sim.schedule_at(
            index * 40.0,
            lambda s=source, t=target, a=amount: runtime.submit(
                refs[s], "transfer", (a, refs[t]),
                on_reply=lambda reply: replies.append(reply.request_id)))
    runtime.sim.run_until(lambda: len(replies) >= len(plan),
                          max_time=120_000)
    _quiesce(runtime)
    balances = [runtime.entity_state(ref)["balance"] for ref in refs]
    assert sum(balances) == 600, balances
    assert all(balance >= 0 for balance in balances), balances
    assert len(replies) == len(plan), "a commit was lost across a rescale"
    assert len(set(replies)) == len(replies), "a reply was duplicated"
    assert runtime.coordinator.rescales == 2
    assert runtime.worker_count == 3


@given(st.lists(st.integers(1, 9), min_size=1, max_size=30))
@settings(max_examples=8, deadline=None)
def test_increments_exact_under_rescale(account_program, increments):
    """Hot-key increments are lost-update detectors: migrating the hot
    key's slot mid-stream must not drop or double-apply a commit."""
    runtime = StateflowRuntime(account_program, config=_rescale_config())
    (ref,) = runtime.preload(Account, [("hot", 0)])
    runtime.start()
    for index, amount in enumerate(increments):
        runtime.sim.schedule_at(
            index * 50.0, lambda a=amount: runtime.submit(ref, "add", (a,)))
    expected = sum(increments)
    runtime.sim.run_until(
        lambda: (runtime.entity_state(ref) or {}).get("balance") == expected,
        max_time=120_000)
    assert runtime.entity_state(ref)["balance"] == expected
    # A short history can finish before the plan's steps fire; let the
    # clock run past them and re-check the committed value survived.
    _quiesce(runtime)
    assert runtime.coordinator.rescales == 2
    assert runtime.entity_state(ref)["balance"] == expected


def test_tpcc_history_matches_serial_oracle_under_rescale(tpcc_program):
    """A sequential TPC-C history across a 3 -> 5 -> 2 resize must
    commit exactly the serial-order (fixed-size Local) state."""
    from repro.core.refs import EntityRef
    from repro.runtimes import LocalRuntime
    from repro.workloads import order_line_refs, sample_dataset

    def drive(runtime) -> tuple:
        customer = EntityRef("Customer", "wh-0:d-0:c-0")
        district = EntityRef("District", "wh-0:d-0")
        warehouse = EntityRef("Warehouse", "wh-0")
        outcomes = []
        for lines, qties in (([1, 2], [4, 4]), ([3], [2]), ([2, 4], [1, 5])):
            outcomes.append(runtime.call(
                customer, "new_order", district,
                order_line_refs("wh-0", lines), qties))
        outcomes.append(runtime.call(customer, "payment", 99,
                                     warehouse, district))
        return (outcomes, runtime.entity_state(customer),
                runtime.entity_state(district),
                runtime.entity_state(warehouse))

    oracle = LocalRuntime(tpcc_program)
    for entity_name, rows in sample_dataset().items():
        for args in rows:
            oracle.create(entity_name, *args)
    expected = drive(oracle)

    elastic = StateflowRuntime(tpcc_program, config=StateflowConfig(
        workers=3,
        rescale_plan=RescalePlan(steps=[RescaleStep(at_ms=30.0, workers=5),
                                        RescaleStep(at_ms=400.0, workers=2)]),
        coordinator=chaos_coordinator_config()))
    for entity_name, rows in sample_dataset().items():
        elastic.preload(entity_name, rows)
    elastic.start()
    actual = drive(elastic)
    assert actual == expected
    assert elastic.coordinator.rescales >= 1, (
        "the plan should actually have resized the cluster")


# ---------------------------------------------------------------------------
# Rescale under chaos: resizes interleaved with crashes and faults
# ---------------------------------------------------------------------------


@given(transfer_plan, st.integers(0, 2**16))
@settings(max_examples=6, deadline=None)
def test_transfers_serializable_under_rescale_and_chaos(account_program,
                                                        plan, chaos_seed):
    """The full battery: a 2 -> 4 -> 3 resize while a random fault plan
    crashes workers, drops messages and partitions the cluster."""
    fault_plan = random_plan(chaos_seed, duration_ms=2_000.0, workers=4,
                             intensity="medium")
    runtime = StateflowRuntime(
        account_program,
        config=_rescale_config(start_ms=400.0, interval_ms=500.0,
                               fault_plan=fault_plan))
    refs = runtime.preload(Account,
                           [(f"acct-{i}", 100) for i in range(6)])
    runtime.start()
    replies: list[int] = []
    for index, (source, target, amount) in enumerate(plan):
        if source == target:
            target = (target + 1) % 6
        runtime.sim.schedule_at(
            index * 40.0,
            lambda s=source, t=target, a=amount: runtime.submit(
                refs[s], "transfer", (a, refs[t]),
                on_reply=lambda reply: replies.append(reply.request_id)))
    runtime.sim.run_until(lambda: len(replies) >= len(plan),
                          max_time=120_000)
    _quiesce(runtime)
    balances = [runtime.entity_state(ref)["balance"] for ref in refs]
    assert sum(balances) == 600, balances
    assert all(balance >= 0 for balance in balances), balances
    assert len(replies) == len(plan), "a commit was lost"
    assert len(set(replies)) == len(replies), "a reply was duplicated"


def test_migration_survives_worker_crash_mid_rescale(account_program):
    """Kill a migration source while slots are in flight: the rescale
    watchdog aborts the attempt, recovery restarts the workers (fencing
    stale installs via their incarnations), and the re-queued rescale
    completes — with no data loss."""
    plan = FaultPlan(seed=5, events=[
        # Crash a worker right as the (only) rescale begins migrating
        # (the injector resolves the index against the starting 2-worker
        # cluster, so this kills worker 0 — a migration source).
        FaultEvent(kind="crash_worker", at_ms=301.0, worker=2),
    ])
    runtime = StateflowRuntime(account_program, config=StateflowConfig(
        workers=2,
        rescale_plan=RescalePlan(steps=[RescaleStep(at_ms=300.0, workers=4)]),
        fault_plan=plan, coordinator=chaos_coordinator_config()))
    refs = runtime.preload(Account,
                           [(f"acct-{i}", 50) for i in range(10)])
    runtime.start()
    done: list[int] = []
    for index in range(12):
        runtime.sim.schedule_at(
            index * 60.0,
            lambda s=index % 10, t=(index + 3) % 10: runtime.submit(
                refs[s], "transfer", (5, refs[t]),
                on_reply=lambda reply: done.append(reply.request_id)))
    runtime.sim.run_until(lambda: len(done) >= 12, max_time=120_000)
    _quiesce(runtime)
    balances = [runtime.entity_state(ref)["balance"] for ref in refs]
    assert sum(balances) == 500, balances
    assert len(done) == 12 and len(set(done)) == 12
    assert runtime.worker_count == 4
    assert runtime.coordinator.rescales == 1
    assert runtime.coordinator.rescale_aborts >= 1, (
        "the crash should have stalled the first migration attempt")
    assert runtime.coordinator.recoveries >= 1


def test_rescale_with_message_faults_over_migration_channel(account_program):
    """Drop/delay windows covering the migration traffic itself: slot
    transfers are retried through recovery until they land."""
    plan = FaultPlan(seed=23, events=[
        FaultEvent(kind="messages", at_ms=250.0, duration_ms=700.0,
                   channel="network",
                   profile=MessageFaultProfile(drop_p=0.08, delay_p=0.3,
                                               delay_ms=25.0)),
    ])
    runtime = StateflowRuntime(account_program, config=StateflowConfig(
        workers=2,
        rescale_plan=RescalePlan(steps=[RescaleStep(at_ms=300.0, workers=4),
                                        RescaleStep(at_ms=700.0,
                                                    workers=3)]),
        fault_plan=plan, coordinator=chaos_coordinator_config()))
    refs = runtime.preload(Account, [(f"acct-{i}", 100) for i in range(6)])
    runtime.start()
    done: list[int] = []
    for index in range(15):
        runtime.sim.schedule_at(
            index * 50.0,
            lambda s=index % 6, t=(index + 1) % 6: runtime.submit(
                refs[s], "transfer", (2, refs[t]),
                on_reply=lambda reply: done.append(reply.request_id)))
    runtime.sim.run_until(lambda: len(done) >= 15, max_time=120_000)
    _quiesce(runtime)
    balances = [runtime.entity_state(ref)["balance"] for ref in refs]
    assert sum(balances) == 600, balances
    assert len(done) == 15 and len(set(done)) == 15
    assert runtime.worker_count == 3


# ---------------------------------------------------------------------------
# Acceptance scenario: 2 -> 4 -> 3 under load, replayed byte-identically
# ---------------------------------------------------------------------------


def _acceptance_run(account_program, state_backend: str):
    from repro.workloads import DriverConfig, WorkloadDriver, YcsbWorkload

    runtime = StateflowRuntime(
        account_program,
        config=_rescale_config(start_ms=400.0, interval_ms=600.0,
                               state_backend=state_backend))
    trace: list[tuple] = []
    runtime.reply_tap = lambda reply: trace.append(
        (reply.request_id, repr(reply.payload), reply.error,
         runtime.sim.now))
    workload = YcsbWorkload("T", record_count=24, distribution="uniform",
                            seed=11, initial_balance=500)
    runtime.preload(Account, workload.dataset_rows())
    runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=120, duration_ms=1_800, warmup_ms=0, drain_ms=20_000, seed=13))
    result = driver.run()
    _quiesce(runtime, 20_000)
    state = materialize_snapshot(runtime.committed.snapshot())
    state_bytes = repr(sorted(state.items(), key=repr)).encode("utf-8")
    return runtime, workload, result, trace, state, state_bytes


@pytest.mark.parametrize("state_backend", ["dict", "cow"])
def test_acceptance_2_4_3_under_load(account_program, state_backend):
    runtime, workload, result, trace, state, state_bytes = \
        _acceptance_run(account_program, state_backend)
    # Serial oracle: conservation and exactly-once completion.
    total = sum(entry["balance"] for (entity, _), entry in state.items()
                if entity == "Account")
    assert total == workload.total_balance()
    request_ids = [entry[0] for entry in trace]
    assert len(request_ids) == result.sent
    assert len(set(request_ids)) == len(request_ids)
    # The topology walked 2 -> 4 -> 3 and migration was measured.
    coordinator = runtime.coordinator
    assert [record.to_workers for record in coordinator.rescale_log] == [4, 3]
    assert runtime.worker_count == 3
    assert coordinator.slots_migrated > 0
    assert coordinator.keys_migrated > 0
    assert all(record.pause_ms > 0 for record in coordinator.rescale_log)
    # Byte-identical replay from the same seeds.
    _, _, _, trace2, _, state_bytes2 = _acceptance_run(
        account_program, state_backend)
    assert state_bytes == state_bytes2
    assert trace == trace2
