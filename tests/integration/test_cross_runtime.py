"""Cross-runtime consistency: "the choice of a runtime system is
completely independent of the application layer" — the same program and
the same operations must produce the same state on every backend."""

import pytest

from zoo import ZOO_CASES, OracleCounter, OracleZoo

from repro.runtimes import LocalRuntime
from repro.runtimes.statefun import StatefunRuntime
from repro.runtimes.stateflow import StateflowRuntime

RUNTIMES = [LocalRuntime, StatefunRuntime, StateflowRuntime]


def _run_shop(runtime_cls, shop_program):
    runtime = runtime_cls(shop_program)
    apple = runtime.create("Item", "apple", 3)
    runtime.call(apple, "update_stock", 10)
    alice = runtime.create("User", "alice")
    outcomes = [
        runtime.call(alice, "buy_item", 2, apple),
        runtime.call(alice, "buy_item", 50, apple),   # balance shortfall
        runtime.call(alice, "buy_item", 20, apple),   # stock shortfall
    ]
    return (outcomes,
            runtime.entity_state(alice),
            runtime.entity_state(apple))


@pytest.mark.parametrize("runtime_cls", RUNTIMES,
                         ids=[cls.__name__ for cls in RUNTIMES])
def test_shop_same_everywhere(runtime_cls, shop_program):
    outcomes, alice, apple = _run_shop(runtime_cls, shop_program)
    assert outcomes == [True, False, False]
    assert alice == {"username": "alice", "balance": 94}
    assert apple == {"item_id": "apple", "stock": 8, "price_per_unit": 3}


@pytest.mark.parametrize("runtime_cls", RUNTIMES,
                         ids=[cls.__name__ for cls in RUNTIMES])
@pytest.mark.parametrize("method,make_args",
                         [case for case in ZOO_CASES
                          if case[0] in ("straight", "branch", "loop_for",
                                         "helper_chain",
                                         "loop_while_break")],
                         ids=lambda value: value if isinstance(value, str)
                         else "")
def test_zoo_matches_oracle_on_every_runtime(runtime_cls, method, make_args,
                                             zoo_program):
    args = make_args(4)
    runtime = runtime_cls(zoo_program)
    counter = runtime.create("Counter", "c1")
    zoo = runtime.create("Zoo", "z1")
    value = runtime.call(zoo, method, counter, *args)

    oracle_counter = OracleCounter("c1")
    oracle = OracleZoo("z1")
    expected = getattr(oracle, method)(oracle_counter, *args)

    assert value == expected
    assert runtime.entity_state(counter) == vars(oracle_counter)


# ---------------------------------------------------------------------------
# Conformance matrix under faults: one message-level plan, three runtimes
# ---------------------------------------------------------------------------

from repro.faults import FaultEvent, FaultPlan, MessageFaultProfile  # noqa: E402
from repro.runtimes.statefun import StatefunConfig  # noqa: E402
from repro.runtimes.stateflow import StateflowConfig  # noqa: E402

#: Delivery-perturbing but loss-free: delays reorder in-flight messages
#: on the simulated runtimes and reorder the Local queue; no runtime may
#: let delivery timing leak into entity state.
CONFORMANCE_PLAN = FaultPlan(seed=31, name="conformance", events=[
    FaultEvent(kind="messages", at_ms=0.0, duration_ms=600_000.0,
               channel="all",
               profile=MessageFaultProfile(delay_p=0.35, delay_ms=25.0))])


def _faulted_runtime(runtime_cls, program):
    if runtime_cls is LocalRuntime:
        return LocalRuntime(program, fault_plan=CONFORMANCE_PLAN)
    if runtime_cls is StatefunRuntime:
        return StatefunRuntime(program, config=StatefunConfig(
            fault_plan=CONFORMANCE_PLAN))
    return StateflowRuntime(program, config=StateflowConfig(
        fault_plan=CONFORMANCE_PLAN))


@pytest.mark.parametrize("runtime_cls", RUNTIMES,
                         ids=[cls.__name__ for cls in RUNTIMES])
@pytest.mark.parametrize("method,make_args",
                         [case for case in ZOO_CASES
                          if case[0] in ("straight", "branch", "loop_for",
                                         "helper_chain", "loop_while_break",
                                         "remote_in_condition")],
                         ids=lambda value: value if isinstance(value, str)
                         else "")
def test_zoo_conformance_under_shared_fault_plan(runtime_cls, method,
                                                 make_args, zoo_program):
    """Satellite: every runtime, same message-level fault plan, same
    program — the final entity state must be identical everywhere (and
    equal to the plain-Python oracle)."""
    args = make_args(4)
    runtime = _faulted_runtime(runtime_cls, zoo_program)
    counter = runtime.create("Counter", "c1")
    zoo = runtime.create("Zoo", "z1")
    value = runtime.call(zoo, method, counter, *args)

    oracle_counter = OracleCounter("c1")
    oracle = OracleZoo("z1")
    expected = getattr(oracle, method)(oracle_counter, *args)

    assert value == expected
    assert runtime.entity_state(counter) == vars(oracle_counter)
    if runtime.faults is not None:  # simulated runtimes only
        assert runtime.faults.stats.delayed + \
            runtime.faults.stats.kafka_delayed > 0, (
            "the plan was supposed to perturb deliveries")


@pytest.mark.parametrize("runtime_cls", RUNTIMES,
                         ids=[cls.__name__ for cls in RUNTIMES])
def test_shop_conformance_under_shared_fault_plan(runtime_cls, shop_program):
    runtime = _faulted_runtime(runtime_cls, shop_program)
    apple = runtime.create("Item", "apple", 3)
    runtime.call(apple, "update_stock", 10)
    alice = runtime.create("User", "alice")
    outcomes = [runtime.call(alice, "buy_item", 2, apple),
                runtime.call(alice, "buy_item", 50, apple)]
    assert outcomes == [True, False]
    assert runtime.entity_state(alice) == {"username": "alice",
                                           "balance": 94}
    assert runtime.entity_state(apple) == {"item_id": "apple", "stock": 8,
                                           "price_per_unit": 3}


def test_tpcc_same_on_local_and_stateflow(tpcc_program):
    from repro.core.refs import EntityRef
    from repro.workloads import order_line_refs, sample_dataset

    finals = []
    for runtime_cls in (LocalRuntime, StateflowRuntime):
        runtime = runtime_cls(tpcc_program)
        dataset = sample_dataset()
        if hasattr(runtime, "preload"):
            for entity_name, rows in dataset.items():
                runtime.preload(entity_name, rows)
            runtime.start()
        else:
            for entity_name, rows in dataset.items():
                for args in rows:
                    runtime.create(entity_name, *args)
        customer = EntityRef("Customer", "wh-0:d-0:c-0")
        district = EntityRef("District", "wh-0:d-0")
        runtime.call(customer, "new_order", district,
                     order_line_refs("wh-0", [1, 2]), [4, 4])
        runtime.call(customer, "payment", 99,
                     EntityRef("Warehouse", "wh-0"), district)
        finals.append((runtime.entity_state(customer),
                       runtime.entity_state(district)))
    assert finals[0] == finals[1]
