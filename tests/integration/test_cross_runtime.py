"""Cross-runtime consistency: "the choice of a runtime system is
completely independent of the application layer" — the same program and
the same operations must produce the same state on every backend."""

import pytest

from zoo import ZOO_CASES, OracleCounter, OracleZoo

from repro.runtimes import LocalRuntime
from repro.runtimes.statefun import StatefunRuntime
from repro.runtimes.stateflow import StateflowRuntime

RUNTIMES = [LocalRuntime, StatefunRuntime, StateflowRuntime]


def _run_shop(runtime_cls, shop_program):
    runtime = runtime_cls(shop_program)
    apple = runtime.create("Item", "apple", 3)
    runtime.call(apple, "update_stock", 10)
    alice = runtime.create("User", "alice")
    outcomes = [
        runtime.call(alice, "buy_item", 2, apple),
        runtime.call(alice, "buy_item", 50, apple),   # balance shortfall
        runtime.call(alice, "buy_item", 20, apple),   # stock shortfall
    ]
    return (outcomes,
            runtime.entity_state(alice),
            runtime.entity_state(apple))


@pytest.mark.parametrize("runtime_cls", RUNTIMES,
                         ids=[cls.__name__ for cls in RUNTIMES])
def test_shop_same_everywhere(runtime_cls, shop_program):
    outcomes, alice, apple = _run_shop(runtime_cls, shop_program)
    assert outcomes == [True, False, False]
    assert alice == {"username": "alice", "balance": 94}
    assert apple == {"item_id": "apple", "stock": 8, "price_per_unit": 3}


@pytest.mark.parametrize("runtime_cls", RUNTIMES,
                         ids=[cls.__name__ for cls in RUNTIMES])
@pytest.mark.parametrize("method,make_args",
                         [case for case in ZOO_CASES
                          if case[0] in ("straight", "branch", "loop_for",
                                         "helper_chain",
                                         "loop_while_break")],
                         ids=lambda value: value if isinstance(value, str)
                         else "")
def test_zoo_matches_oracle_on_every_runtime(runtime_cls, method, make_args,
                                             zoo_program):
    args = make_args(4)
    runtime = runtime_cls(zoo_program)
    counter = runtime.create("Counter", "c1")
    zoo = runtime.create("Zoo", "z1")
    value = runtime.call(zoo, method, counter, *args)

    oracle_counter = OracleCounter("c1")
    oracle = OracleZoo("z1")
    expected = getattr(oracle, method)(oracle_counter, *args)

    assert value == expected
    assert runtime.entity_state(counter) == vars(oracle_counter)


def test_tpcc_same_on_local_and_stateflow(tpcc_program):
    from repro.core.refs import EntityRef
    from repro.workloads import order_line_refs, sample_dataset

    finals = []
    for runtime_cls in (LocalRuntime, StateflowRuntime):
        runtime = runtime_cls(tpcc_program)
        dataset = sample_dataset()
        if hasattr(runtime, "preload"):
            for entity_name, rows in dataset.items():
                runtime.preload(entity_name, rows)
            runtime.start()
        else:
            for entity_name, rows in dataset.items():
                for args in rows:
                    runtime.create(entity_name, *args)
        customer = EntityRef("Customer", "wh-0:d-0:c-0")
        district = EntityRef("District", "wh-0:d-0")
        runtime.call(customer, "new_order", district,
                     order_line_refs("wh-0", [1, 2]), [4, 4])
        runtime.call(customer, "payment", 99,
                     EntityRef("Warehouse", "wh-0"), district)
        finals.append((runtime.entity_state(customer),
                       runtime.entity_state(district)))
    assert finals[0] == finals[1]
