"""Time-travel queries (``consistency="as_of"``) against a serial
oracle.

The oracle is the changelog itself, observed from the outside: a spy on
``changelog.append`` records every committed batch's write set, so the
state "as of batch N" is the preload folded with every record whose
``batch_id <= N`` — plain dict updates, no snapshot machinery.  The
engine must reproduce that at *every* queryable batch boundary (and at
every commit timestamp), anchoring on whichever retained cut is nearest
and replaying the changelog suffix.

Targets older than the retained history must be refused, never answered
wrong — the aggregate-error satellites (``sum``/``top_k`` naming the
missing field) ride along at the bottom.
"""

import pytest

from repro.query import QueryEngine, QueryError
from repro.runtimes import LocalRuntime
from repro.runtimes.state import materialize_snapshot
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.runtimes.stateflow.snapshots import SnapshotStore
from repro.substrates.simulation import Simulation
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload

RECORDS = 16
TOTAL = RECORDS * 1_000


def run_traced(account_program, *, snapshot_mode="incremental",
               unbounded_retention=True, seed=11):
    """One deterministic YCSB-T run; returns (runtime, initial_state,
    log) where *log* is every changelog append as (batch_id, writes,
    at_ms) — the serial oracle's tape."""
    config = StateflowConfig(
        workers=3, state_backend="dict", snapshot_mode=snapshot_mode,
        pipeline_depth=2,
        coordinator=CoordinatorConfig(snapshot_interval_ms=150.0,
                                      failure_detect_ms=200.0,
                                      snapshot_base_every=3))
    runtime = StateflowRuntime(account_program, sim=Simulation(seed=seed),
                               config=config)
    if unbounded_retention and snapshot_mode == "incremental":
        # The default window keeps 4 cuts; during the idle drain those
        # all collapse onto the final batch, which leaves nothing to
        # time-travel through.  Widen retention so the whole run stays
        # within the retained history (the bounded-window refusal has
        # its own test below).
        runtime.coordinator.snapshots = SnapshotStore(
            keep=10_000, mode="incremental", base_every=3)
    log = []
    changelog = runtime.coordinator.changelog
    original_append = changelog.append

    def spy(batch_id, writes, *, at_ms=0.0):
        log.append((batch_id, dict(writes), at_ms))
        return original_append(batch_id, writes, at_ms=at_ms)

    changelog.append = spy
    workload = YcsbWorkload("T", record_count=RECORDS,
                            distribution="uniform", seed=seed + 1,
                            initial_balance=1_000)
    runtime.preload(Account, workload.dataset_rows())
    initial = materialize_snapshot(runtime.committed.snapshot())
    runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=150.0, duration_ms=1_500.0, warmup_ms=0.0, drain_ms=20_000.0,
        seed=seed + 2))
    driver.run()
    runtime.sim.run(until=runtime.sim.now + 20_000.0)
    return runtime, initial, log


def oracle_at(initial, log, batch):
    """Serial replay: fold every committed write set up to *batch*."""
    state = dict(initial)
    for batch_id, writes, _ in log:
        if batch_id <= batch:
            state.update(writes)
    return {key: value for key, value in state.items() if value is not None}


def rows_as_state(result):
    return {("Account", row["__key__"]):
            {field: value for field, value in row.items()
             if field != "__key__"}
            for row in result.rows}


class TestAsOfMatchesSerialOracle:
    def test_every_batch_boundary(self, account_program):
        runtime, initial, log = run_traced(account_program)
        engine = QueryEngine(runtime)
        batches = sorted({batch_id for batch_id, _, _ in log})
        assert len(batches) >= 10, "run too small to mean anything"
        compared = refused = 0
        for batch in batches:
            try:
                result = engine.select("Account", consistency="as_of",
                                       at_batch=batch)
            except QueryError as error:
                # Only targets before the first retained cut may be
                # refused, and the refusal must say why.
                assert "retained history" in str(error)
                refused += 1
                continue
            assert rows_as_state(result) == oracle_at(initial, log, batch)
            compared += 1
        assert compared >= 10, (compared, refused)

    def test_every_commit_timestamp(self, account_program):
        runtime, initial, log = run_traced(account_program)
        engine = QueryEngine(runtime)
        compared = 0
        for batch_id, _, at_ms in log:
            try:
                result = engine.select("Account", consistency="as_of",
                                       at_ms=at_ms)
            except QueryError as error:
                assert "retained history" in str(error)
                continue
            assert rows_as_state(result) == oracle_at(initial, log,
                                                      batch_id)
            compared += 1
        assert compared >= 10

    def test_aggregates_conserve_at_every_boundary(self, account_program):
        """YCSB-T is pure transfers: the as-of total must equal the
        preloaded total at every queryable point in history."""
        runtime, _, log = run_traced(account_program)
        engine = QueryEngine(runtime)
        checked = 0
        for batch in sorted({batch_id for batch_id, _, _ in log}):
            try:
                total = engine.sum("Account", "balance",
                                   consistency="as_of", at_batch=batch)
            except QueryError:
                continue
            assert total == TOTAL
            checked += 1
        assert checked >= 10

    def test_result_is_stamped_with_its_time(self, account_program):
        runtime, _, log = run_traced(account_program)
        engine = QueryEngine(runtime)
        last_batch, _, last_at_ms = log[-1]
        result = engine.select("Account", consistency="as_of",
                               at_batch=last_batch)
        assert result.consistency == "as_of"
        # The anchor cut may postdate the last commit (an idle-drain
        # cut with an empty suffix observes the same state, later).
        assert result.as_of_ms >= last_at_ms
        # A timestamp target is an upper bound on the observed time.
        mid_batch, _, mid_at_ms = log[len(log) // 2]
        by_time = engine.select("Account", consistency="as_of",
                                at_ms=mid_at_ms)
        assert by_time.as_of_ms <= mid_at_ms


class TestAsOfRefusals:
    def test_needs_exactly_one_target(self, account_program):
        runtime, _, log = run_traced(account_program)
        engine = QueryEngine(runtime)
        with pytest.raises(QueryError, match="exactly one"):
            engine.select("Account", consistency="as_of")
        with pytest.raises(QueryError, match="exactly one"):
            engine.select("Account", consistency="as_of", at_batch=1,
                          at_ms=10.0)

    def test_targets_require_as_of_consistency(self, account_program):
        runtime, _, _ = run_traced(account_program)
        engine = QueryEngine(runtime)
        with pytest.raises(QueryError, match="consistency='as_of'"):
            engine.select("Account", consistency="live", at_batch=1)
        with pytest.raises(QueryError, match="consistency='as_of'"):
            engine.sum("Account", "balance", consistency="snapshot",
                       at_ms=5.0)

    def test_full_mode_has_no_changelog_to_replay(self, account_program):
        runtime, _, _ = run_traced(account_program, snapshot_mode="full")
        with pytest.raises(QueryError, match="changelog"):
            QueryEngine(runtime).select("Account", consistency="as_of",
                                        at_batch=0)

    def test_point_before_retained_history_is_refused(self, account_program):
        """With the real bounded retention window, the idle drain walks
        every retained cut onto the final batch — early history is
        compacted away and must be refused, not misanswered."""
        runtime, _, log = run_traced(account_program,
                                     unbounded_retention=False)
        with pytest.raises(QueryError, match="retained history"):
            QueryEngine(runtime).select("Account", consistency="as_of",
                                        at_batch=0)
        # The recent end of history is still there.
        last_batch = max(batch_id for batch_id, _, _ in log)
        result = QueryEngine(runtime).select(
            "Account", consistency="as_of", at_batch=last_batch)
        assert len(result) == RECORDS


class TestAggregateFieldErrors:
    @pytest.fixture()
    def engine(self, account_program):
        runtime = LocalRuntime(account_program)
        for index, balance in enumerate([10, 25]):
            runtime.create(Account, f"acct-{index}", balance)
        return QueryEngine(runtime)

    @pytest.mark.parametrize("aggregate", ["sum", "avg", "min", "max"])
    def test_aggregates_name_the_missing_field(self, engine, aggregate):
        with pytest.raises(QueryError, match=r"'ghost' on entity "
                                             r"'Account'"):
            getattr(engine, aggregate)("Account", "ghost")

    def test_top_k_names_the_missing_field(self, engine):
        with pytest.raises(QueryError, match=r"'ghost'.*'Account'"):
            engine.top_k("Account", "ghost", 2)
