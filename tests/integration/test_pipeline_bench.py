"""The pipeline bench cell: depth sweep plumbing, artifact shape, and
exactly-once completion at every depth.  (The full-size ≥1.5x speedup
acceptance run lives in `repro bench --cell pipeline` / CI, where the
cell saturates a 32-worker deployment; here we only check the machinery
on a small, fast configuration.)"""

from repro.bench import run_pipeline_cell


def test_pipeline_cell_sweeps_depths_and_reports():
    report = run_pipeline_cell(
        depths=(1, 2), rps=4_000.0, duration_ms=300.0, record_count=300,
        workers=8, state_slots=64, seed=7, state_backend="cow",
        drain_ms=30_000.0)
    assert [row.depth for row in report.rows] == [1, 2]
    for row in report.rows:
        assert row.completed == row.sent, (
            f"depth {row.depth} lost replies")
        assert row.errors == 0
        assert row.throughput_txn_s > 0
        assert row.batches > 0
    piped = report.rows[1]
    assert piped.depth_hist.get(2, 0) > 0, (
        "the depth-2 run never actually pipelined")
    assert report.speedup > 0.9, (
        "depth 2 must not be slower than the serial baseline: "
        f"{report.speedup:.2f}")

    artifact = report.as_artifact()
    assert artifact["cell"] == "pipeline"
    assert artifact["state_backend"] == "cow"
    assert len(artifact["rows"]) == 2
    assert artifact["rows"][1]["depth_hist"]
    assert "speedup_depth2_over_depth1" in artifact
    assert isinstance(artifact["mean_latency_improved"], bool)


def test_pipeline_cell_depth1_only_has_nan_speedup():
    report = run_pipeline_cell(
        depths=(1,), rps=1_000.0, duration_ms=200.0, record_count=100,
        workers=4, state_slots=16, seed=7, state_backend="dict",
        drain_ms=20_000.0)
    assert report.speedup != report.speedup  # NaN: nothing to compare
    assert not report.mean_latency_improved
