"""The pipeline bench cell: depth sweep plumbing, artifact shape, and
exactly-once completion at every depth.  (The full-size speedup
acceptance run lives in `repro bench --cell pipeline` / CI, where the
cell saturates a 32-worker deployment; here we only check the machinery
on a small, fast configuration.)"""

import pytest

from repro.bench import run_pipeline_bench, run_pipeline_cell


def test_pipeline_cell_sweeps_depths_and_reports():
    report = run_pipeline_cell(
        depths=(1, 2), rps=4_000.0, duration_ms=300.0, record_count=300,
        workers=8, state_slots=64, seed=7, state_backend="cow",
        drain_ms=30_000.0)
    assert [row.depth for row in report.rows] == [1, 2]
    for row in report.rows:
        assert row.completed == row.sent, (
            f"depth {row.depth} lost replies")
        assert row.errors == 0
        assert row.throughput_txn_s > 0
        assert row.batches > 0
    piped = report.rows[1]
    assert piped.depth_hist.get(2, 0) > 0, (
        "the depth-2 run never actually pipelined")
    assert report.speedup > 0.9, (
        "depth 2 must not be slower than the serial baseline: "
        f"{report.speedup:.2f}")

    artifact = report.as_artifact()
    assert artifact["cell"] == "pipeline"
    assert artifact["state_backend"] == "cow"
    assert artifact["mode"] == "simulator"
    assert len(artifact["rows"]) == 2
    assert all(row["mode"] == "simulator" for row in artifact["rows"])
    assert artifact["rows"][1]["depth_hist"]
    assert "speedup_depth2_over_depth1" in artifact
    assert isinstance(artifact["mean_latency_improved"], bool)
    # Pipelining must change timing, never results: the simulator sweep
    # carries a per-depth reply digest and they must agree.
    assert set(artifact["reply_digests"]) == {"1", "2"}
    assert artifact["replies_identical"] is True
    assert report.replies_identical


def test_pipeline_cell_depth1_only_has_nan_speedup():
    report = run_pipeline_cell(
        depths=(1,), rps=1_000.0, duration_ms=200.0, record_count=100,
        workers=4, state_slots=16, seed=7, state_backend="dict",
        drain_ms=20_000.0)
    assert report.speedup != report.speedup  # NaN: nothing to compare
    assert not report.mean_latency_improved


def test_pipeline_bench_simulator_only_artifact():
    artifact, sim_report, wall_report = run_pipeline_bench(
        state_backend="dict", seed=7, include_wallclock=False,
        simulator_kwargs=dict(depths=(1, 2), rps=2_000.0,
                              duration_ms=200.0, record_count=200,
                              workers=8, state_slots=64,
                              drain_ms=20_000.0))
    assert wall_report is None
    assert "wallclock" not in artifact
    assert artifact["simulator"]["replies_identical"] is True
    assert sim_report.mode == "simulator"


@pytest.mark.slow
def test_pipeline_bench_combined_artifact_with_wallclock():
    """The merged artifact carries both row sets: the simulator section
    gated on identical replies, the wallclock section on real speedup
    (the ≥1.2x target binding only on ≥4 cores, None below)."""
    artifact, sim_report, wall_report = run_pipeline_bench(
        state_backend="dict", seed=7,
        simulator_kwargs=dict(depths=(1, 2), rps=2_000.0,
                              duration_ms=200.0, record_count=200,
                              workers=8, state_slots=64,
                              drain_ms=20_000.0),
        wallclock_kwargs=dict(depths=(1, 2), rps=300.0,
                              duration_ms=1_500.0, record_count=500,
                              workers=2, state_slots=32,
                              drain_ms=20_000.0))
    assert wall_report is not None and wall_report.mode == "wallclock"
    modes = [row["mode"] for row in artifact["rows"]]
    assert modes.count("simulator") == 2 and modes.count("wallclock") == 2
    assert artifact["simulator"]["replies_identical"] is True
    wall = artifact["wallclock"]
    assert wall["cpu_count"] >= 1
    assert isinstance(wall["mean_latency_improved"], bool)
    assert wall["meets_speedup_target"] in (True, False, None)
    if wall["cpu_count"] < 4:
        assert wall["meets_speedup_target"] is None
    for row in wall_report.rows:
        assert row.completed == row.sent
        assert row.errors == 0
