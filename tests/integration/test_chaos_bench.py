"""The chaos bench cell: recovery/availability metrics and the
reproducibility contract at the harness level."""

from repro.bench import run_chaos_cell
from repro.faults import FaultEvent, FaultPlan, MessageFaultProfile


def _plan() -> FaultPlan:
    return FaultPlan(seed=21, name="bench-chaos", events=[
        FaultEvent(kind="messages", at_ms=200.0, duration_ms=800.0,
                   channel="all",
                   profile=MessageFaultProfile(drop_p=0.04, duplicate_p=0.04,
                                               delay_p=0.15, delay_ms=15.0)),
        FaultEvent(kind="crash_worker", at_ms=600.0, worker=2),
    ])


def test_chaos_cell_measures_recovery_and_stays_correct():
    report = run_chaos_cell(rps=100.0, duration_ms=1_500.0,
                            record_count=30, seed=21, plan=_plan())
    assert report.ok, report.problems
    assert report.recoveries >= 1
    assert report.fault_stats["worker_crashes"] == 1
    # A crash happened: the outage metric must be a real, positive gap.
    assert report.recovery_time_ms > 0
    assert 0.0 < report.availability <= 1.0
    assert report.row.completed == report.row.sent
    assert report.row.extra["recoveries"] == report.recoveries

    rerun = run_chaos_cell(rps=100.0, duration_ms=1_500.0,
                           record_count=30, seed=21, plan=_plan())
    assert rerun.trace_digest == report.trace_digest


def test_chaos_cell_on_both_state_backends():
    """The chaos smoke the CI job runs: dict and cow backends both
    recover loss-free under the same plan."""
    digests = {}
    for backend in ("dict", "cow"):
        report = run_chaos_cell(rps=90.0, duration_ms=1_200.0,
                                record_count=25, seed=33,
                                state_backend=backend)
        assert report.ok, (backend, report.problems)
        digests[backend] = report.trace_digest
    # Same seed, same plan: the committed history must not depend on the
    # snapshot representation.
    assert digests["dict"] == digests["cow"]


def test_chaos_cell_honours_env_backend_default(monkeypatch):
    """`REPRO_STATE_BACKEND` must select the backend for chaos cells
    that do not pin one, exactly like the plain YCSB cells."""
    monkeypatch.setenv("REPRO_STATE_BACKEND", "cow")
    report = run_chaos_cell(rps=80.0, duration_ms=800.0, record_count=15,
                            seed=5, plan=_plan())
    assert report.row.extra["state_backend"] == "cow"
