"""Query engine over entity state (Section 5)."""

import pytest

from repro.query import QueryEngine, QueryError
from repro.runtimes import LocalRuntime
from repro.runtimes.stateflow import StateflowRuntime
from repro.workloads import Account


@pytest.fixture()
def local_accounts(account_program):
    runtime = LocalRuntime(account_program)
    for index, balance in enumerate([10, 25, 40, 55]):
        runtime.create(Account, f"acct-{index}", balance)
    return runtime


class TestSelect:
    def test_scan_all(self, local_accounts):
        result = QueryEngine(local_accounts).select("Account")
        assert len(result) == 4
        assert result.keys() == [f"acct-{i}" for i in range(4)]

    @pytest.mark.parametrize("backend", ["dict", "cow"])
    def test_live_scan_over_any_backend(self, account_program, backend):
        runtime = LocalRuntime(account_program, state_backend=backend)
        for index, balance in enumerate([10, 25]):
            runtime.create(Account, f"acct-{index}", balance)
        result = QueryEngine(runtime).select("Account")
        assert sorted(result.scalars("balance")) == [10, 25]

    @pytest.mark.parametrize("backend", ["dict", "cow"])
    def test_stateflow_queries_over_any_backend(self, account_program,
                                                backend):
        from repro.runtimes.stateflow import StateflowConfig

        runtime = StateflowRuntime(
            account_program, config=StateflowConfig(state_backend=backend))
        a, b = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        runtime.call(a, "transfer", 30, b)
        engine = QueryEngine(runtime)
        assert sorted(engine.select(
            "Account", consistency="live").scalars("balance")) == [70, 130]
        snapshot = engine.select("Account", consistency="snapshot")
        assert sorted(snapshot.scalars("balance")) == [100, 100]

    def test_where(self, local_accounts):
        result = QueryEngine(local_accounts).select(
            "Account", where=lambda s: s["balance"] >= 40)
        assert result.keys() == ["acct-2", "acct-3"]

    def test_project(self, local_accounts):
        result = QueryEngine(local_accounts).select(
            "Account", project=["balance"])
        assert set(result.rows[0]) == {"balance", "__key__"}

    def test_project_unknown_field(self, local_accounts):
        with pytest.raises(QueryError):
            QueryEngine(local_accounts).select("Account",
                                               project=["ghost"])

    def test_order_and_limit(self, local_accounts):
        result = QueryEngine(local_accounts).select(
            "Account", order_by="balance", descending=True, limit=2)
        assert result.scalars("balance") == [55, 40]

    def test_top_k(self, local_accounts):
        result = QueryEngine(local_accounts).top_k("Account", "balance", 1)
        assert result.keys() == ["acct-3"]

    def test_top_k_tie_break_is_ascending_key(self, account_program):
        runtime = LocalRuntime(account_program)
        for key in ["zed", "abe", "mid"]:
            runtime.create(Account, key, 50)
        runtime.create(Account, "low", 10)
        result = QueryEngine(runtime).top_k("Account", "balance", 3)
        assert result.keys() == ["abe", "mid", "zed"], (
            "equal scores must rank by ascending key string — the same "
            "deterministic order the incremental top-k view maintains")

    def test_top_k_where_and_validation(self, local_accounts):
        engine = QueryEngine(local_accounts)
        result = engine.top_k("Account", "balance", 2,
                              where=lambda s: s["balance"] < 50)
        assert result.scalars("balance") == [40, 25]
        with pytest.raises(QueryError, match="k >= 1"):
            engine.top_k("Account", "balance", 0)
        with pytest.raises(QueryError, match="unknown field"):
            engine.top_k("Account", "ghost", 2)

    def test_unknown_entity_empty(self, local_accounts):
        assert len(QueryEngine(local_accounts).select("Ghost")) == 0

    def test_point_read_never_scans(self, account_program):
        """A single-key live read must go straight to ``store.get``
        without materializing the whole entity via ``store.keys()``."""
        from types import SimpleNamespace

        runtime = LocalRuntime(account_program)
        for index, balance in enumerate([10, 25, 40]):
            runtime.create(Account, f"acct-{index}", balance)
        store = runtime.state

        class NoScanStore:
            def keys(self):
                raise AssertionError("point read must not enumerate keys")

            def get(self, entity, key):
                return store.get(entity, key)

        engine = QueryEngine(SimpleNamespace(state=NoScanStore()))
        result = engine.select("Account", key="acct-1")
        assert result.rows == [{"account_id": "acct-1", "balance": 25,
                                "payload": "", "__key__": "acct-1"}]
        assert engine.select("Account", key="ghost").rows == []

    def test_point_read_respects_where_and_project(self, local_accounts):
        engine = QueryEngine(local_accounts)
        assert engine.select("Account", key="acct-0",
                             where=lambda s: s["balance"] > 99).rows == []
        row = engine.select("Account", key="acct-2",
                            project=["balance"]).rows[0]
        assert row == {"balance": 40, "__key__": "acct-2"}

    def test_bad_consistency(self, local_accounts):
        with pytest.raises(QueryError):
            QueryEngine(local_accounts).select("Account",
                                               consistency="psychic")


class TestAggregates:
    def test_count_sum_avg(self, local_accounts):
        engine = QueryEngine(local_accounts)
        assert engine.count("Account") == 4
        assert engine.sum("Account", "balance") == 130
        assert engine.avg("Account", "balance") == pytest.approx(32.5)
        assert engine.min("Account", "balance") == 10
        assert engine.max("Account", "balance") == 55

    def test_empty_avg_rejected(self, local_accounts):
        with pytest.raises(QueryError):
            QueryEngine(local_accounts).avg("Ghost", "balance")


class TestConsistencyLevels:
    def test_snapshot_requires_stateflow(self, local_accounts):
        with pytest.raises(QueryError):
            QueryEngine(local_accounts).select("Account",
                                               consistency="snapshot")

    def test_snapshot_is_stale_but_consistent(self, account_program):
        runtime = StateflowRuntime(account_program)
        a, b = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()  # initial snapshot covers the preloaded rows
        runtime.call(a, "transfer", 30, b)
        engine = QueryEngine(runtime)

        live = engine.select("Account", consistency="live")
        assert sorted(live.scalars("balance")) == [70, 130]

        stale = engine.select("Account", consistency="snapshot")
        assert sorted(stale.scalars("balance")) == [100, 100]
        assert stale.as_of_ms is not None
        assert stale.as_of_ms <= runtime.sim.now

        # After the next snapshot the transfer becomes visible — still
        # as an atomic unit (never 70/100 or 100/130).
        runtime.sim.run(until=runtime.sim.now + 1_000)
        fresh = engine.select("Account", consistency="snapshot")
        assert sorted(fresh.scalars("balance")) == [70, 130]

    def test_snapshot_reads_atomic_under_load(self, account_program):
        """The freshness/consistency trade-off: every snapshot read must
        conserve the global total even while transfers are in flight."""
        from repro.workloads import DriverConfig, WorkloadDriver, YcsbWorkload

        runtime = StateflowRuntime(account_program)
        workload = YcsbWorkload("T", record_count=20, seed=6,
                                initial_balance=100)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        engine = QueryEngine(runtime)
        totals = []

        def probe() -> None:
            try:
                totals.append(engine.sum("Account", "balance",
                                         consistency="snapshot"))
            except QueryError:
                pass
            runtime.sim.schedule(200.0, probe)

        runtime.sim.schedule(200.0, probe)
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=200, duration_ms=3_000, warmup_ms=0, drain_ms=2_000))
        driver.run()
        assert totals, "probe should have observed snapshots"
        assert all(total == workload.total_balance() for total in totals)
