"""Direct checks of quotable paper claims (beyond the figures)."""

from zoo import SHOP_ENTITIES

from repro import compile_program
from repro.compiler.blocks import InvokeTerminator
from repro.runtimes import Instrumentation, LocalRuntime
from repro.runtimes.stateflow import StateflowRuntime
from repro.runtimes.statefun import StatefunRuntime


def test_claim_split_mirrors_section_2_4(shop_program):
    """Section 2.4: buy_item_0 evaluates the remote call's arguments and
    suspends; buy_item_1 resumes with the remote return value bound."""
    split = shop_program.split("User", "buy_item")
    first = split.block("buy_item_0")
    assert isinstance(first.terminator, InvokeTerminator)
    follow = split.block(first.terminator.continuation)
    assert first.terminator.result_var in follow.reads


def test_claim_imperative_code_runs_event_based(shop_program):
    """Section 2.3: the dataflow never blocks — every handled event
    produces outbound events immediately (no waiting in the executor)."""
    from repro.core.refs import EntityRef
    from repro.ir.events import Event, EventKind
    from repro.runtimes.executor import MapStateAccess, OperatorExecutor

    executor = OperatorExecutor(shop_program.entities)
    state = MapStateAccess()
    state.put("User", "u", {"username": "u", "balance": 10})
    state.put("Item", "i", {"item_id": "i", "stock": 5,
                            "price_per_unit": 1})
    outs = executor.handle(
        Event(kind=EventKind.INVOKE, target=EntityRef("User", "u"),
              method="buy_item", args=(1, EntityRef("Item", "i")),
              request_id=1),
        state)
    assert len(outs) == 1  # suspended, not blocked


def test_claim_sub_100ms_even_transactional(account_program):
    """Abstract: 'stateful entities can perform at sub-100ms latency even
    for transactional workloads' (average at low rate)."""
    from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload

    runtime = StateflowRuntime(account_program)
    workload = YcsbWorkload("T", record_count=200, distribution="zipfian")
    runtime.preload(Account, workload.dataset_rows())
    runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=100, duration_ms=5_000, warmup_ms=1_000, drain_ms=3_000))
    result = driver.run()
    assert result.mean() < 100.0


def test_claim_statefun_insensitive_to_distribution(account_program):
    """Section 4: 'Statefun performs the same in both the A and B
    workloads and in both Zipfian and uniform distributions.'"""
    from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload

    means = []
    for distribution in ("zipfian", "uniform"):
        runtime = StatefunRuntime(account_program)
        workload = YcsbWorkload("A", record_count=200,
                                distribution=distribution, seed=3)
        runtime.preload(Account, workload.dataset_rows())
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=100, duration_ms=4_000, warmup_ms=500, drain_ms=3_000))
        means.append(driver.run().mean())
    low, high = sorted(means)
    assert high / low < 1.15


def test_claim_splitting_under_one_percent():
    """Conclusion: 'function splitting and program transformation incur
    less than 1% overhead.'

    The wall-clock share flakes under host load, so we assert the
    structural basis of the claim with an injected clock instead:
    splitting adds exactly one O(1) bookkeeping step per invocation,
    and that count is independent of the state size, while the
    serde/storage components carry the size-dependent work — which is
    what bounds the split share in any real measurement."""
    from itertools import count

    from repro.bench import run_overhead_breakdown

    ticks = count()
    rows = run_overhead_breakdown([50, 200], operations=150,
                                  clock=lambda: float(next(ticks)))
    for row in rows:
        assert row.component_counts["split_instrumentation"] == row.operations
        assert row.split_share is not None
    # Identical bookkeeping across a 4x state-size spread: the split
    # cost does not grow with the entity's state.
    assert (rows[0].component_counts["split_instrumentation"]
            == rows[1].component_counts["split_instrumentation"])
    assert rows[0].split_share == rows[1].split_share


def test_claim_portability_no_code_changes(shop_program):
    """Section 1: switching runtime systems requires no changes to the
    application code — identical API, identical results."""
    results = {}
    for runtime_cls in (LocalRuntime, StatefunRuntime, StateflowRuntime):
        runtime = runtime_cls(shop_program)
        apple = runtime.create("Item", "apple", 2)
        runtime.call(apple, "update_stock", 4)
        alice = runtime.create("User", "alice")
        results[runtime_cls.__name__] = (
            runtime.call(alice, "buy_item", 3, apple),
            runtime.entity_state(alice)["balance"])
    assert len(set(results.values())) == 1
