"""The rescale bench cell (migration pause + post-rescale throughput)
and the ``BENCH_<cell>.json`` artifact persistence the perf trajectory
depends on."""

import json

from repro.bench import (
    run_rescale_cell,
    write_bench_artifact,
)
from repro.cli import main
from repro.faults import FaultEvent, FaultPlan
from repro.rescale import staged_plan


def test_rescale_cell_measures_migration_and_stays_correct():
    report = run_rescale_cell(rps=100.0, duration_ms=2_000.0,
                              record_count=40, seed=21)
    assert report.ok, report.problems
    assert report.rescales == 2
    assert report.final_workers == 3
    assert len(report.pauses_ms) == 2
    assert all(pause > 0 for pause in report.pauses_ms)
    assert report.mean_pause_ms > 0
    assert report.max_pause_ms >= report.mean_pause_ms
    assert report.slots_moved > 0 and report.keys_moved > 0
    # The cluster keeps serving on the new topology.
    assert report.post_throughput_rps > 0
    assert report.row.completed == report.row.sent
    assert report.row.extra["rescales"] == 2

    rerun = run_rescale_cell(rps=100.0, duration_ms=2_000.0,
                             record_count=40, seed=21)
    assert rerun.trace_digest == report.trace_digest


def test_rescale_cell_on_both_state_backends():
    """The rescale smoke the CI job runs: dict and cow backends resize
    loss-free under the same plan and agree on the committed history."""
    digests = {}
    for backend in ("dict", "cow"):
        report = run_rescale_cell(rps=90.0, duration_ms=1_500.0,
                                  record_count=30, seed=33,
                                  state_backend=backend)
        assert report.ok, (backend, report.problems)
        digests[backend] = report.trace_digest
    assert digests["dict"] == digests["cow"]


def test_rescale_cell_under_chaos():
    """A worker crash layered over the resize: invariants hold, and the
    run still reports its migration metrics."""
    fault_plan = FaultPlan(seed=3, events=[
        FaultEvent(kind="crash_worker", at_ms=700.0, worker=1)])
    report = run_rescale_cell(rps=90.0, duration_ms=2_000.0,
                              record_count=30, seed=7,
                              fault_plan=fault_plan)
    assert report.ok, report.problems
    assert report.rescales >= 2


def test_cell_elides_duplicate_targets():
    """A step targeting the current worker count is a no-op: it commits
    no rescale, and the verifier still accepts the final topology
    because the cluster is already there."""
    plan = staged_plan((3, 3), start_ms=500.0, interval_ms=400.0)
    report = run_rescale_cell(rps=80.0, duration_ms=1_500.0,
                              record_count=20, seed=5, plan=plan)
    assert report.ok, report.problems
    assert report.final_workers == 3
    assert report.rescales == 1  # the duplicate target was elided


# ---------------------------------------------------------------------------
# BENCH_<cell>.json persistence
# ---------------------------------------------------------------------------


def test_write_bench_artifact_round_trips(tmp_path):
    path = write_bench_artifact("demo", {"cell": "demo", "rows": [1, 2]},
                                directory=tmp_path)
    assert path == tmp_path / "BENCH_demo.json"
    assert json.loads(path.read_text()) == {"cell": "demo", "rows": [1, 2]}


def test_write_bench_artifact_honours_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "out"))
    path = write_bench_artifact("env", {"cell": "env"})
    assert path == tmp_path / "out" / "BENCH_env.json"
    assert path.exists()


def test_cli_bench_writes_artifact(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_STATE_BACKEND", "dict")
    assert main(["bench", "--duration-ms", "800", "--records", "20",
                 "--rps", "60"]) == 0
    payload = json.loads((tmp_path / "BENCH_ycsb.json").read_text())
    assert payload["cell"] == "ycsb"
    assert payload["rows"][0]["system"] == "stateflow"
    assert "BENCH_ycsb.json" in capsys.readouterr().out


def test_cli_rescale_run_writes_artifact(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    assert main(["rescale", "run", "--duration-ms", "1500",
                 "--records", "20", "--rps", "80", "--seed", "9"]) == 0
    payload = json.loads((tmp_path / "BENCH_rescale.json").read_text())
    assert payload["cell"] == "rescale"
    assert payload["rescales"] == 2
    assert payload["mean_pause_ms"] > 0
    assert payload["problems"] == []
    out = capsys.readouterr().out
    assert "exactly-once across rescales" in out


def test_cli_rescale_plan_and_run_from_file(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    plan_path = tmp_path / "plan.json"
    assert main(["rescale", "plan", "--targets", "4,2",
                 "--start-ms", "400", "--interval-ms", "500",
                 "--out", str(plan_path)]) == 0
    assert main(["rescale", "run", "--plan", str(plan_path),
                 "--duration-ms", "1500", "--records", "20",
                 "--rps", "80"]) == 0
    payload = json.loads((tmp_path / "BENCH_rescale.json").read_text())
    assert payload["final_workers"] == 2
    assert "4 -> 2" in capsys.readouterr().out


def test_cli_chaos_run_writes_artifact(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    main(["chaos", "run", "--seed", "7", "--duration-ms", "1200",
          "--records", "20", "--rps", "80"])
    payload = json.loads((tmp_path / "BENCH_chaos.json").read_text())
    assert payload["cell"] == "chaos"
    assert "trace_digest" in payload


def test_cli_bench_rejects_rescale_on_statefun(tmp_path):
    plan_path = tmp_path / "plan.json"
    staged_plan((2,)).to_json(plan_path)
    import pytest
    with pytest.raises(SystemExit, match="stateflow"):
        main(["bench", "--system", "statefun", "--rescale",
              str(plan_path)])


def test_cli_bench_accepts_rescale_plan(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    plan_path = tmp_path / "plan.json"
    staged_plan((3,), start_ms=300.0).to_json(plan_path)
    assert main(["bench", "--rescale", str(plan_path),
                 "--duration-ms", "800", "--records", "20",
                 "--rps", "60"]) == 0
