"""End-to-end serializability of concurrent transactions on StateFlow.

Property: any concurrent mix of transfers and increments must leave the
system in a state reachable by *some* serial order — for transfers, that
means global conservation plus non-negative balances; for increments,
exact sums.  The chaos variants re-check the same oracles while a fault
plan crashes workers, drops messages and partitions the cluster: the
committed history must still be serializable with zero lost or
duplicated commits."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import chaos_coordinator_config
from repro.faults import random_plan
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.workloads import Account


def _chaos_config(seed: int, *, duration_ms: float = 3_000.0,
                  intensity: str = "medium",
                  coordinator_faults: bool = False) -> StateflowConfig:
    plan = random_plan(seed, duration_ms=duration_ms, workers=5,
                       intensity=intensity,
                       coordinator_faults=coordinator_faults)
    return StateflowConfig(fault_plan=plan,
                           coordinator=chaos_coordinator_config())


transfer_plan = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 30)),
    min_size=1, max_size=30)


@given(transfer_plan)
@settings(max_examples=12, deadline=None)
def test_concurrent_transfers_serializable(account_program, plan):
    runtime = StateflowRuntime(account_program)
    refs = runtime.preload(Account,
                           [(f"acct-{i}", 100) for i in range(6)])
    runtime.start()
    for source, target, amount in plan:
        if source == target:
            target = (target + 1) % 6
        runtime.submit(refs[source], "transfer",
                       (amount, refs[target]))
    runtime.sim.run(until=runtime.sim.now + 60_000)
    balances = [runtime.entity_state(ref)["balance"] for ref in refs]
    assert sum(balances) == 600, balances
    assert all(balance >= 0 for balance in balances), balances


@given(st.lists(st.integers(1, 9), min_size=1, max_size=40))
@settings(max_examples=10, deadline=None)
def test_concurrent_increments_exact(account_program, increments):
    runtime = StateflowRuntime(account_program)
    (ref,) = runtime.preload(Account, [("hot", 0)])
    runtime.start()
    for amount in increments:
        runtime.submit(ref, "add", (amount,))
    runtime.sim.run(until=runtime.sim.now + 60_000)
    assert runtime.entity_state(ref)["balance"] == sum(increments)


# ---------------------------------------------------------------------------
# Chaos variants: the same serial-order oracles under random fault plans
# ---------------------------------------------------------------------------


@given(transfer_plan, st.integers(0, 2**16))
@settings(max_examples=8, deadline=None)
def test_transfers_serializable_under_chaos(account_program, plan,
                                            chaos_seed):
    """YCSB-style transfer histories under a random fault plan must
    still check out: conservation, non-negative balances, and exactly
    one commit per submitted request (no loss, no duplication)."""
    runtime = StateflowRuntime(account_program,
                               config=_chaos_config(chaos_seed))
    refs = runtime.preload(Account,
                           [(f"acct-{i}", 100) for i in range(6)])
    runtime.start()
    replies: list[int] = []
    for index, (source, target, amount) in enumerate(plan):
        if source == target:
            target = (target + 1) % 6
        runtime.sim.schedule_at(
            index * 40.0,
            lambda s=source, t=target, a=amount: runtime.submit(
                refs[s], "transfer", (a, refs[t]),
                on_reply=lambda reply: replies.append(reply.request_id)))
    runtime.sim.run_until(lambda: len(replies) >= len(plan),
                          max_time=120_000)
    # Quiesce before consulting the oracle: the last *reply* can land
    # while another transaction's commit is still stalled on a dropped
    # apply (the watchdog recovers and replays it shortly after), and
    # committed state is only batch-atomic at quiescence.
    runtime.sim.run(until=runtime.sim.now + 30_000)
    balances = [runtime.entity_state(ref)["balance"] for ref in refs]
    assert sum(balances) == 600, balances
    assert all(balance >= 0 for balance in balances), balances
    assert len(replies) == len(plan), "a commit was lost under faults"
    assert len(set(replies)) == len(replies), "a reply was duplicated"


@given(st.lists(st.integers(1, 9), min_size=1, max_size=30),
       st.integers(0, 2**16))
@settings(max_examples=6, deadline=None)
def test_increments_exact_under_chaos(account_program, increments,
                                      chaos_seed):
    """Hot-key increments are lost-update detectors: any dropped or
    double-applied commit shifts the final sum."""
    runtime = StateflowRuntime(
        account_program,
        config=_chaos_config(chaos_seed, intensity="heavy",
                             coordinator_faults=True))
    (ref,) = runtime.preload(Account, [("hot", 0)])
    runtime.start()
    for index, amount in enumerate(increments):
        runtime.sim.schedule_at(
            index * 50.0, lambda a=amount: runtime.submit(ref, "add", (a,)))
    expected = sum(increments)
    runtime.sim.run_until(
        lambda: (runtime.entity_state(ref) or {}).get("balance") == expected,
        max_time=120_000)
    assert runtime.entity_state(ref)["balance"] == expected


def test_tpcc_history_matches_serial_oracle_under_chaos(tpcc_program):
    """A sequential TPC-C history under worker crashes and message
    faults must commit exactly the serial-order (fault-free Local)
    state."""
    from repro.core.refs import EntityRef
    from repro.runtimes import LocalRuntime
    from repro.workloads import order_line_refs, sample_dataset

    def drive(runtime) -> tuple:
        customer = EntityRef("Customer", "wh-0:d-0:c-0")
        district = EntityRef("District", "wh-0:d-0")
        warehouse = EntityRef("Warehouse", "wh-0")
        outcomes = []
        for lines, qties in (([1, 2], [4, 4]), ([3], [2]), ([2, 4], [1, 5])):
            outcomes.append(runtime.call(
                customer, "new_order", district,
                order_line_refs("wh-0", lines), qties))
        outcomes.append(runtime.call(customer, "payment", 99,
                                     warehouse, district))
        return (outcomes, runtime.entity_state(customer),
                runtime.entity_state(district),
                runtime.entity_state(warehouse))

    oracle = LocalRuntime(tpcc_program)
    dataset = sample_dataset()
    for entity_name, rows in dataset.items():
        for args in rows:
            oracle.create(entity_name, *args)
    expected = drive(oracle)

    # Explicit schedule: a sequential history advances virtual time only
    # while calls are in flight, so the faults must land early.
    from repro.faults import FaultEvent, FaultPlan, MessageFaultProfile
    plan = FaultPlan(seed=29, events=[
        FaultEvent(kind="messages", at_ms=0.0, duration_ms=2_000.0,
                   channel="all",
                   profile=MessageFaultProfile(drop_p=0.04, duplicate_p=0.04,
                                               delay_p=0.15, delay_ms=15.0)),
        FaultEvent(kind="crash_worker", at_ms=40.0, worker=1),
        FaultEvent(kind="crash_worker", at_ms=600.0, worker=3),
    ])
    chaotic = StateflowRuntime(tpcc_program, config=StateflowConfig(
        fault_plan=plan, coordinator=chaos_coordinator_config()))
    for entity_name, rows in sample_dataset().items():
        chaotic.preload(entity_name, rows)
    chaotic.start()
    actual = drive(chaotic)
    assert actual == expected
    assert chaotic.faults is not None
    assert chaotic.faults.stats.worker_crashes >= 1, (
        "the plan should actually have crashed a worker")


def test_interleaved_transfer_and_reads_consistent(account_program):
    """Reads must never observe money in flight (atomic visibility)."""
    runtime = StateflowRuntime(account_program)
    a, b = runtime.preload(Account, [("a", 100), ("b", 100)])
    runtime.start()
    observed = []

    def watch(reply):
        observed.append(reply.payload)

    for index in range(30):
        runtime.submit(a, "transfer", (10, b))
        runtime.submit(a, "read", (), on_reply=watch)
        runtime.submit(b, "read", (), on_reply=watch)
    runtime.sim.run(until=runtime.sim.now + 60_000)
    # Final state: `a` drained to 0 after 10 successful transfers.
    assert runtime.entity_state(a)["balance"] == 0
    assert runtime.entity_state(b)["balance"] == 200
    assert all(balance >= 0 for balance in observed)
