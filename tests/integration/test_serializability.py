"""End-to-end serializability of concurrent transactions on StateFlow.

Property: any concurrent mix of transfers and increments must leave the
system in a state reachable by *some* serial order — for transfers, that
means global conservation plus non-negative balances; for increments,
exact sums."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtimes.stateflow import StateflowRuntime
from repro.workloads import Account


transfer_plan = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 30)),
    min_size=1, max_size=30)


@given(transfer_plan)
@settings(max_examples=12, deadline=None)
def test_concurrent_transfers_serializable(account_program, plan):
    runtime = StateflowRuntime(account_program)
    refs = runtime.preload(Account,
                           [(f"acct-{i}", 100) for i in range(6)])
    runtime.start()
    for source, target, amount in plan:
        if source == target:
            target = (target + 1) % 6
        runtime.submit(refs[source], "transfer",
                       (amount, refs[target]))
    runtime.sim.run(until=runtime.sim.now + 60_000)
    balances = [runtime.entity_state(ref)["balance"] for ref in refs]
    assert sum(balances) == 600, balances
    assert all(balance >= 0 for balance in balances), balances


@given(st.lists(st.integers(1, 9), min_size=1, max_size=40))
@settings(max_examples=10, deadline=None)
def test_concurrent_increments_exact(account_program, increments):
    runtime = StateflowRuntime(account_program)
    (ref,) = runtime.preload(Account, [("hot", 0)])
    runtime.start()
    for amount in increments:
        runtime.submit(ref, "add", (amount,))
    runtime.sim.run(until=runtime.sim.now + 60_000)
    assert runtime.entity_state(ref)["balance"] == sum(increments)


def test_interleaved_transfer_and_reads_consistent(account_program):
    """Reads must never observe money in flight (atomic visibility)."""
    runtime = StateflowRuntime(account_program)
    a, b = runtime.preload(Account, [("a", 100), ("b", 100)])
    runtime.start()
    observed = []

    def watch(reply):
        observed.append(reply.payload)

    for index in range(30):
        runtime.submit(a, "transfer", (10, b))
        runtime.submit(a, "read", (), on_reply=watch)
        runtime.submit(b, "read", (), on_reply=watch)
    runtime.sim.run(until=runtime.sim.now + 60_000)
    # Final state: `a` drained to 0 after 10 successful transfers.
    assert runtime.entity_state(a)["balance"] == 0
    assert runtime.entity_state(b)["balance"] == 200
    assert all(balance >= 0 for balance in observed)
