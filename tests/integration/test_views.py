"""End-to-end incremental materialized views on StateFlow.

The invariant under test everywhere: after *every* committed batch, each
registered view is byte-equal to the full-scan oracle over the committed
store (``ViewManager.expected``), including under chaos fault plans,
mid-run rescales, and coordinator crash/recovery — where views must
rewind with the store and never reflect an abandoned pipeline batch.
A per-batch probe hooks the maintenance path so the equality is checked
at commit granularity, not just at quiesce.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import chaos_coordinator_config
from repro.faults import random_plan
from repro.query import QueryEngine, QueryError, ViewSpec
from repro.views import ViewError
from repro.rescale import staged_plan
from repro.runtimes import LocalRuntime
from repro.runtimes.stateflow import (
    CoordinatorConfig,
    StateflowConfig,
    StateflowRuntime,
)
from repro.workloads import Account

ACCOUNTS = 6
SEED_BALANCE = 100
TOTAL = ACCOUNTS * SEED_BALANCE


def _rich(row):
    return row["balance"] >= SEED_BALANCE


def _bucket(row):
    # balance // 50 moves keys *between* groups as transfers land,
    # stressing group retraction, not just in-place updates.
    return row["balance"] // 50


def standard_views(runtime) -> QueryEngine:
    """Register one view per kind: filtered count, global sum, grouped
    avg (with group migration), bounded top-k."""
    engine = QueryEngine(runtime)
    engine.register_view(ViewSpec("rich-count", "Account", "count",
                                  where=_rich))
    engine.register_view(ViewSpec("total", "Account", "sum",
                                  field="balance"))
    engine.register_view(ViewSpec("avg-by-bucket", "Account", "avg",
                                  field="balance", group_by=_bucket))
    engine.register_view(ViewSpec("top3", "Account", "top_k",
                                  field="balance", k=3))
    return engine


def attach_probe(runtime) -> list:
    """After every commit, compare every view to the full-scan oracle;
    collected mismatches fail the test with batch provenance."""
    failures: list = []

    def probe(batch_id: int) -> None:
        for name in runtime.views.names():
            got = runtime.views.read(name).value
            want = runtime.views.expected(name)
            if got != want:
                failures.append((batch_id, name, got, want))

    runtime.views.probe = probe
    return failures


def submit_transfers(runtime, refs, plan, *, spacing_ms=40.0):
    for index, (source, target, amount) in enumerate(plan):
        if source == target:
            target = (target + 1) % len(refs)
        runtime.sim.schedule_at(
            index * spacing_ms,
            lambda s=source, t=target, a=amount: runtime.submit(
                refs[s], "transfer", (a, refs[t])))


def assert_views_match_oracle(runtime):
    for name in runtime.views.names():
        assert runtime.views.read(name).value == \
            runtime.views.expected(name), name


transfer_plan = st.lists(
    st.tuples(st.integers(0, ACCOUNTS - 1), st.integers(0, ACCOUNTS - 1),
              st.integers(1, 30)),
    min_size=1, max_size=25)


class TestEveryBatchEquality:
    @pytest.mark.parametrize("state_backend", ["dict", "cow"])
    @pytest.mark.parametrize("snapshot_mode", ["full", "incremental"])
    def test_views_track_every_batch(self, account_program, state_backend,
                                     snapshot_mode):
        """Deterministic transfer mix: every view equals the oracle at
        every commit, on both state backends and both snapshot modes
        (views and the changelog share the commit-path observation)."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            state_backend=state_backend, snapshot_mode=snapshot_mode))
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        failures = attach_probe(runtime)
        plan = [(i % ACCOUNTS, (i * 3 + 1) % ACCOUNTS, 5 + i % 17)
                for i in range(30)]
        submit_transfers(runtime, refs, plan)
        runtime.sim.run(until=60_000)
        assert failures == []
        assert runtime.views.commits_applied > 0
        assert_views_match_oracle(runtime)
        assert engine.view("total").value == TOTAL

    def test_freshness_metadata(self, account_program):
        runtime = StateflowRuntime(account_program)
        refs = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        engine = standard_views(runtime)
        runtime.call(refs[0], "transfer", 30, refs[1])
        snap = engine.view("total")
        assert snap.lag_batches == 0, (
            "the synchronous commit hook must keep views fully fresh")
        assert snap.last_applied_batch == runtime.coordinator._last_closed
        assert snap.as_of_ms is not None

    def test_register_mid_run_hydrates_current_state(self, account_program):
        runtime = StateflowRuntime(account_program)
        refs = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        runtime.call(refs[0], "transfer", 30, refs[1])
        engine = QueryEngine(runtime)
        snap = engine.register_view(
            ViewSpec("total", "Account", "sum", field="balance"))
        assert snap.value == 200
        assert snap.last_applied_batch == runtime.coordinator._last_closed
        runtime.call(refs[1], "deposit", 50)
        assert engine.view("total").value == 250
        engine.unregister_view("total")
        with pytest.raises(ViewError):
            engine.view("total")

    def test_view_api_requires_stateflow(self, account_program):
        engine = QueryEngine(LocalRuntime(account_program))
        spec = ViewSpec("v", "Account", "count")
        with pytest.raises(QueryError, match="StateFlow"):
            engine.register_view(spec)
        with pytest.raises(QueryError, match="StateFlow"):
            engine.view("v")
        with pytest.raises(QueryError, match="StateFlow"):
            engine.subscribe_view("v", print)


class TestSubscriptions:
    def test_updates_ride_the_network_substrate(self, account_program):
        """Pushes are delivered as messages through the network, not
        inline on the commit path — and still arrive in batch order
        with the values the view held at publish time."""
        runtime = StateflowRuntime(account_program)
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        updates: list = []
        engine.subscribe_view("top3", updates.append)
        plan = [(i % ACCOUNTS, (i + 1) % ACCOUNTS, 10) for i in range(12)]
        submit_transfers(runtime, refs, plan)
        runtime.sim.run(until=60_000)
        assert updates, "transfer load must push at least one update"
        batch_ids = [u.batch_id for u in updates]
        assert batch_ids == sorted(batch_ids)
        final = updates[-1]
        assert final.value == engine.view("top3").value
        assert all(u.view == "top3" for u in updates)


class TestChaos:
    @given(transfer_plan, st.integers(0, 2**20))
    @settings(max_examples=6, deadline=None)
    def test_views_exact_under_chaos(self, account_program, plan, seed):
        """Worker crashes, dropped messages and partitions: the per-
        batch equality probe must never trip, and the sum view must
        show exact conservation at quiesce (the serial oracle)."""
        fault_plan = random_plan(seed, duration_ms=3_000.0, workers=5,
                                 intensity="medium")
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            fault_plan=fault_plan,
            coordinator=chaos_coordinator_config()))
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        failures = attach_probe(runtime)
        submit_transfers(runtime, refs, plan)
        runtime.sim.run(until=60_000)
        assert failures == []
        assert_views_match_oracle(runtime)
        assert engine.view("total").value == TOTAL


class TestCrashRecovery:
    @pytest.mark.parametrize("state_backend", ["dict", "cow"])
    @pytest.mark.parametrize("snapshot_mode", ["full", "incremental"])
    def test_views_rewind_with_the_store(self, account_program,
                                         state_backend, snapshot_mode):
        """Coordinator fail-stop mid-load: recovery rewinds the
        committed store to a snapshot and abandons the pipeline, so the
        views must rewind too (rehydration), then track the replayed
        batches back to an exact final state."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            state_backend=state_backend, snapshot_mode=snapshot_mode,
            coordinator=CoordinatorConfig(snapshot_interval_ms=150.0,
                                          failure_detect_ms=200.0)))
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        failures = attach_probe(runtime)
        plan = [(i % ACCOUNTS, (i * 3 + 1) % ACCOUNTS, 5 + i % 11)
                for i in range(25)]
        submit_transfers(runtime, refs, plan)
        runtime.fail_coordinator(at_ms=430.0, failover_after_ms=80.0)
        runtime.sim.run(until=60_000)
        assert runtime.views.rehydrations >= len(runtime.views.names()), (
            "recovery must rebuild every view from the restored store")
        assert failures == []
        assert_views_match_oracle(runtime)
        assert engine.view("total").value == TOTAL
        snap = engine.view("total")
        assert snap.last_applied_batch == runtime.coordinator._last_closed

    def test_rewound_views_forget_abandoned_batches(self, account_program):
        """Crash with commits past the last snapshot: immediately after
        the restore (before any replay lands) the views must equal the
        rewound store — not the pre-crash state."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            coordinator=CoordinatorConfig(snapshot_interval_ms=10_000.0,
                                          failure_detect_ms=200.0)))
        refs = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        engine = standard_views(runtime)
        runtime.call(refs[0], "transfer", 30, refs[1])
        assert engine.view("top3").value[0]["__key__"] == "b"
        runtime.coordinator.crash()
        runtime.coordinator.recover()  # rewinds to the t=0 snapshot
        assert_views_match_oracle(runtime)
        assert [row["balance"] for row in engine.view("top3").value] \
            == [100, 100], "views must not reflect the abandoned commit"


class TestRescale:
    @pytest.mark.parametrize("state_backend", ["dict", "cow"])
    def test_views_exact_across_rescale(self, account_program,
                                        state_backend):
        """The canonical 2 -> 4 -> 3 resize under transfer load: slot
        ownership moves between workers but the committed contents do
        not, so views need no rescale hook — the per-batch probe proves
        they stay exact through both barriers."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            workers=2, state_backend=state_backend,
            rescale_plan=staged_plan((4, 3), start_ms=300.0,
                                     interval_ms=400.0),
            coordinator=chaos_coordinator_config()))
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        failures = attach_probe(runtime)
        plan = [(i % ACCOUNTS, (i * 5 + 2) % ACCOUNTS, 3 + i % 13)
                for i in range(30)]
        submit_transfers(runtime, refs, plan)
        runtime.sim.run(until=60_000)
        assert runtime.coordinator.rescales == 2
        assert runtime.worker_count == 3
        assert failures == []
        assert_views_match_oracle(runtime)
        assert engine.view("total").value == TOTAL


@pytest.mark.slow
class TestProcessSubstrate:
    def test_views_on_real_processes(self, account_program):
        """The manager hangs off the parent-side committed mirror, so
        views (and push subscriptions) work unchanged when workers are
        real processes — nothing touches the Aria commit path."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            spawner="process", workers=3, exec_service_ms=0.0,
            state_op_ms=0.0,
            coordinator=CoordinatorConfig(
                conflict_check_ms_per_txn=0.0, dispatch_ms_per_txn=0.0,
                failure_detect_ms=2_000.0, snapshot_interval_ms=500.0)))
        try:
            refs = runtime.preload(
                Account,
                [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
            runtime.start()
            engine = standard_views(runtime)
            updates: list = []
            engine.subscribe_view("total", updates.append)
            for i in range(10):
                runtime.call(refs[i % ACCOUNTS], "transfer", 7,
                             refs[(i + 1) % ACCOUNTS])
            assert_views_match_oracle(runtime)
            assert engine.view("total").value == TOTAL
            assert updates and updates[-1].value == TOTAL
        finally:
            runtime.close()
