"""End-to-end incremental materialized views on StateFlow.

The invariant under test everywhere: after *every* committed batch, each
registered view is byte-equal to the full-scan oracle over the committed
store (``ViewManager.expected``), including under chaos fault plans,
mid-run rescales, and coordinator crash/recovery — where views must
rewind with the store and never reflect an abandoned pipeline batch.
A per-batch probe hooks the maintenance path so the equality is checked
at commit granularity, not just at quiesce.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_program, entity
from repro.bench import chaos_coordinator_config
from repro.faults import random_plan
from repro.query import QueryEngine, QueryError, ViewSpec
from repro.views import ViewError
from repro.rescale import staged_plan
from repro.runtimes import LocalRuntime
from repro.runtimes.stateflow import (
    CoordinatorConfig,
    StateflowConfig,
    StateflowRuntime,
)
from repro.workloads import Account

ACCOUNTS = 6
SEED_BALANCE = 100
TOTAL = ACCOUNTS * SEED_BALANCE


def _rich(row):
    return row["balance"] >= SEED_BALANCE


def _bucket(row):
    # balance // 50 moves keys *between* groups as transfers land,
    # stressing group retraction, not just in-place updates.
    return row["balance"] // 50


def standard_views(runtime) -> QueryEngine:
    """Register one view per kind: filtered count, global sum, grouped
    avg (with group migration), min/max extremes (with extremum
    retraction as transfers land), bounded top-k."""
    engine = QueryEngine(runtime)
    engine.register_view(ViewSpec("rich-count", "Account", "count",
                                  where=_rich))
    engine.register_view(ViewSpec("total", "Account", "sum",
                                  field="balance"))
    engine.register_view(ViewSpec("avg-by-bucket", "Account", "avg",
                                  field="balance", group_by=_bucket))
    engine.register_view(ViewSpec("poorest", "Account", "min",
                                  field="balance"))
    engine.register_view(ViewSpec("richest-by-bucket", "Account", "max",
                                  field="balance", group_by=_bucket))
    engine.register_view(ViewSpec("top3", "Account", "top_k",
                                  field="balance", k=3))
    return engine


def attach_probe(runtime) -> list:
    """After every commit, compare every view to the full-scan oracle;
    collected mismatches fail the test with batch provenance."""
    failures: list = []

    def probe(batch_id: int) -> None:
        for name in runtime.views.names():
            got = runtime.views.read(name).value
            want = runtime.views.expected(name)
            if got != want:
                failures.append((batch_id, name, got, want))

    runtime.views.probe = probe
    return failures


def submit_transfers(runtime, refs, plan, *, spacing_ms=40.0):
    for index, (source, target, amount) in enumerate(plan):
        if source == target:
            target = (target + 1) % len(refs)
        runtime.sim.schedule_at(
            index * spacing_ms,
            lambda s=source, t=target, a=amount: runtime.submit(
                refs[s], "transfer", (a, refs[t])))


def assert_views_match_oracle(runtime):
    for name in runtime.views.names():
        assert runtime.views.read(name).value == \
            runtime.views.expected(name), name


transfer_plan = st.lists(
    st.tuples(st.integers(0, ACCOUNTS - 1), st.integers(0, ACCOUNTS - 1),
              st.integers(1, 30)),
    min_size=1, max_size=25)


class TestEveryBatchEquality:
    @pytest.mark.parametrize("state_backend", ["dict", "cow"])
    @pytest.mark.parametrize("snapshot_mode", ["full", "incremental"])
    def test_views_track_every_batch(self, account_program, state_backend,
                                     snapshot_mode):
        """Deterministic transfer mix: every view equals the oracle at
        every commit, on both state backends and both snapshot modes
        (views and the changelog share the commit-path observation)."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            state_backend=state_backend, snapshot_mode=snapshot_mode))
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        failures = attach_probe(runtime)
        plan = [(i % ACCOUNTS, (i * 3 + 1) % ACCOUNTS, 5 + i % 17)
                for i in range(30)]
        submit_transfers(runtime, refs, plan)
        runtime.sim.run(until=60_000)
        assert failures == []
        assert runtime.views.commits_applied > 0
        assert_views_match_oracle(runtime)
        assert engine.view("total").value == TOTAL

    def test_freshness_metadata(self, account_program):
        runtime = StateflowRuntime(account_program)
        refs = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        engine = standard_views(runtime)
        runtime.call(refs[0], "transfer", 30, refs[1])
        snap = engine.view("total")
        assert snap.lag_batches == 0, (
            "the synchronous commit hook must keep views fully fresh")
        assert snap.last_applied_batch == runtime.coordinator._last_closed
        assert snap.as_of_ms is not None

    def test_register_mid_run_hydrates_current_state(self, account_program):
        runtime = StateflowRuntime(account_program)
        refs = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        runtime.call(refs[0], "transfer", 30, refs[1])
        engine = QueryEngine(runtime)
        snap = engine.register_view(
            ViewSpec("total", "Account", "sum", field="balance"))
        assert snap.value == 200
        assert snap.last_applied_batch == runtime.coordinator._last_closed
        runtime.call(refs[1], "deposit", 50)
        assert engine.view("total").value == 250
        engine.unregister_view("total")
        with pytest.raises(ViewError):
            engine.view("total")

    def test_view_api_requires_stateflow(self, account_program):
        engine = QueryEngine(LocalRuntime(account_program))
        spec = ViewSpec("v", "Account", "count")
        with pytest.raises(QueryError, match="StateFlow"):
            engine.register_view(spec)
        with pytest.raises(QueryError, match="StateFlow"):
            engine.view("v")
        with pytest.raises(QueryError, match="StateFlow"):
            engine.subscribe_view("v", print)


class TestSubscriptions:
    def test_updates_ride_the_network_substrate(self, account_program):
        """Pushes are delivered as messages through the network, not
        inline on the commit path — and still arrive in batch order
        with the values the view held at publish time."""
        runtime = StateflowRuntime(account_program)
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        updates: list = []
        engine.subscribe_view("top3", updates.append)
        plan = [(i % ACCOUNTS, (i + 1) % ACCOUNTS, 10) for i in range(12)]
        submit_transfers(runtime, refs, plan)
        runtime.sim.run(until=60_000)
        assert updates, "transfer load must push at least one update"
        batch_ids = [u.batch_id for u in updates]
        assert batch_ids == sorted(batch_ids)
        final = updates[-1]
        assert final.value == engine.view("top3").value
        assert all(u.view == "top3" for u in updates)


class TestChaos:
    @given(transfer_plan, st.integers(0, 2**20))
    @settings(max_examples=6, deadline=None)
    def test_views_exact_under_chaos(self, account_program, plan, seed):
        """Worker crashes, dropped messages and partitions: the per-
        batch equality probe must never trip, and the sum view must
        show exact conservation at quiesce (the serial oracle)."""
        fault_plan = random_plan(seed, duration_ms=3_000.0, workers=5,
                                 intensity="medium")
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            fault_plan=fault_plan,
            coordinator=chaos_coordinator_config()))
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        failures = attach_probe(runtime)
        submit_transfers(runtime, refs, plan)
        runtime.sim.run(until=60_000)
        assert failures == []
        assert_views_match_oracle(runtime)
        assert engine.view("total").value == TOTAL


class TestCrashRecovery:
    @pytest.mark.parametrize("state_backend", ["dict", "cow"])
    @pytest.mark.parametrize("snapshot_mode", ["full", "incremental"])
    def test_views_rewind_with_the_store(self, account_program,
                                         state_backend, snapshot_mode):
        """Coordinator fail-stop mid-load: recovery rewinds the
        committed store to a snapshot and abandons the pipeline, so the
        views must rewind too — resuming from the cut's durable sidecar
        (zero store scans), then tracking the replayed batches back to
        an exact final state."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            state_backend=state_backend, snapshot_mode=snapshot_mode,
            coordinator=CoordinatorConfig(snapshot_interval_ms=150.0,
                                          failure_detect_ms=200.0)))
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        failures = attach_probe(runtime)
        plan = [(i % ACCOUNTS, (i * 3 + 1) % ACCOUNTS, 5 + i % 11)
                for i in range(25)]
        submit_transfers(runtime, refs, plan)
        runtime.fail_coordinator(at_ms=430.0, failover_after_ms=80.0)
        runtime.sim.run(until=60_000)
        assert runtime.views.sidecar_restores >= \
            len(runtime.views._compiler.plans), (
                "recovery must resume every plan from the cut's sidecar")
        assert runtime.views.rehydrations == 0, (
            "a sidecar-covered recovery must not rescan the store")
        assert failures == []
        assert_views_match_oracle(runtime)
        assert engine.view("total").value == TOTAL
        snap = engine.view("total")
        assert snap.last_applied_batch == runtime.coordinator._last_closed

    def test_rewound_views_forget_abandoned_batches(self, account_program):
        """Crash with commits past the last snapshot: immediately after
        the restore (before any replay lands) the views must equal the
        rewound store — not the pre-crash state."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            coordinator=CoordinatorConfig(snapshot_interval_ms=10_000.0,
                                          failure_detect_ms=200.0)))
        refs = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        engine = standard_views(runtime)
        runtime.call(refs[0], "transfer", 30, refs[1])
        assert engine.view("top3").value[0]["__key__"] == "b"
        runtime.coordinator.crash()
        runtime.coordinator.recover()  # rewinds to the t=0 snapshot
        assert_views_match_oracle(runtime)
        assert [row["balance"] for row in engine.view("top3").value] \
            == [100, 100], "views must not reflect the abandoned commit"


class TestRescale:
    @pytest.mark.parametrize("state_backend", ["dict", "cow"])
    def test_views_exact_across_rescale(self, account_program,
                                        state_backend):
        """The canonical 2 -> 4 -> 3 resize under transfer load: slot
        ownership moves between workers but the committed contents do
        not, so views need no rescale hook — the per-batch probe proves
        they stay exact through both barriers."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            workers=2, state_backend=state_backend,
            rescale_plan=staged_plan((4, 3), start_ms=300.0,
                                     interval_ms=400.0),
            coordinator=chaos_coordinator_config()))
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = standard_views(runtime)
        failures = attach_probe(runtime)
        plan = [(i % ACCOUNTS, (i * 5 + 2) % ACCOUNTS, 3 + i % 13)
                for i in range(30)]
        submit_transfers(runtime, refs, plan)
        runtime.sim.run(until=60_000)
        assert runtime.coordinator.rescales == 2
        assert runtime.worker_count == 3
        assert failures == []
        assert_views_match_oracle(runtime)
        assert engine.view("total").value == TOTAL


# ---------------------------------------------------------------------------
# FK delta-joins end-to-end: two entity types in one program, a stored
# foreign key, and views spanning both.
# ---------------------------------------------------------------------------


@entity
class JCustomer:
    def __init__(self, cid: str, tier: int):
        self.cid: str = cid
        self.tier: int = tier

    def __key__(self):
        return self.cid

    def set_tier(self, tier: int) -> int:
        self.tier = tier
        return self.tier


@entity
class JOrder:
    def __init__(self, oid: str, customer_id: str, amount: int):
        self.oid: str = oid
        self.customer_id: str = customer_id
        self.amount: int = amount

    def __key__(self):
        return self.oid

    def set_amount(self, amount: int) -> int:
        self.amount = amount
        return self.amount

    def reassign(self, customer_id: str) -> str:
        self.customer_id = customer_id
        return self.customer_id


@pytest.fixture(scope="module")
def join_program():
    return compile_program([JCustomer, JOrder])


def join_views(runtime) -> QueryEngine:
    engine = QueryEngine(runtime)
    engine.register_view(ViewSpec(
        "sum-by-tier", "JOrder", "sum", field="amount",
        group_by="JCustomer__tier",
        join_entity="JCustomer", join_on="customer_id"))
    engine.register_view(ViewSpec(
        "joined-count", "JOrder", "count",
        join_entity="JCustomer", join_on="customer_id"))
    return engine


class TestJoinViews:
    def test_join_views_track_every_commit(self, join_program):
        """Amount edits (left-side deltas), tier changes (right-side
        fan-out) and FK reassignments (re-link) all ride the commit
        path; the probe holds the two-entity scan oracle at every
        batch."""
        runtime = StateflowRuntime(join_program)
        customers = runtime.preload(JCustomer, [("c0", 1), ("c1", 2)])
        orders = runtime.preload(
            JOrder, [(f"o{i}", f"c{i % 2}", 10 + i) for i in range(6)])
        runtime.start()
        engine = join_views(runtime)
        failures = attach_probe(runtime)
        runtime.call(orders[0], "set_amount", 100)
        runtime.call(customers[0], "set_tier", 5)     # fans out to o0/o2/o4
        runtime.call(orders[1], "reassign", "c0")     # FK move c1 -> c0
        runtime.call(orders[3], "set_amount", 1)
        runtime.call(customers[1], "set_tier", 2)
        assert failures == []
        assert_views_match_oracle(runtime)
        value = engine.view("sum-by-tier").value
        # c0 (tier 5) holds o0=100, o2=12, o4=14 and the moved o1=11;
        # c1 (tier 2) keeps o3 (now 1) and o5=15.
        assert value == {5: 100 + 12 + 14 + 11, 2: 1 + 15}
        assert engine.view("joined-count").value == 6

    def test_join_views_rewind_with_the_store(self, join_program):
        """Coordinator crash between commits: both memo sides restore
        from the sidecar and the replay converges to the oracle."""
        runtime = StateflowRuntime(join_program, config=StateflowConfig(
            coordinator=CoordinatorConfig(snapshot_interval_ms=150.0,
                                          failure_detect_ms=200.0)))
        customers = runtime.preload(JCustomer, [("c0", 1), ("c1", 2)])
        orders = runtime.preload(
            JOrder, [(f"o{i}", f"c{i % 2}", 10 + i) for i in range(4)])
        runtime.start()
        engine = join_views(runtime)
        failures = attach_probe(runtime)
        moves = [(orders[0], "set_amount", (50,)),
                 (customers[0], "set_tier", (9,)),
                 (orders[1], "reassign", ("c0",)),
                 (orders[2], "set_amount", (7,)),
                 (customers[1], "set_tier", (4,)),
                 (orders[3], "reassign", ("c1",))]
        for index, (ref, method, arguments) in enumerate(moves):
            runtime.sim.schedule_at(
                index * 80.0,
                lambda r=ref, m=method, a=arguments: runtime.submit(r, m, a))
        runtime.fail_coordinator(at_ms=330.0, failover_after_ms=80.0)
        runtime.sim.run(until=60_000)
        assert runtime.views.rehydrations == 0
        assert runtime.views.sidecar_restores >= \
            len(runtime.views._compiler.plans)
        assert failures == []
        assert_views_match_oracle(runtime)
        assert engine.view("joined-count").value == 4


# ---------------------------------------------------------------------------
# Windowed aggregates end-to-end.  There is no full-scan oracle for a
# windowed view (rows carry no timestamps), so the battery pins the
# conservation invariant instead: a windowed *sum* partitions the very
# total the un-windowed sum view maintains, at every single commit.
# ---------------------------------------------------------------------------

WINDOW_MS = 250.0


def windowed_views(runtime) -> QueryEngine:
    engine = QueryEngine(runtime)
    engine.register_view(ViewSpec("total", "Account", "sum",
                                  field="balance"))
    engine.register_view(ViewSpec("sum-by-window", "Account", "sum",
                                  field="balance", window_ms=WINDOW_MS))
    return engine


def attach_conservation_probe(runtime) -> list:
    failures: list = []

    def probe(batch_id: int) -> None:
        windows = runtime.views.read("sum-by-window").value
        want = runtime.views.expected("total")
        if sum(windows.values()) != want:
            failures.append((batch_id, windows, want))

    runtime.views.probe = probe
    return failures


class TestWindowedViews:
    def test_windowed_sum_partitions_the_total(self, account_program):
        runtime = StateflowRuntime(account_program)
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = windowed_views(runtime)
        failures = attach_conservation_probe(runtime)
        plan = [(i % ACCOUNTS, (i * 3 + 1) % ACCOUNTS, 5 + i % 17)
                for i in range(30)]
        submit_transfers(runtime, refs, plan, spacing_ms=60.0)
        runtime.sim.run(until=60_000)
        assert failures == []
        windows = engine.view("sum-by-window").value
        assert len(windows) > 1, "the load must span multiple windows"
        assert sum(windows.values()) == TOTAL
        assert all(start % WINDOW_MS == 0 for start in windows)

    def test_windowed_views_survive_crash_recovery(self, account_program):
        """The one view kind that *cannot* be rebuilt by scanning: the
        commit-time window assignment lives only in operator state.
        Recovery must carry it through the sidecar and keep the
        conservation invariant across the rewind and replay."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            coordinator=CoordinatorConfig(snapshot_interval_ms=150.0,
                                          failure_detect_ms=200.0)))
        refs = runtime.preload(
            Account, [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
        runtime.start()
        engine = windowed_views(runtime)
        failures = attach_conservation_probe(runtime)
        # Touch accounts 2..5 only before the first cut, then churn
        # 0<->1 through the crash: the early keys must keep their old
        # windows through recovery while the late keys land in new
        # ones — a scan could never tell those apart.
        plan = [(2, 3, 5), (4, 5, 7), (3, 4, 6), (5, 2, 9)] + \
            [(0, 1, 5 + i % 11) for i in range(21)]
        submit_transfers(runtime, refs, plan)
        runtime.fail_coordinator(at_ms=430.0, failover_after_ms=80.0)
        runtime.sim.run(until=60_000)
        assert runtime.views.rehydrations == 0, (
            "windowed state must ride the sidecar, never a rescan")
        assert runtime.views.sidecar_restores >= \
            len(runtime.views._compiler.plans)
        assert failures == []
        windows = engine.view("sum-by-window").value
        assert len(windows) > 1
        assert sum(windows.values()) == TOTAL
        with pytest.raises(ViewError):
            runtime.views.expected("sum-by-window")


@pytest.mark.slow
class TestProcessSubstrate:
    def test_views_on_real_processes(self, account_program):
        """The manager hangs off the parent-side committed mirror, so
        views (and push subscriptions) work unchanged when workers are
        real processes — nothing touches the Aria commit path."""
        runtime = StateflowRuntime(account_program, config=StateflowConfig(
            spawner="process", workers=3, exec_service_ms=0.0,
            state_op_ms=0.0,
            coordinator=CoordinatorConfig(
                conflict_check_ms_per_txn=0.0, dispatch_ms_per_txn=0.0,
                failure_detect_ms=2_000.0, snapshot_interval_ms=500.0)))
        try:
            refs = runtime.preload(
                Account,
                [(f"acct-{i}", SEED_BALANCE) for i in range(ACCOUNTS)])
            runtime.start()
            engine = standard_views(runtime)
            updates: list = []
            engine.subscribe_view("total", updates.append)
            for i in range(10):
                runtime.call(refs[i % ACCOUNTS], "transfer", 7,
                             refs[(i + 1) % ACCOUNTS])
            assert_views_match_oracle(runtime)
            assert engine.view("total").value == TOTAL
            assert updates and updates[-1].value == TOTAL
        finally:
            runtime.close()
