"""The race the paper warns about (Section 3, Flink StateFun):

"when an event reenters a dataflow to reach the next function block of a
split function, race conditions attributed to events coming from
non-split functions could lead to state inconsistencies due to other
events changing the same function's state in the meantime."

We construct that interleaving deterministically: a split read-modify-
write suspended at a remote call races a direct write to the same key.
Statefun (no locking, no transactions) loses an update; StateFlow's
transactions serialize the same schedule correctly.
"""

import pytest

from repro import compile_program, entity


@entity
class Probe:
    """Remote entity whose only job is to force a suspension."""

    def __init__(self, pid: str):
        self.pid: str = pid
        self.touches: int = 0

    def __key__(self):
        return self.pid

    def touch(self) -> int:
        self.touches += 1
        return self.touches


@entity
class Register:
    def __init__(self, rid: str):
        self.rid: str = rid
        self.value: int = 0

    def __key__(self):
        return self.rid

    def direct_add(self, amount: int) -> int:
        self.value += amount
        return self.value

    def slow_add(self, amount: int, probe: Probe) -> int:
        """Read-modify-write with a remote call in the middle: the read
        happens before the suspension, the write after resumption."""
        snapshot: int = self.value
        probe.touch()
        self.value = snapshot + amount
        return self.value


@pytest.fixture(scope="module")
def race_program():
    return compile_program([Probe, Register])


def _drive_race(runtime_cls, program, **runtime_kwargs):
    runtime = runtime_cls(program, **runtime_kwargs)
    register = runtime.create("Register", "r")
    probe = runtime.create("Probe", "p")
    # Submit the suspended RMW first; the direct add follows 30 ms later
    # so it lands squarely inside slow_add's suspension window (the
    # Kafka-loopback round trip to Probe takes ~70 ms on Statefun).
    done = []
    runtime.submit(register, "slow_add", (10, probe),
                   on_reply=lambda reply: done.append(("slow", reply)))
    runtime.sim.schedule(30.0, lambda: runtime.submit(
        register, "direct_add", (1,),
        on_reply=lambda reply: done.append(("direct", reply))))
    runtime.sim.run_until(lambda: len(done) == 2, max_time=60_000)
    return runtime.entity_state(register)["value"]


def test_statefun_loses_update(race_program):
    from repro.runtimes.statefun import StatefunRuntime

    final = _drive_race(StatefunRuntime, race_program)
    # Serializable outcomes are 11 only; Statefun overwrites the direct
    # add with the stale snapshot + 10.
    assert final == 10, (
        "expected the documented lost update; if this fails the race "
        "interleaving assumptions changed")


def test_stateflow_serializes_same_schedule(race_program):
    from repro.runtimes.stateflow import StateflowRuntime

    final = _drive_race(StateflowRuntime, race_program)
    assert final == 11
