"""Closed-loop autoscaler battery.

Three layers, mirroring the control stack:

- pure policy: hysteresis, cooldown and busy suppression judged on
  synthetic :class:`WindowSample` sequences (no runtime at all);
- the sampler: cumulative ``AriaStats``-shaped counters differenced
  into per-window rates and hot-locus shares;
- end to end: a saturating zipfian run on the virtual-time simulator
  must scale up autonomously, reproduce its decision sequence byte for
  byte across identical replays (hypothesis), and keep doing both while
  a chaos plan kills the coordinator mid-run.
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import chaos_coordinator_config, run_chaos_cell
from repro.control import (
    AutoscaleController,
    AutoscalePolicy,
    MetricsSampler,
    WindowSample,
)
from repro.faults import FaultEvent, FaultPlan, MessageFaultProfile
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload


def window(at_ms: float, *, workers: int = 2, rate: float = 0.0,
           queue: int = 0, committed: int | None = None,
           slot_shares=(), key_shares=()) -> WindowSample:
    committed = int(rate / 10) if committed is None else committed
    return WindowSample(
        at_ms=at_ms, window_ms=100.0, workers=workers,
        committed=committed, txn_rate_s=rate,
        per_worker_rate_s=rate / workers, queue_depth=queue,
        batch_latency_ms=1.0, slot_shares=tuple(slot_shares),
        key_shares=tuple(key_shares))


class TestPolicy:
    def test_scale_up_needs_consecutive_saturated_windows(self):
        controller = AutoscaleController()
        hot = controller.policy.high_txns_per_worker_s * 2  # per 2 workers
        assert controller.decide(window(100, rate=2 * hot)) is None
        assert controller.decide(window(200, rate=2 * hot)) is None
        decision = controller.decide(window(300, rate=2 * hot))
        assert decision is not None and decision.kind == "scale_up"
        assert decision.from_workers == 2
        # Sizing: ceil(rate / target) workers, at least +1.
        assert decision.to_workers > 2
        assert controller.decision_log == [decision]

    def test_noisy_window_resets_the_streak(self):
        controller = AutoscaleController()
        hot = controller.policy.high_txns_per_worker_s * 2
        assert controller.decide(window(100, rate=2 * hot)) is None
        assert controller.decide(window(200, rate=2 * hot)) is None
        assert controller.decide(window(300, rate=0.0)) is None  # reset
        assert controller.decide(window(400, rate=2 * hot)) is None
        assert controller.decide(window(500, rate=2 * hot)) is None
        assert controller.decide(window(600, rate=2 * hot)) is not None

    def test_queue_depth_alone_saturates(self):
        controller = AutoscaleController()
        deep = controller.policy.high_queue_depth
        for at in (100, 200):
            assert controller.decide(window(at, rate=10, queue=deep)) is None
        decision = controller.decide(window(300, rate=10, queue=deep))
        assert decision is not None and decision.kind == "scale_up"

    def test_cooldown_silences_after_a_decision(self):
        controller = AutoscaleController()
        hot = controller.policy.high_txns_per_worker_s * 2
        for at in (100, 200, 300):
            first = controller.decide(window(at, rate=2 * hot))
        assert first is not None
        # Saturation persists, but the cooldown window stays silent.
        for at in (400, 500, 600, 700, 800):
            assert controller.decide(window(at, rate=2 * hot)) is None
        # Past the cooldown the (re-accumulated) streak fires again.
        late = controller.decide(window(1000, rate=2 * hot))
        assert late is not None

    def test_busy_suppresses_but_remembers(self):
        controller = AutoscaleController()
        hot = controller.policy.high_txns_per_worker_s * 2
        for at in (100, 200, 300, 400):
            assert controller.decide(window(at, rate=2 * hot),
                                     busy=True) is None
        # First quiet tick: the streak already crossed the threshold.
        decision = controller.decide(window(500, rate=2 * hot))
        assert decision is not None and decision.kind == "scale_up"

    def test_hot_slot_split_fires_on_a_persistent_hot_slot(self):
        controller = AutoscaleController()
        shares = ((7, 0.6), (1, 0.1))
        for at in (100, 200):
            assert controller.decide(window(
                at, rate=100, committed=64, slot_shares=shares)) is None
        decision = controller.decide(window(
            300, rate=100, committed=64, slot_shares=shares))
        assert decision is not None
        assert decision.kind == "split_hot_slot"
        assert decision.hot_slot == 7
        assert decision.to_workers == 3

    def test_hot_slot_below_min_commits_is_ignored(self):
        controller = AutoscaleController()
        shares = ((7, 0.9),)
        for at in (100, 200, 300, 400):
            assert controller.decide(window(
                at, rate=10, committed=8, slot_shares=shares)) is None

    def test_hot_keys_refresh_each_window(self):
        controller = AutoscaleController()
        controller.decide(window(
            100, rate=100, committed=64,
            key_shares=((("Account", "k1"), 0.5),
                        (("Account", "k2"), 0.02))))
        assert controller.is_hot_key("Account", "k1")
        assert not controller.is_hot_key("Account", "k2")
        # A trickle window keeps the previous classification...
        controller.decide(window(200, rate=1, committed=2))
        assert controller.is_hot_key("Account", "k1")
        # ...a real window without the key clears it.
        controller.decide(window(
            300, rate=100, committed=64,
            key_shares=((("Account", "k3"), 0.4),)))
        assert not controller.is_hot_key("Account", "k1")
        assert controller.is_hot_key("Account", "k3")

    def test_scale_down_is_lagging_and_respects_min_workers(self):
        controller = AutoscaleController()
        policy = controller.policy
        decisions = [controller.decide(window(at * 100, workers=3, rate=90))
                     for at in range(1, policy.idle_samples + 1)]
        decision = decisions[-1]
        assert all(d is None for d in decisions[:-1])
        assert decision is not None and decision.kind == "scale_down"
        assert decision.to_workers >= policy.min_workers
        # At the floor, idle windows never classify as idle.
        floor = AutoscaleController()
        for at in range(1, 20):
            assert floor.decide(window(at * 100, workers=1, rate=0)) is None

    def test_signature_is_a_pure_function_of_the_decisions(self):
        first, second = AutoscaleController(), AutoscaleController()
        hot = first.policy.high_txns_per_worker_s * 2
        for controller in (first, second):
            for at in (100, 200, 300):
                controller.decide(window(at, rate=2 * hot))
        assert first.decision_signature() == second.decision_signature()
        assert len(first.decision_signature()) == 1


class TestSampler:
    def _stats(self, **overrides):
        base = dict(commits=0, single_key=0, fallback_runs=0,
                    closed_batches=0, batch_latency_ms=0.0,
                    slot_commits={}, key_commits={})
        base.update(overrides)
        return SimpleNamespace(**base)

    def test_windows_difference_cumulative_counters(self):
        sampler = MetricsSampler()
        stats = self._stats()
        first = sampler.sample(now_ms=100.0, stats=stats, queue_depth=0,
                               workers=2)
        assert first.committed == 0
        stats.commits, stats.single_key = 40, 10
        stats.closed_batches, stats.batch_latency_ms = 4, 20.0
        second = sampler.sample(now_ms=200.0, stats=stats, queue_depth=3,
                                workers=2)
        assert second.committed == 50
        assert second.txn_rate_s == pytest.approx(500.0)
        assert second.per_worker_rate_s == pytest.approx(250.0)
        assert second.batch_latency_ms == pytest.approx(5.0)
        assert second.queue_depth == 3

    def test_slot_feed_yields_shares_and_worker_rates(self):
        sampler = MetricsSampler()
        stats = self._stats(slot_commits={0: 0, 1: 0})
        sampler.sample(now_ms=100.0, stats=stats, queue_depth=0, workers=2)
        stats.slot_commits = {0: 30, 1: 10}
        stats.key_commits = {("Account", "a"): 25, ("Account", "b"): 15}
        sample = sampler.sample(now_ms=200.0, stats=stats, queue_depth=0,
                                workers=2, slot_owner={0: 0, 1: 1})
        assert sample.committed == 40
        assert sample.hottest_slot == (0, 0.75)
        assert sample.hottest_key == (("Account", "a"),
                                      pytest.approx(25 / 40))
        assert sample.worker_rates == {0: pytest.approx(300.0),
                                       1: pytest.approx(100.0)}
        # Next window sees only the delta.
        stats.slot_commits = {0: 35, 1: 30}
        later = sampler.sample(now_ms=300.0, stats=stats, queue_depth=0,
                               workers=2, slot_owner={0: 0, 1: 1})
        assert later.committed == 25
        assert later.hottest_slot == (1, pytest.approx(20 / 25))


# ---------------------------------------------------------------------------
# End to end on the virtual-time simulator
# ---------------------------------------------------------------------------

#: Aggressive knobs so short test runs cross the thresholds the default
#: policy reserves for sustained production load.
def _fast_policy() -> AutoscalePolicy:
    return AutoscalePolicy(
        sample_interval_ms=100.0, high_txns_per_worker_s=400.0,
        low_txns_per_worker_s=50.0, saturated_samples=2, idle_samples=6,
        cooldown_ms=300.0, target_txns_per_worker_s=250.0, max_workers=8)


def _autoscale_run(account_program, seed: int,
                   plan: FaultPlan | None = None):
    """One autoscaled zipfian run; returns the full observable tuple:
    (decision signature, rescale log, reply trace, sent, completed)."""
    kwargs: dict = dict(workers=1, autoscale_policy=_fast_policy())
    if plan is not None:
        kwargs.update(fault_plan=plan,
                      coordinator=chaos_coordinator_config())
    runtime = StateflowRuntime(account_program,
                               config=StateflowConfig(**kwargs))
    trace: list[tuple] = []
    runtime.reply_tap = lambda reply: trace.append(
        (reply.request_id, repr(reply.payload), reply.error))
    workload = YcsbWorkload("A", record_count=60, distribution="zipfian",
                            seed=seed + 1)
    runtime.preload(Account, workload.dataset_rows())
    runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=700, duration_ms=1_200, warmup_ms=0, drain_ms=20_000,
        seed=seed + 2))
    result = driver.run()
    runtime.sim.run(until=runtime.sim.now + 10_000)
    coordinator = runtime.coordinator
    rescales = tuple((record.from_workers, record.to_workers,
                      record.slots_moved)
                     for record in coordinator.rescale_log)
    return (runtime.autoscaler.decision_signature(), rescales,
            tuple(sorted(trace)), result.sent, driver.completed)


class TestClosedLoop:
    def test_scales_up_autonomously_under_saturation(self, account_program):
        signature, rescales, trace, sent, completed = _autoscale_run(
            account_program, seed=7)
        assert signature, "no autonomous decisions under saturating load"
        assert signature[0][1] == "scale_up"
        assert rescales, "decisions never turned into committed rescales"
        assert rescales[0][0] == 1 and rescales[0][1] > 1
        assert completed == sent  # exactly-once survives the rescale

    def test_hot_keys_detected_and_fast_pathed(self, account_program):
        kwargs: dict = dict(workers=2, autoscale_policy=_fast_policy())
        runtime = StateflowRuntime(account_program,
                                   config=StateflowConfig(**kwargs))
        workload = YcsbWorkload("A", record_count=60,
                                distribution="zipfian", seed=5)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=700, duration_ms=1_200, warmup_ms=0, drain_ms=20_000,
            seed=9))
        driver.run()
        # The zipfian head concentrates on the first ranks: the
        # controller must classify at least one key hot and the
        # coordinator must account its fast-path commits.
        assert runtime.autoscaler.hot_keys
        assert runtime.coordinator.stats.single_key_hot > 0

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=4, deadline=None)
    def test_same_seed_reproduces_decisions_and_trace(self, account_program,
                                                      seed):
        first = _autoscale_run(account_program, seed)
        second = _autoscale_run(account_program, seed)
        assert first[0] == second[0], (
            "autoscale decision sequences diverged across identical runs")
        assert first[1] == second[1], (
            "rescale logs diverged across identical runs")
        assert first[2] == second[2], (
            "reply traces diverged across identical runs")

    def test_decisions_survive_coordinator_failover(self, account_program):
        plan = FaultPlan(seed=13, events=[
            FaultEvent(kind="messages", at_ms=150.0, duration_ms=400.0,
                       channel="all",
                       profile=MessageFaultProfile(drop_p=0.02,
                                                   duplicate_p=0.02)),
            FaultEvent(kind="crash_coordinator", at_ms=500.0),
        ])
        signature, rescales, trace, sent, completed = _autoscale_run(
            account_program, seed=13, plan=plan)
        # The loop keeps deciding after the failover re-arms its tick,
        # and every request still completes exactly once.
        assert signature and rescales
        assert completed == sent
        ids = [entry[0] for entry in trace]
        assert len(ids) == len(set(ids))
        # And the composition replays byte for byte.
        replay = _autoscale_run(account_program, seed=13, plan=plan)
        assert replay == (signature, rescales, trace, sent, completed)

    def test_chaos_cell_accepts_autoscale(self):
        report = run_chaos_cell("stateflow", "T", rps=80.0,
                                duration_ms=1_500.0, record_count=30,
                                seed=23, autoscale=True)
        assert report.ok, report.problems
