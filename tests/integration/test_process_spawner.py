"""Process-substrate parity: the serializability oracles re-run on real
worker processes.

The deterministic battery stays on the simulator; this subset proves
the wire format, the replica protocol, and crash/recovery on the wall
clock.  Real seconds per test, so the module is marked ``slow`` and
excluded from tier 1 (CI's process-smoke job runs it).
"""

from __future__ import annotations

import pytest

from repro.runtimes.stateflow import (
    CoordinatorConfig,
    StateflowConfig,
    StateflowRuntime,
)
from repro.workloads import Account

pytestmark = pytest.mark.slow

#: Real-time deadline for a test's full history to commit (wall ms).
DEADLINE_MS = 90_000.0


def _process_config(**overrides) -> StateflowConfig:
    defaults = dict(
        spawner="process", workers=3, exec_service_ms=0.0,
        state_op_ms=0.0,
        coordinator=CoordinatorConfig(
            conflict_check_ms_per_txn=0.0, dispatch_ms_per_txn=0.0,
            failure_detect_ms=2_000.0, snapshot_interval_ms=500.0))
    defaults.update(overrides)
    return StateflowConfig(**defaults)


def test_transfers_serial_oracle_on_process_substrate(account_program):
    """A concurrent transfer mix across real processes must end in a
    state reachable by some serial order: conservation of the total,
    non-negative balances, and exactly one reply per request."""
    runtime = StateflowRuntime(account_program, config=_process_config())
    try:
        refs = runtime.preload(Account,
                               [(f"acct-{i}", 100) for i in range(6)])
        runtime.start()
        plan = [(i % 6, (i * 3 + 1) % 6, 7 + i % 11) for i in range(40)]
        replies: list[int] = []
        for source, target, amount in plan:
            if source == target:
                target = (target + 1) % 6
            runtime.submit(refs[source], "transfer", (amount, refs[target]),
                           on_reply=lambda r: replies.append(r.request_id))
        deadline = runtime.sim.now + DEADLINE_MS
        assert runtime.sim.run_until(lambda: len(replies) >= len(plan),
                                     max_time=deadline), (
            f"only {len(replies)}/{len(plan)} replies before the deadline")
        balances = [runtime.entity_state(ref)["balance"] for ref in refs]
        assert sum(balances) == 600, balances
        assert all(balance >= 0 for balance in balances), balances
        assert len(set(replies)) == len(plan), "duplicated reply"
    finally:
        runtime.close()


def test_crash_recovery_on_process_substrate(account_program):
    """Kill a real worker process mid-history: the watchdog must
    restore from the last snapshot, respawn + re-seed the process, and
    the hot-key increment sum must come out exact (no lost or
    double-applied commits)."""
    runtime = StateflowRuntime(account_program, config=_process_config())
    try:
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        increments = [1 + (i % 9) for i in range(30)]
        expected = sum(increments)
        replies: list[int] = []

        def submit(amount: int) -> None:
            runtime.submit(ref, "add", (amount,),
                           on_reply=lambda r: replies.append(r.request_id))

        # First half, then a real SIGKILL-grade crash, then the rest.
        for amount in increments[:10]:
            submit(amount)
        runtime.sim.run_until(lambda: len(replies) >= 5,
                              max_time=runtime.sim.now + DEADLINE_MS)
        victim = runtime.workers[1]
        incarnation_before = victim.incarnation
        runtime.fail_worker(1)
        assert not victim.alive
        for amount in increments[10:]:
            submit(amount)
        deadline = runtime.sim.now + DEADLINE_MS
        assert runtime.sim.run_until(
            lambda: (runtime.entity_state(ref) or {}).get("balance")
            == expected and len(replies) >= len(increments),
            max_time=deadline), (
            f"balance {(runtime.entity_state(ref) or {}).get('balance')} "
            f"!= {expected} ({len(replies)} replies)")
        assert runtime.entity_state(ref)["balance"] == expected
        assert victim.alive, "recovery should have respawned the worker"
        assert victim.incarnation > incarnation_before
        assert runtime.coordinator.recoveries >= 1
    finally:
        runtime.close()
