"""Bench plumbing: env knobs, runtime overrides, Blob entity, hashing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import Blob, build_runtime, env_ms, ycsb_program
from repro.core.serialization import state_size_bytes
from repro.ir.dataflow import stable_hash
from repro.runtimes import LocalRuntime


class TestEnvKnobs:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_ms("REPRO_TEST_KNOB", 123.0) == 123.0

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "4500")
        assert env_ms("REPRO_TEST_KNOB", 123.0) == 4500.0


class TestBuildRuntime:
    def test_statefun_overrides(self):
        runtime = build_runtime("statefun", ycsb_program(),
                                function_cores=5)
        assert runtime.config.function_cores == 5

    def test_stateflow_overrides(self):
        runtime = build_runtime("stateflow", ycsb_program(), workers=3)
        assert len(runtime.workers) == 3

    def test_seed_controls_simulation(self):
        first = build_runtime("stateflow", ycsb_program(), seed=1)
        second = build_runtime("stateflow", ycsb_program(), seed=1)
        assert first.sim.rng.random() == second.sim.rng.random()


class TestBlob:
    def test_state_size_tracks_request(self):
        from repro import compile_program

        program = compile_program([Blob])
        runtime = LocalRuntime(program)
        small = runtime.create(Blob, "s", 1024)
        big = runtime.create(Blob, "b", 64 * 1024)
        small_size = state_size_bytes(runtime.entity_state(small))
        big_size = state_size_bytes(runtime.entity_state(big))
        assert big_size > small_size * 10

    def test_touch_preserves_size_and_versions(self):
        from repro import compile_program

        program = compile_program([Blob])
        runtime = LocalRuntime(program)
        ref = runtime.create(Blob, "x", 2048)
        before = len(runtime.entity_state(ref)["payload"])
        assert runtime.call(ref, "touch", "tag-1") == 1
        assert runtime.call(ref, "touch", "tag-2") == 2
        after = runtime.entity_state(ref)["payload"]
        assert len(after) == before
        assert after.startswith("tag-2")
        assert runtime.call(ref, "peek") == 2


class TestStableHash:
    def test_cross_type_stability(self):
        assert stable_hash("alice") == stable_hash("alice")
        assert stable_hash(17) == 17

    @given(st.text(max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_always_non_negative_31bit(self, key):
        value = stable_hash(key)
        assert 0 <= value < 2**31

    @given(st.lists(st.text(min_size=1, max_size=12), min_size=50,
                    max_size=50, unique=True))
    @settings(max_examples=10, deadline=None)
    def test_spreads_over_partitions(self, keys):
        partitions = {stable_hash(k) % 4 for k in keys}
        assert len(partitions) >= 2  # no pathological clumping
