"""Examples must run; the bench harness must produce sane rows."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples"


def _example_env() -> dict[str, str]:
    """Subprocesses need ``src`` on the path (examples also work after
    ``pip install -e .``, but tests must not require the install)."""
    env = dict(os.environ)
    src = str(REPO / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}"
                         if existing else src)
    return env


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "compiler_explorer.py",
    "ecommerce_checkout.py",
    "bank_transfers.py",
    "tpcc_demo.py",
])
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        cwd=str(EXAMPLES), env=_example_env(),
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()


class TestHarness:
    def test_ycsb_cell_shape(self):
        from repro.bench import run_ycsb_cell

        row = run_ycsb_cell("stateflow", "A", "zipfian", rps=100,
                            duration_ms=2_000, record_count=50)
        assert row.completed > 0
        assert row.errors == 0
        assert 0 < row.p50_ms <= row.p99_ms
        assert row.as_dict()["system"] == "stateflow"

    def test_statefun_cell(self):
        from repro.bench import run_ycsb_cell

        row = run_ycsb_cell("statefun", "B", "uniform", rps=100,
                            duration_ms=2_000, record_count=50)
        assert row.completed > 0
        assert row.p99_ms > 0

    def test_unknown_system_rejected(self):
        from repro.bench import build_runtime, ycsb_program

        with pytest.raises(ValueError):
            build_runtime("spark", ycsb_program())

    def test_format_table(self):
        from repro.bench import format_table, run_ycsb_cell

        row = run_ycsb_cell("stateflow", "A", "uniform", rps=100,
                            duration_ms=1_000, record_count=20)
        text = format_table([row], "title")
        assert "title" in text
        assert "stateflow" in text

    def test_overhead_rows(self):
        from itertools import count

        from repro.bench import format_overhead_table, run_overhead_breakdown

        ticks = count()
        rows = run_overhead_breakdown([50], operations=50,
                                      clock=lambda: float(next(ticks)))
        row = rows[0]
        # Assert on counted operations with an injected clock — a
        # wall-clock share here flaked whenever the host was loaded.
        # Steady-state touch ops: one frame pop / flush / serde pass /
        # instance build each, at least one block execution.
        assert row.component_counts["split_instrumentation"] == 50
        assert row.component_counts["state_serde"] == 50
        assert row.component_counts["state_storage"] == 50
        assert row.component_counts["object_construction"] == 50
        assert row.component_counts["function_execution"] >= 50
        assert row.split_share is not None and 0 < row.split_share < 1
        assert "state_kb" in format_overhead_table(rows)

    def test_overhead_share_distinguishes_absent_from_free(self):
        from repro.bench import OverheadRow, format_overhead_table

        row = OverheadRow(state_kb=50, operations=10, total_ms=5.0,
                          component_ms={"function_execution": 5.0},
                          component_counts={"function_execution": 10})
        # Unmeasured components are unknown, not 0%.
        assert row.share("object_construction") is None
        assert row.split_share is None
        assert row.share("function_execution") == 1.0
        assert "n/a" in format_overhead_table([row])
        empty = OverheadRow(state_kb=50, operations=0, total_ms=0.0,
                            component_ms={}, component_counts={})
        assert empty.share("function_execution") is None

    def test_cell_accepts_state_backend(self):
        from repro.bench import run_ycsb_cell

        row = run_ycsb_cell("stateflow", "A", "zipfian", rps=100,
                            duration_ms=1_000, record_count=20,
                            state_backend="cow")
        assert row.completed > 0
        assert row.errors == 0
        assert row.as_dict()["state_backend"] == "cow"

    def test_state_backend_env_default(self, monkeypatch):
        from repro.bench import default_state_backend

        monkeypatch.delenv("REPRO_STATE_BACKEND", raising=False)
        assert default_state_backend() == "dict"
        monkeypatch.setenv("REPRO_STATE_BACKEND", "cow")
        assert default_state_backend() == "cow"

    def test_snapshot_overhead_rows(self):
        from repro.bench import (
            format_snapshot_table,
            run_snapshot_overhead,
            snapshot_speedups,
        )

        rows = run_snapshot_overhead([200], rounds=2, writes_per_round=16)
        assert {row.backend for row in rows} == {"dict", "cow"}
        assert all(row.snapshot_ms >= 0 for row in rows)
        assert 200 in snapshot_speedups(rows)
        assert "backend" in format_snapshot_table(rows)

    def test_figure3_shape_checker(self):
        from repro.bench import ExperimentRow, check_figure3_shape

        def row(system, workload, distribution, p99):
            return ExperimentRow(system=system, workload=workload,
                                 distribution=distribution, rps=100,
                                 p50_ms=p99 / 2, p99_ms=p99,
                                 mean_ms=p99 / 2, sent=1, completed=1,
                                 errors=0)

        good = [row("statefun", "A", "zipfian", 90),
                row("stateflow", "A", "zipfian", 30),
                row("stateflow", "T", "zipfian", 120)]
        assert check_figure3_shape(good) == []
        bad = [row("statefun", "A", "zipfian", 20),
               row("stateflow", "A", "zipfian", 30)]
        assert check_figure3_shape(bad)

    def test_figure4_shape_checker(self):
        from repro.bench import ExperimentRow, check_figure4_shape

        def row(system, rps, p99):
            return ExperimentRow(system=system, workload="M",
                                 distribution="zipfian", rps=rps,
                                 p50_ms=p99 / 2, p99_ms=p99,
                                 mean_ms=p99 / 2, sent=1, completed=1,
                                 errors=0)

        good = [row("statefun", 1000, 100), row("statefun", 4000, 2000),
                row("stateflow", 1000, 30), row("stateflow", 4000, 80)]
        assert check_figure4_shape(good) == []
        bad = [row("statefun", 1000, 100), row("statefun", 4000, 110),
               row("stateflow", 1000, 30), row("stateflow", 4000, 300)]
        assert check_figure4_shape(bad)
