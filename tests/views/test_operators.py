"""Unit battery for the view-maintenance operators and the compiler.

Every operator consumes absolute-state deltas and emits its own delta;
these tests pin the retraction memos (group buckets, top-k index), the
tombstone flow, the deterministic top-k tie-break, plan memoization in
the compiler, and the ViewManager's registration/freshness/duplicate-
delivery contract over a fake committed store.
"""

import pytest

from repro.views import (
    TOMBSTONE,
    FilterMap,
    GroupAggregate,
    TopK,
    ViewCompiler,
    ViewError,
    ViewManager,
    ViewSpec,
    compile_spec,
    rank_key,
    recompute,
)


class TestFilterMap:
    def test_passthrough_copies_rows(self):
        row = {"v": 1}
        out = FilterMap().apply({"a": row})
        assert out == {"a": {"v": 1}}
        assert out["a"] is not row, "operators must not alias input rows"

    def test_failing_rows_become_tombstones(self):
        stage = FilterMap(where=lambda r: r["v"] > 0)
        out = stage.apply({"a": {"v": 5}, "b": {"v": -5}})
        assert out["a"] == {"v": 5}
        assert out["b"] is TOMBSTONE

    def test_tombstones_flow_through(self):
        assert FilterMap(where=lambda r: True).apply(
            {"a": TOMBSTONE})["a"] is TOMBSTONE

    def test_projection(self):
        out = FilterMap(project=("v",)).apply({"a": {"v": 1, "w": 2}})
        assert out == {"a": {"v": 1}}

    def test_projection_missing_field_raises(self):
        with pytest.raises(ViewError, match="lacks field"):
            FilterMap(project=("v", "nope")).apply({"a": {"v": 1}})


class TestGroupAggregate:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ViewError, match="unknown aggregate kind"):
            GroupAggregate("median")

    def test_sum_needs_value_field(self):
        with pytest.raises(ViewError, match="needs a value field"):
            GroupAggregate("sum")

    def test_count_update_retracts_old_contribution(self):
        agg = GroupAggregate("count", group_of=lambda r: r["g"])
        agg.apply({"a": {"g": "x"}, "b": {"g": "x"}})
        out = agg.apply({"a": {"g": "y"}})  # a moves from x to y
        assert out == {"x": 1, "y": 1}
        assert agg.result() == {"x": 1, "y": 1}

    def test_sum_delete_emits_group_tombstone(self):
        agg = GroupAggregate("sum", group_of=lambda r: r["g"],
                             value_of=lambda r: r["v"])
        agg.apply({"a": {"g": "x", "v": 7}})
        out = agg.apply({"a": TOMBSTONE})
        assert out["x"] is TOMBSTONE
        assert agg.result() == {}

    def test_retracting_unknown_key_is_noop(self):
        agg = GroupAggregate("count")
        assert agg.apply({"ghost": TOMBSTONE}) == {}
        assert agg.result() == {}

    def test_avg_is_total_over_count(self):
        agg = GroupAggregate("avg", value_of=lambda r: r["v"])
        agg.apply({"a": {"v": 10}, "b": {"v": 20}})
        assert agg.result() == {None: 15.0}
        agg.apply({"b": TOMBSTONE})
        assert agg.result() == {None: 10.0}

    def test_duplicate_application_is_idempotent(self):
        agg = GroupAggregate("sum", value_of=lambda r: r["v"])
        delta = {"a": {"v": 3}, "b": {"v": 4}}
        agg.apply(delta)
        agg.apply(delta)  # absolute states: re-apply retracts first
        assert agg.result() == {None: 7}


class TestTopK:
    def _topk(self, k=2):
        return TopK(k, score_of=lambda r: r["v"])

    def test_k_must_be_positive(self):
        with pytest.raises(ViewError, match="k >= 1"):
            TopK(0, score_of=lambda r: r["v"])

    def test_orders_highest_first(self):
        top = self._topk()
        rows = top.apply({"a": {"v": 1}, "b": {"v": 9}, "c": {"v": 5}})
        assert [r["__key__"] for r in rows] == ["b", "c"]

    def test_ties_break_by_ascending_key_string(self):
        top = self._topk(k=3)
        rows = top.apply({"z": {"v": 5}, "a": {"v": 5}, "m": {"v": 5}})
        assert [r["__key__"] for r in rows] == ["a", "m", "z"]

    def test_eviction_backfills_from_index(self):
        top = self._topk()
        top.apply({"a": {"v": 1}, "b": {"v": 9}, "c": {"v": 5}})
        rows = top.apply({"b": TOMBSTONE})  # 'a' re-enters from the index
        assert [r["__key__"] for r in rows] == ["c", "a"]

    def test_update_moves_key(self):
        top = self._topk()
        top.apply({"a": {"v": 1}, "b": {"v": 9}, "c": {"v": 5}})
        rows = top.apply({"a": {"v": 100}})
        assert [r["__key__"] for r in rows] == ["a", "b"]

    def test_invisible_change_emits_nothing(self):
        top = self._topk()
        top.apply({"a": {"v": 1}, "b": {"v": 9}, "c": {"v": 5}})
        assert top.apply({"a": {"v": 2}}) is None, (
            "a below-the-cut move must not push an update")

    def test_in_place_update_of_top_row_emits(self):
        top = self._topk()
        top.apply({"a": {"v": 1}, "b": {"v": 9}, "c": {"v": 5}})
        rows = top.apply({"b": {"v": 9, "tag": "new"}})
        assert rows is not None and rows[0]["tag"] == "new", (
            "same membership but changed row content must re-emit")

    def test_matches_nlargest_with_rank_key(self):
        import heapq

        top = self._topk(k=3)
        delta = {f"k{i}": {"v": (i * 7) % 5} for i in range(10)}
        top.apply(delta)
        want = heapq.nlargest(
            3, delta.items(), key=lambda kv: rank_key(kv[1]["v"], kv[0]))
        assert [r["__key__"] for r in top.result()] == [k for k, _ in want]


class TestViewSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ViewError, match="unknown view kind"):
            ViewSpec("v", "E", "median").validated()

    @pytest.mark.parametrize("kind", ["sum", "avg", "top_k"])
    def test_field_required(self, kind):
        with pytest.raises(ViewError, match="needs field="):
            ViewSpec("v", "E", kind, k=3).validated()

    def test_top_k_needs_k(self):
        with pytest.raises(ViewError, match="k >= 1"):
            ViewSpec("v", "E", "top_k", field="v").validated()

    def test_top_k_rejects_group_by(self):
        with pytest.raises(ViewError, match="group_by"):
            ViewSpec("v", "E", "top_k", field="v", k=3,
                     group_by="g").validated()


class TestCompiler:
    def test_equivalent_specs_share_one_plan(self):
        compiler = ViewCompiler()
        where = lambda r: r["v"] > 0  # noqa: E731 - identity matters
        a = compiler.normalize(ViewSpec("a", "E", "count", where=where))
        b = compiler.normalize(ViewSpec("b", "E", "count", where=where))
        assert a is b
        assert len(compiler.plans) == 1

    def test_distinct_predicates_do_not_share(self):
        compiler = ViewCompiler()
        a = compiler.normalize(
            ViewSpec("a", "E", "count", where=lambda r: True))
        b = compiler.normalize(
            ViewSpec("b", "E", "count", where=lambda r: True))
        assert a is not b

    def test_forget_drops_the_plan(self):
        compiler = ViewCompiler()
        compiled = compiler.normalize(ViewSpec("a", "E", "count"))
        compiler.forget(compiled)
        assert compiler.plans == []

    def test_value_shapes(self):
        assert compile_spec(ViewSpec("c", "E", "count")).value() == 0
        assert compile_spec(ViewSpec("s", "E", "sum", field="v")).value() == 0
        assert compile_spec(
            ViewSpec("a", "E", "avg", field="v")).value() is None
        assert compile_spec(
            ViewSpec("t", "E", "top_k", field="v", k=2)).value() == []
        assert compile_spec(
            ViewSpec("g", "E", "count", group_by="g")).value() == {}

    def test_group_by_missing_field_raises(self):
        compiled = compile_spec(ViewSpec("g", "E", "count", group_by="g"))
        with pytest.raises(ViewError, match="cannot group by"):
            compiled.apply({"a": {"v": 1}})

    def test_hydrate_equals_recompute(self):
        spec = ViewSpec("s", "E", "sum", field="v", group_by="g")
        items = [(f"k{i}", {"g": i % 3, "v": i}) for i in range(10)]
        compiled = compile_spec(spec)
        compiled.hydrate(items)
        assert compiled.value() == recompute(spec, items)


class FakeStore:
    """The backend-agnostic committed-store surface views scan."""

    def __init__(self, rows):
        self._rows = dict(rows)  # (entity, key) -> state

    def keys(self):
        return list(self._rows)

    def get(self, entity, key):
        state = self._rows.get((entity, key))
        return dict(state) if state is not None else None

    def put(self, entity, key, state):
        self._rows[(entity, key)] = state


class TestViewManager:
    def _manager(self, rows=()):
        return ViewManager(FakeStore(rows))

    def test_register_hydrates_from_store(self):
        manager = self._manager({("E", "a"): {"v": 2}, ("E", "b"): {"v": 3},
                                 ("F", "x"): {"v": 100}})
        snap = manager.register(ViewSpec("total", "E", "sum", field="v"))
        assert snap.value == 5, "hydration must scan only the spec's entity"

    def test_duplicate_name_rejected(self):
        manager = self._manager()
        manager.register(ViewSpec("v", "E", "count"))
        with pytest.raises(ViewError, match="already registered"):
            manager.register(ViewSpec("v", "E", "count"))

    def test_read_unknown_view(self):
        with pytest.raises(ViewError, match="no registered view"):
            self._manager().read("ghost")

    def test_shared_plan_maintained_once(self):
        manager = self._manager({("E", "a"): {"v": 1}})
        manager.register(ViewSpec("one", "E", "count"))
        manager.register(ViewSpec("two", "E", "count"))
        assert len(manager._compiler.plans) == 1
        manager.on_commit(0, {("E", "b"): {"v": 2}}, at_ms=1.0)
        assert manager.read("one").value == 2
        assert manager.read("two").value == 2
        assert manager.commits_applied == 1

    def test_unregister_keeps_shared_plan_alive(self):
        manager = self._manager()
        manager.register(ViewSpec("one", "E", "count"))
        manager.register(ViewSpec("two", "E", "count"))
        manager.unregister("one")
        assert manager.read("two").value == 0
        manager.unregister("two")
        assert manager._compiler.plans == []

    def test_commit_advances_freshness_even_when_empty(self):
        manager = self._manager()
        manager.register(ViewSpec("v", "E", "count"))
        manager.on_commit(4, {}, at_ms=7.0)
        snap = manager.read("v")
        assert snap.last_applied_batch == 4
        assert snap.as_of_ms == 7.0

    def test_duplicate_delivery_skipped(self):
        manager = self._manager()
        manager.register(ViewSpec("v", "E", "sum", field="v"))
        delta = {("E", "a"): {"v": 10}}
        manager.on_commit(0, delta, at_ms=1.0)
        manager.on_commit(0, delta, at_ms=1.0)  # replayed batch
        assert manager.read("v").value == 10

    def test_lag_measures_distance_to_head(self):
        head = {"value": 0}
        manager = ViewManager(FakeStore({}), head=lambda: head["value"])
        manager.register(ViewSpec("v", "E", "count"))
        head["value"] = 3
        assert manager.read("v").lag_batches == 3
        manager.on_commit(3, {}, at_ms=None)
        assert manager.read("v").lag_batches == 0

    def test_on_restore_rewinds_to_store(self):
        store = FakeStore({("E", "a"): {"v": 1}})
        manager = ViewManager(store)
        manager.register(ViewSpec("v", "E", "sum", field="v"))
        manager.on_commit(0, {("E", "b"): {"v": 99}}, at_ms=1.0)
        assert manager.read("v").value == 100
        # recovery rewound the committed store; the uncommitted write
        # to b must vanish from the view
        manager.on_restore(last_closed=-1, at_ms=2.0)
        snap = manager.read("v")
        assert snap.value == 1
        assert snap.last_applied_batch == -1
        assert manager.rehydrations == 1

    def test_subscriptions_deliver_updates(self):
        manager = self._manager()
        manager.register(ViewSpec("v", "E", "count"))
        seen = []
        manager.subscribe("v", seen.append)
        manager.on_commit(0, {("E", "a"): {"v": 1}}, at_ms=1.0)
        manager.on_commit(1, {}, at_ms=2.0)  # no visible change: no push
        assert [u.value for u in seen] == [1]
        assert seen[0].batch_id == 0

    def test_transport_carries_deliveries(self):
        manager = self._manager()
        manager.register(ViewSpec("v", "E", "count"))
        queued = []
        manager.transport = queued.append  # deferred deliver closures
        seen = []
        manager.subscribe("v", seen.append)
        manager.on_commit(0, {("E", "a"): {"v": 1}}, at_ms=1.0)
        assert seen == [] and len(queued) == 1
        queued[0]()  # the substrate delivers later, off the commit path
        assert [u.value for u in seen] == [1]

    def test_expected_is_the_full_scan_oracle(self):
        store = FakeStore({("E", "a"): {"v": 1}})
        manager = ViewManager(store)
        manager.register(ViewSpec("v", "E", "sum", field="v"))
        store.put("E", "z", {"v": 41})  # store moved; view not yet told
        assert manager.read("v").value == 1
        assert manager.expected("v") == 42
