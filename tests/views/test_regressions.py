"""Failing-first regressions for the PR-10 commit-path retraction bugs.

Each of these reproduced against the PR-9 operators:

1. a top-k view retracting to an empty list was swallowed by
   ``CompiledView.apply``'s falsy check (``[]`` is falsy), so
   subscribers never learned the view drained;
2. ``GroupAggregate.apply`` (and ``TopK.apply``) mutated retraction
   memos *before* extracting fields from every row, so a delta with one
   malformed row left the operator partially applied — silently wrong
   forever after;
3. float sum/avg retraction used naive ``total -= value``, drifting
   from the full-scan oracle on long-lived groups (now Kahan–Neumaier
   compensated).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.views import (
    TOMBSTONE,
    GroupAggregate,
    TopK,
    ViewError,
    ViewManager,
    ViewSpec,
    compile_spec,
)


class FakeStore:
    def __init__(self, rows=()):
        self._rows = dict(rows)

    def keys(self):
        return list(self._rows)

    def get(self, entity, key):
        state = self._rows.get((entity, key))
        return dict(state) if state is not None else None


class TestDrainedTopKPublishes:
    """Bug 1: ``return out if out else None`` swallowed the empty list."""

    def test_compiled_apply_returns_empty_list_on_drain(self):
        compiled = compile_spec(ViewSpec("t", "E", "top_k", field="v", k=2))
        compiled.apply({"a": {"v": 5}})
        out = compiled.apply({"a": TOMBSTONE})
        assert out == [], (
            "draining the last top-k row must emit [], not None")

    def test_subscriber_sees_the_drain(self):
        manager = ViewManager(FakeStore())
        manager.register(ViewSpec("t", "E", "top_k", field="v", k=2))
        updates = []
        manager.subscribe("t", updates.append)
        manager.on_commit(0, {("E", "a"): {"v": 5}}, at_ms=1.0)
        manager.on_commit(1, {("E", "a"): TOMBSTONE}, at_ms=2.0)
        assert len(updates) == 2
        drained = updates[-1]
        assert drained.value == [] and drained.delta == [], (
            "tombstoning the last row must push a ViewUpdate with []")

    def test_empty_aggregate_delta_still_collapses_to_none(self):
        """The fix must not start pushing no-op aggregate updates."""
        compiled = compile_spec(ViewSpec("c", "E", "count"))
        compiled.apply({"a": {"v": 1}})
        assert compiled.apply({"ghost": TOMBSTONE}) is None


class TestTwoPhaseApply:
    """Bug 2: a raising row must leave the operator exactly as it was."""

    def test_group_aggregate_raising_delta_is_a_no_op(self):
        agg = GroupAggregate("sum", group_of=lambda row: row["g"],
                             value_of=lambda row: row["v"])
        agg.apply({"a": {"g": 1, "v": 15}})
        before = agg.result()
        # "a" re-keys fine, "b" lacks the value field: before the fix the
        # retraction of "a" had already landed when "b" raised.
        with pytest.raises(KeyError):
            agg.apply({"a": {"g": 1, "v": 20}, "b": {"g": 1}})
        assert agg.result() == before == {1: 15}

    def test_compiled_view_raising_delta_is_a_no_op(self):
        compiled = compile_spec(
            ViewSpec("s", "E", "sum", field="v", group_by="g"))
        compiled.apply({"a": {"g": 1, "v": 15}})
        with pytest.raises(ViewError, match="missing from row"):
            compiled.apply({"a": {"g": 1, "v": 20}, "b": {"g": 1}})
        assert compiled.value() == {1: 15}

    def test_minmax_raising_delta_preserves_the_index(self):
        agg = GroupAggregate("min", value_of=lambda row: row["v"])
        agg.apply({"a": {"v": 3}, "b": {"v": 7}})
        with pytest.raises(KeyError):
            agg.apply({"a": {"v": 1}, "b": {}})
        assert agg.result() == {None: 3}
        agg.apply({"a": TOMBSTONE})  # the index must still retract cleanly
        assert agg.result() == {None: 7}

    def test_top_k_raising_delta_is_a_no_op(self):
        top = TopK(2, score_of=lambda row: row["v"])
        top.apply({"a": {"v": 5}, "b": {"v": 9}})
        before = top.result()
        with pytest.raises(KeyError):
            top.apply({"a": {"v": 7}, "b": {}})
        assert top.result() == before

    @given(st.integers(0, 2**20))
    @settings(max_examples=25, deadline=None)
    def test_raising_delta_equals_pre_delta_oracle(self, seed):
        """From any reachable state: a delta whose last-extracted row
        raises leaves ``result()`` equal to the pre-delta oracle."""
        rng = random.Random(seed)
        agg = GroupAggregate("avg", group_of=lambda row: row["g"],
                             value_of=lambda row: row["v"])
        for _ in range(rng.randint(1, 6)):
            agg.apply({f"k{rng.randint(0, 5)}": {
                "g": rng.randint(0, 2), "v": rng.randint(-50, 50)}
                for _ in range(rng.randint(1, 4))})
        before = agg.result()
        poison = {f"k{i}": {"g": i % 3, "v": i} for i in range(3)}
        poison["kbad"] = {"g": 0}  # no value field
        with pytest.raises(KeyError):
            agg.apply(poison)
        assert agg.result() == before


class TestFloatRetractionDrift:
    """Bug 3: naive ``total -= value`` drifts; compensated accumulation
    must track ``math.fsum`` of the live contributions."""

    def test_catastrophic_cancellation_is_compensated(self):
        agg = GroupAggregate("sum", value_of=lambda row: row["v"])
        agg.apply({"small": {"v": 1.0}})
        agg.apply({"huge": {"v": 1e16}})
        agg.apply({"huge": TOMBSTONE})
        # Naive accumulation: (1.0 + 1e16) - 1e16 == 0.0.  Neumaier
        # keeps the swallowed 1.0 in the compensation term.
        assert agg.result() == {None: 1.0}

    @given(st.integers(0, 2**20))
    @settings(max_examples=8, deadline=None)
    def test_10k_float_ops_track_fsum(self, seed):
        """>=10k mixed-magnitude float updates/retractions: the
        maintained sum and avg stay within strict tolerance of the
        ``math.fsum`` oracle over the surviving contributions."""
        rng = random.Random(seed)
        total = GroupAggregate("sum", value_of=lambda row: row["v"])
        mean = GroupAggregate("avg", value_of=lambda row: row["v"])
        live = {}
        keys = [f"k{i}" for i in range(64)]
        for step in range(10_000):
            key = rng.choice(keys)
            if key in live and rng.random() < 0.3:
                delta = {key: TOMBSTONE}
                del live[key]
            else:
                value = rng.uniform(-1.0, 1.0) * 10.0 ** rng.randint(-8, 12)
                delta = {key: {"v": value}}
                live[key] = value
            total.apply(delta)
            mean.apply(delta)
        oracle = math.fsum(live.values())
        got = total.result().get(None, 0)
        tolerance = max(1e-6, abs(oracle) * 1e-12)
        assert abs(got - oracle) <= tolerance
        if live:
            got_avg = mean.result()[None]
            want_avg = oracle / len(live)
            assert abs(got_avg - want_avg) <= \
                max(1e-6, abs(want_avg) * 1e-12)

    def test_integer_sums_stay_exactly_integral(self):
        """Compensation must not leak floats into int-only groups."""
        agg = GroupAggregate("sum", value_of=lambda row: row["v"])
        agg.apply({"a": {"v": 3}, "b": {"v": 4}})
        agg.apply({"a": TOMBSTONE})
        result = agg.result()[None]
        assert result == 4 and isinstance(result, int)
