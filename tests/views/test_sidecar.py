"""Durable-view sidecar: export/restore round-trips and the manager's
recovery paths.

The sidecar is the versioned per-plan operator-state payload riding
snapshot cuts (``Snapshot.views_state``).  Pinned here:

- every operator's ``export_state``/``restore_state`` round-trips to a
  plan that is value-identical *and* keeps maintaining correctly (the
  memos are functional, not just displayable);
- ``ViewManager.on_restore`` with a sidecar restores matching plans
  without touching the store (``sidecar_restores``), and falls back to
  scan hydration (``rehydrations``) when the sidecar doesn't match;
- ``attach_recovery`` (cold start) resumes registered views from
  ``(sidecar memos, last_applied_batch)`` + the changelog suffix with
  zero rehydrations and values identical to the live manager's;
- windowed plans — the kind with *no* scan oracle — keep their window
  distribution through a sidecar restore, where a scan fallback
  provably collapses it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtimes.stateflow.snapshots import ChangelogRecord
from repro.views import (
    TOMBSTONE,
    ViewManager,
    ViewSpec,
    compile_spec,
)

KEYS = st.sampled_from([f"k{i}" for i in range(6)])
ROWS = st.fixed_dictionaries({
    "g": st.integers(0, 2),
    "v": st.integers(-100, 100),
})
DELTAS = st.dictionaries(KEYS, st.one_of(st.just(TOMBSTONE), ROWS),
                         max_size=6)
SEQUENCES = st.lists(DELTAS, max_size=6)


def _positive(row):
    return row["v"] > 0


ROUND_TRIP_SPECS = [
    ViewSpec("count", "E", "count", where=_positive),
    ViewSpec("sum-grouped", "E", "sum", field="v", group_by="g"),
    ViewSpec("avg", "E", "avg", field="v"),
    ViewSpec("min-grouped", "E", "min", field="v", group_by="g"),
    ViewSpec("max", "E", "max", field="v"),
    ViewSpec("top3", "E", "top_k", field="v", k=3),
    ViewSpec("windowed-sum", "E", "sum", field="v", window_ms=50.0),
    ViewSpec("joined", "Order", "sum", field="amount",
             group_by="Customer__tier",
             join_entity="Customer", join_on="customer_id"),
]


@given(st.integers(0, len(ROUND_TRIP_SPECS) - 2), SEQUENCES, SEQUENCES)
@settings(max_examples=80, deadline=None)
def test_export_restore_round_trips_and_keeps_maintaining(
        spec_id, history, future):
    """Restore a plan from an export mid-history, then feed both plans
    the same subsequent deltas: values must stay identical throughout —
    the restored memos retract exactly like the originals."""
    spec = ROUND_TRIP_SPECS[spec_id]
    original = compile_spec(spec)
    for index, delta in enumerate(history):
        original.apply(delta, at_ms=index * 30.0)
    restored = compile_spec(spec)
    restored.restore_state(original.export_state())
    assert restored.value() == original.value()
    for index, delta in enumerate(future):
        at_ms = (len(history) + index) * 30.0
        original.apply(delta, at_ms=at_ms)
        restored.apply(delta, at_ms=at_ms)
        assert restored.value() == original.value()


def test_join_export_restore_round_trips():
    spec = ROUND_TRIP_SPECS[-1]
    original = compile_spec(spec)
    original.apply_batch({
        "Order": {"o1": {"customer_id": "c1", "amount": 5},
                  "o2": {"customer_id": "c2", "amount": 9}},
        "Customer": {"c1": {"tier": 1}, "c2": {"tier": 2}},
    })
    restored = compile_spec(spec)
    restored.restore_state(original.export_state())
    assert restored.value() == original.value()
    # Retraction through the rebuilt by-fk index.
    for compiled in (original, restored):
        compiled.apply_batch({"Order": {}, "Customer": {"c1": TOMBSTONE}})
    assert restored.value() == original.value() == {2: 9}


def test_export_is_a_copy_not_an_alias():
    compiled = compile_spec(ViewSpec("s", "E", "sum", field="v",
                                     group_by="g"))
    compiled.apply({"a": {"g": 0, "v": 5}})
    exported = compiled.export_state()
    compiled.apply({"a": {"g": 0, "v": 50}})
    fresh = compile_spec(ViewSpec("s", "E", "sum", field="v",
                                  group_by="g"))
    fresh.restore_state(exported)
    assert fresh.value() == {0: 5}, (
        "mutating the live plan after export must not leak into the "
        "sidecar payload")


class FakeStore:
    def __init__(self, rows=()):
        self._rows = dict(rows)

    def keys(self):
        return list(self._rows)

    def get(self, entity, key):
        state = self._rows.get((entity, key))
        return dict(state) if state is not None else None

    def apply(self, writes):
        for (entity, key), state in writes.items():
            if state is TOMBSTONE:
                self._rows.pop((entity, key), None)
            else:
                self._rows[(entity, key)] = dict(state)


def _specs():
    return [
        ViewSpec("total", "E", "sum", field="v"),
        ViewSpec("peak", "E", "max", field="v"),
        ViewSpec("per-window", "E", "count", window_ms=100.0),
    ]


class TestManagerRestoreFromSidecar:
    def test_sidecar_restore_skips_the_store(self):
        store = FakeStore({("E", "a"): {"v": 1}})
        manager = ViewManager(store)
        for spec in _specs():
            manager.register(spec)
        manager.on_commit(0, {("E", "b"): {"v": 9}}, at_ms=10.0)
        sidecar = manager.export_sidecar()
        value_at_cut = {name: manager.read(name).value
                        for name in manager.names()}
        manager.on_commit(1, {("E", "c"): {"v": 99}}, at_ms=20.0)
        # Recovery rewound the run to the cut: the sidecar must bring
        # every plan back without a scan (the store stays untouched —
        # prove it by poisoning the scan surface).
        store.keys = lambda: (_ for _ in ()).throw(
            AssertionError("sidecar restore must not scan the store"))
        manager.on_restore(last_closed=0, at_ms=30.0, sidecar=sidecar)
        assert manager.rehydrations == 0
        assert manager.sidecar_restores == len(manager._compiler.plans)
        for name, want in value_at_cut.items():
            assert manager.read(name).value == want
            assert manager.read(name).last_applied_batch == 0

    def test_missing_sidecar_falls_back_to_scan(self):
        store = FakeStore({("E", "a"): {"v": 7}})
        manager = ViewManager(store)
        manager.register(ViewSpec("total", "E", "sum", field="v"))
        manager.on_commit(0, {("E", "b"): {"v": 1}}, at_ms=1.0)
        manager.on_restore(last_closed=-1, at_ms=2.0, sidecar=None)
        assert manager.rehydrations == 1
        assert manager.sidecar_restores == 0
        assert manager.read("total").value == 7

    def test_unknown_sidecar_version_falls_back_to_scan(self):
        store = FakeStore({("E", "a"): {"v": 7}})
        manager = ViewManager(store)
        manager.register(ViewSpec("total", "E", "sum", field="v"))
        sidecar = manager.export_sidecar()
        sidecar["version"] = 999
        manager.on_restore(last_closed=-1, at_ms=2.0, sidecar=sidecar)
        assert manager.rehydrations == 1 and manager.sidecar_restores == 0

    def test_schema_mismatch_falls_back_to_scan(self):
        store = FakeStore({("E", "a"): {"v": 7, "g2": 1}})
        old = ViewManager(store)
        old.register(ViewSpec("total", "E", "sum", field="v"))
        sidecar = old.export_sidecar()
        fresh = ViewManager(store)
        # Same name, structurally different query: the sidecar entry
        # must not be trusted.
        fresh.register(ViewSpec("total", "E", "sum", field="v",
                                group_by="g2"))
        fresh.on_restore(last_closed=-1, at_ms=2.0, sidecar=sidecar)
        assert fresh.rehydrations == 1 and fresh.sidecar_restores == 0


class TestColdStartAttachRecovery:
    def _run_live(self):
        """A 'first life': commits 0..3, with a cut (sidecar export)
        after batch 1 — the changelog suffix covers batches 2..3."""
        store = FakeStore()
        manager = ViewManager(store)
        for spec in _specs():
            manager.register(spec)
        commits = [
            (0, {("E", "a"): {"v": 5}}, 10.0),
            (1, {("E", "b"): {"v": 9}}, 120.0),
            (2, {("E", "a"): {"v": 7}}, 230.0),
            (3, {("E", "c"): {"v": 2}, ("E", "b"): TOMBSTONE}, 340.0),
        ]
        suffix = []
        sidecar = None
        for batch_id, writes, at_ms in commits:
            live = {composite: state
                    for composite, state in writes.items()
                    if state is not TOMBSTONE}
            store.apply(writes)
            manager.on_commit(batch_id, live, at_ms=at_ms)
            if batch_id == 1:
                sidecar = manager.export_sidecar()
            elif batch_id > 1:
                suffix.append(ChangelogRecord(
                    seq=batch_id, batch_id=batch_id, writes=live,
                    at_ms=at_ms))
        return store, manager, sidecar, suffix

    def test_cold_start_resumes_with_zero_rehydrations(self):
        store, live, sidecar, suffix = self._run_live()
        cold = ViewManager(store)
        cold.attach_recovery(sidecar, suffix)
        for spec in _specs():
            cold.register(spec)
        assert cold.rehydrations == 0
        assert cold.sidecar_restores == len(_specs())
        for name in live.names():
            assert cold.read(name).value == live.read(name).value
            assert cold.read(name).last_applied_batch == 3

    def test_windowed_plan_needs_the_sidecar(self):
        """The motivating case: scan hydration collapses all windows
        into one, the sidecar + suffix path preserves the real
        distribution."""
        store, live, sidecar, suffix = self._run_live()
        resumed = ViewManager(store)
        resumed.attach_recovery(sidecar, suffix)
        for spec in _specs():
            resumed.register(spec)
        want = live.read("per-window").value
        assert resumed.read("per-window").value == want
        assert len(want) > 1, "the fixture must span multiple windows"
        scanned = ViewManager(store)
        scanned.register(
            ViewSpec("per-window", "E", "count", window_ms=100.0))
        assert len(scanned.read("per-window").value) == 1, (
            "scan hydration cannot reconstruct commit-time windows")

    def test_uncovered_view_counts_a_rehydration(self):
        store, live, sidecar, suffix = self._run_live()
        cold = ViewManager(store)
        cold.attach_recovery(sidecar, suffix)
        cold.register(ViewSpec("brand-new", "E", "count"))
        assert cold.rehydrations == 1
        assert cold.read("brand-new").value == 2  # a and c survive

    def test_windowed_expected_raises(self):
        store, live, sidecar, suffix = self._run_live()
        from repro.views import ViewError
        with pytest.raises(ViewError, match="no full-scan oracle"):
            live.expected("per-window")
