"""Property battery for incremental view maintenance.

The algebra the operators rely on, pinned with hypothesis:

1. delta-in/delta-out ≡ recompute-from-scratch — folding any sequence
   of write-footprint deltas into a plan lands on exactly the value a
   full scan of the resulting state computes (every kind: filtered and
   grouped aggregates including min/max, top-k);
2. compaction — applying the last-writer-wins compaction of a delta
   sequence equals applying the sequence (absolute states commute with
   compaction);
3. duplicate delivery — re-applying any delta is a no-op;
4. tombstones — deletions flow through group aggregates (bucket
   retraction, group tombstones) and top-k (index eviction + backfill)
   without drift.

Values are ints so ``avg`` equality is exact: both paths divide the
same integer total by the same integer count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.views import TOMBSTONE, ViewSpec, compile_spec, recompute

KEYS = st.sampled_from([f"k{i}" for i in range(6)])
ROWS = st.fixed_dictionaries({
    "g": st.integers(0, 2),
    "v": st.integers(-100, 100),
})
#: One commit's write footprint: absolute post-states, or a tombstone.
DELTAS = st.dictionaries(
    KEYS, st.one_of(st.just(TOMBSTONE), ROWS), max_size=6)
SEQUENCES = st.lists(DELTAS, max_size=8)


def _positive(row):
    return row["v"] > 0


SPECS = [
    ViewSpec("count", "E", "count"),
    ViewSpec("count-filtered", "E", "count", where=_positive),
    ViewSpec("sum", "E", "sum", field="v"),
    ViewSpec("sum-grouped", "E", "sum", field="v", group_by="g"),
    ViewSpec("avg", "E", "avg", field="v"),
    ViewSpec("avg-grouped-filtered", "E", "avg", field="v",
             group_by="g", where=_positive),
    ViewSpec("top3", "E", "top_k", field="v", k=3),
    ViewSpec("min", "E", "min", field="v"),
    ViewSpec("max", "E", "max", field="v"),
    ViewSpec("min-grouped", "E", "min", field="v", group_by="g"),
    ViewSpec("max-grouped-filtered", "E", "max", field="v",
             group_by="g", where=_positive),
]
SPEC_IDS = st.integers(0, len(SPECS) - 1)


def _fold_state(sequence):
    """The committed store a delta sequence leaves behind (LWW)."""
    state = {}
    for delta in sequence:
        for key, row in delta.items():
            if row is TOMBSTONE:
                state.pop(key, None)
            else:
                state[key] = row
    return state


def _compact(sequence):
    """Last-writer-wins compaction of a sequence into one delta."""
    compacted = {}
    for delta in sequence:
        compacted.update(delta)
    return compacted


@given(SPEC_IDS, SEQUENCES)
@settings(max_examples=120, deadline=None)
def test_incremental_equals_recompute(spec_id, sequence):
    """Fold every delta in; the maintained value must be byte-equal to
    the full-scan oracle over the folded state — after *every* step,
    not just the last."""
    spec = SPECS[spec_id]
    compiled = compile_spec(spec)
    for prefix_end in range(1, len(sequence) + 1):
        compiled.apply(sequence[prefix_end - 1])
        state = _fold_state(sequence[:prefix_end])
        assert compiled.value() == recompute(spec, state.items())


@given(SPEC_IDS, SEQUENCES)
@settings(max_examples=100, deadline=None)
def test_compaction_equivalence(spec_id, sequence):
    spec = SPECS[spec_id]
    replayed = compile_spec(spec)
    for delta in sequence:
        replayed.apply(delta)
    compacted = compile_spec(spec)
    compacted.apply(_compact(sequence))
    assert replayed.value() == compacted.value()


@given(SPEC_IDS, SEQUENCES, DELTAS)
@settings(max_examples=100, deadline=None)
def test_duplicate_delivery_idempotent(spec_id, sequence, delta):
    """From any reachable view state, applying the same footprint twice
    equals applying it once (absolute states retract themselves)."""
    spec = SPECS[spec_id]
    once = compile_spec(spec)
    twice = compile_spec(spec)
    for prior in sequence:
        once.apply(prior)
        twice.apply(prior)
    once.apply(delta)
    twice.apply(delta)
    twice.apply(delta)
    assert once.value() == twice.value()


@given(SPEC_IDS, SEQUENCES)
@settings(max_examples=100, deadline=None)
def test_delete_everything_returns_to_empty(spec_id, sequence):
    """Tombstoning every live key must drain all operator memos — the
    value and the internal state both return to the empty baseline."""
    spec = SPECS[spec_id]
    compiled = compile_spec(spec)
    for delta in sequence:
        compiled.apply(delta)
    live = _fold_state(sequence)
    compiled.apply({key: TOMBSTONE for key in live})
    assert compiled.value() == recompute(spec, [])
    terminal = compiled.terminal
    if spec.kind == "top_k":
        assert terminal._rows == {} and len(terminal._index) == 0
    else:
        assert terminal._contrib == {} and terminal._groups == {}
        if terminal._ordered is not None:  # min/max ordered index
            assert len(terminal._ordered) == 0


@given(SEQUENCES)
@settings(max_examples=100, deadline=None)
def test_hydrate_equals_incremental(sequence):
    """Recovery's rewind path (hydrate from the restored store) must
    land exactly where incremental maintenance of the same history
    would have."""
    for spec in SPECS:
        incremental = compile_spec(spec)
        for delta in sequence:
            incremental.apply(delta)
        hydrated = compile_spec(spec)
        hydrated.hydrate(_fold_state(sequence).items())
        assert incremental.value() == hydrated.value()
