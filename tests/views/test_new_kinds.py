"""Batteries for the PR-10 view language: min/max aggregates, two-entity
foreign-key delta-joins, and tumbling-window aggregates.

Same algebra as ``test_operator_properties``, pinned per kind:

- min/max: incremental ≡ recompute after every delta — *including*
  retraction of the current extremum, where the ordered index must
  reveal the runner-up without a rescan;
- delta-joins: inserts/updates/deletes on either side land on exactly
  the oracle over the joint folded state (inner-join semantics:
  unmatched primary rows are invisible);
- windows: the maintained per-window result equals an independent
  shadow model that tracks each key's last-commit time — the oracle a
  store scan cannot provide, because rows carry no timestamps.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.views import (
    TOMBSTONE,
    DeltaJoin,
    GroupAggregate,
    OrderedGroupIndex,
    ViewError,
    ViewSpec,
    WindowedAggregate,
    compile_spec,
    recompute,
)

# ---------------------------------------------------------------------------
# min/max


KEYS = st.sampled_from([f"k{i}" for i in range(6)])
ROWS = st.fixed_dictionaries({
    "g": st.integers(0, 2),
    "v": st.integers(-100, 100),
})
DELTAS = st.dictionaries(KEYS, st.one_of(st.just(TOMBSTONE), ROWS),
                         max_size=6)
SEQUENCES = st.lists(DELTAS, max_size=8)


def _positive(row):
    return row["v"] > 0


MINMAX_SPECS = [
    ViewSpec("min", "E", "min", field="v"),
    ViewSpec("max", "E", "max", field="v"),
    ViewSpec("min-grouped", "E", "min", field="v", group_by="g"),
    ViewSpec("max-filtered", "E", "max", field="v", where=_positive),
]


def _fold_state(sequence):
    state = {}
    for delta in sequence:
        for key, row in delta.items():
            if row is TOMBSTONE:
                state.pop(key, None)
            else:
                state[key] = row
    return state


@given(st.integers(0, len(MINMAX_SPECS) - 1), SEQUENCES)
@settings(max_examples=120, deadline=None)
def test_minmax_incremental_equals_recompute(spec_id, sequence):
    spec = MINMAX_SPECS[spec_id]
    compiled = compile_spec(spec)
    for prefix_end in range(1, len(sequence) + 1):
        compiled.apply(sequence[prefix_end - 1])
        state = _fold_state(sequence[:prefix_end])
        assert compiled.value() == recompute(spec, state.items())


class TestExtremumRetraction:
    """The case the ordered index exists for: deleting (or moving) the
    current extremum must reveal the runner-up, not a stale value."""

    def test_deleting_the_minimum_reveals_the_runner_up(self):
        compiled = compile_spec(ViewSpec("m", "E", "min", field="v"))
        compiled.apply({"a": {"v": 3}, "b": {"v": 7}, "c": {"v": 5}})
        assert compiled.value() == 3
        out = compiled.apply({"a": TOMBSTONE})
        assert out == {None: 5}
        assert compiled.value() == 5

    def test_deleting_the_maximum_reveals_the_runner_up(self):
        compiled = compile_spec(ViewSpec("m", "E", "max", field="v"))
        compiled.apply({"a": {"v": 3}, "b": {"v": 7}, "c": {"v": 5}})
        out = compiled.apply({"b": TOMBSTONE})
        assert out == {None: 5}

    def test_moving_the_extremum_between_groups(self):
        compiled = compile_spec(
            ViewSpec("m", "E", "max", field="v", group_by="g"))
        compiled.apply({"a": {"g": 0, "v": 9}, "b": {"g": 0, "v": 2},
                        "c": {"g": 1, "v": 1}})
        out = compiled.apply({"a": {"g": 1, "v": 9}})
        assert out == {0: 2, 1: 9}

    def test_draining_a_group_tombstones_it(self):
        compiled = compile_spec(
            ViewSpec("m", "E", "min", field="v", group_by="g"))
        compiled.apply({"a": {"g": 0, "v": 4}})
        out = compiled.apply({"a": TOMBSTONE})
        assert out[0] is TOMBSTONE
        assert compiled.value() == {}

    def test_duplicate_scores_retract_the_right_entry(self):
        agg = GroupAggregate("min", value_of=lambda row: row["v"])
        agg.apply({"a": {"v": 5}, "b": {"v": 5}, "c": {"v": 9}})
        agg.apply({"a": TOMBSTONE})
        assert agg.result() == {None: 5}
        agg.apply({"b": TOMBSTONE})
        assert agg.result() == {None: 9}


class TestOrderedGroupIndex:
    def test_per_group_extremes(self):
        index = OrderedGroupIndex()
        index.add("g1", 5, "a")
        index.add("g1", 3, "b")
        index.add("g2", 7, "c")
        assert index.smallest("g1")[0] == 3
        assert index.largest("g1")[0] == 5
        assert index.smallest("g2")[0] == 7
        assert index.smallest("nope") is None

    def test_remove_drops_empty_groups(self):
        index = OrderedGroupIndex()
        index.add("g", 1, "a")
        index.remove("g", 1, "a")
        assert index.smallest("g") is None
        assert len(index) == 0

    def test_top_orders_highest_first_with_key_tiebreak(self):
        index = OrderedGroupIndex()
        for key, value in [("z", 5), ("a", 5), ("m", 9)]:
            index.add(None, value, key)
        assert [entry[2] for entry in index.top(None, 3)] == ["m", "a", "z"]

    def test_rebuild_matches_incremental_insertion(self):
        entries = [("g", (i * 7) % 5, f"k{i}") for i in range(20)]
        incremental = OrderedGroupIndex()
        for group, value, key in entries:
            incremental.add(group, value, key)
        bulk = OrderedGroupIndex()
        bulk.rebuild(entries)
        assert bulk._entries == incremental._entries


# ---------------------------------------------------------------------------
# delta-joins


CUSTOMERS = st.sampled_from(["c0", "c1", "c2"])
ORDER_ROWS = st.fixed_dictionaries({
    "customer_id": CUSTOMERS,
    "amount": st.integers(0, 50),
})
CUSTOMER_ROWS = st.fixed_dictionaries({"tier": st.integers(0, 2)})
ORDER_KEYS = st.sampled_from([f"o{i}" for i in range(5)])
ORDER_DELTAS = st.dictionaries(
    ORDER_KEYS, st.one_of(st.just(TOMBSTONE), ORDER_ROWS), max_size=4)
CUSTOMER_DELTAS = st.dictionaries(
    CUSTOMERS, st.one_of(st.just(TOMBSTONE), CUSTOMER_ROWS), max_size=3)
JOIN_SEQUENCES = st.lists(st.tuples(ORDER_DELTAS, CUSTOMER_DELTAS),
                          max_size=8)


def _premium(row):
    return row["Customer__tier"] > 0


JOIN_SPECS = [
    ViewSpec("joined-count", "Order", "count",
             join_entity="Customer", join_on="customer_id"),
    ViewSpec("amount-by-tier", "Order", "sum", field="amount",
             group_by="Customer__tier",
             join_entity="Customer", join_on="customer_id"),
    ViewSpec("premium-max", "Order", "max", field="amount",
             where=_premium, join_entity="Customer", join_on="customer_id"),
    ViewSpec("top2-joined", "Order", "top_k", field="amount", k=2,
             join_entity="Customer", join_on="customer_id"),
]


@given(st.integers(0, len(JOIN_SPECS) - 1), JOIN_SEQUENCES)
@settings(max_examples=100, deadline=None)
def test_join_incremental_equals_recompute(spec_id, sequence):
    """Insert/update/delete on either side, folded incrementally, lands
    on the oracle over the joint folded state after every step."""
    spec = JOIN_SPECS[spec_id]
    compiled = compile_spec(spec)
    for prefix_end in range(1, len(sequence) + 1):
        left_delta, right_delta = sequence[prefix_end - 1]
        compiled.apply_batch({"Order": left_delta,
                              "Customer": right_delta})
        left = _fold_state([left for left, _ in sequence[:prefix_end]])
        right = _fold_state([right for _, right in sequence[:prefix_end]])
        assert compiled.value() == recompute(
            spec, left.items(), join_items=right.items())


class TestDeltaJoin:
    def _join(self):
        return DeltaJoin(on="customer_id", prefix="Customer")

    def test_unmatched_primary_row_is_invisible(self):
        join = self._join()
        out = join.apply({"o1": {"customer_id": "c1", "amount": 5}}, {})
        assert out["o1"] is TOMBSTONE

    def test_partner_arrival_materializes_the_row(self):
        join = self._join()
        join.apply({"o1": {"customer_id": "c1", "amount": 5}}, {})
        out = join.apply({}, {"c1": {"tier": 2}})
        assert out["o1"] == {"customer_id": "c1", "amount": 5,
                             "Customer__tier": 2}

    def test_partner_deletion_retracts_every_referencing_row(self):
        join = self._join()
        join.apply({"o1": {"customer_id": "c1", "amount": 5},
                    "o2": {"customer_id": "c1", "amount": 7}},
                   {"c1": {"tier": 1}})
        out = join.apply({}, {"c1": TOMBSTONE})
        assert out["o1"] is TOMBSTONE and out["o2"] is TOMBSTONE
        assert join.result() == {}

    def test_fk_move_follows_the_new_partner(self):
        join = self._join()
        join.apply({"o1": {"customer_id": "c1", "amount": 5}},
                   {"c1": {"tier": 1}, "c2": {"tier": 2}})
        out = join.apply({"o1": {"customer_id": "c2", "amount": 5}}, {})
        assert out["o1"]["Customer__tier"] == 2

    def test_same_batch_insert_of_both_sides_joins(self):
        join = self._join()
        out = join.apply({"o1": {"customer_id": "c1", "amount": 5}},
                         {"c1": {"tier": 3}})
        assert out["o1"]["Customer__tier"] == 3

    def test_missing_fk_field_raises_without_corruption(self):
        join = self._join()
        join.apply({"o1": {"customer_id": "c1", "amount": 5}},
                   {"c1": {"tier": 1}})
        before = join.result()
        with pytest.raises(ViewError, match="foreign-key"):
            join.apply({"o2": {"amount": 9}}, {})
        assert join.result() == before


class TestJoinSpecValidation:
    def test_join_on_required_with_join_entity(self):
        with pytest.raises(ViewError, match="join_on"):
            ViewSpec("v", "Order", "count",
                     join_entity="Customer").validated()

    def test_join_entity_required_with_join_on(self):
        with pytest.raises(ViewError, match="join_entity"):
            ViewSpec("v", "Order", "count",
                     join_on="customer_id").validated()


# ---------------------------------------------------------------------------
# tumbling windows


WINDOW_MS = 100.0
TIMES = st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False,
                  allow_infinity=False)
TIMED_SEQUENCES = st.lists(st.tuples(DELTAS, TIMES), max_size=8)

WINDOW_SPECS = [
    ViewSpec("w-count", "E", "count", window_ms=WINDOW_MS),
    ViewSpec("w-sum", "E", "sum", field="v", window_ms=WINDOW_MS),
    ViewSpec("w-max", "E", "max", field="v", window_ms=WINDOW_MS),
    ViewSpec("w-avg-filtered", "E", "avg", field="v", where=_positive,
             window_ms=WINDOW_MS),
]


def _window_of(at_ms):
    return math.floor(at_ms / WINDOW_MS) * WINDOW_MS


def _shadow_value(spec, contributions):
    """Independent oracle over ``{key: (window, row)}`` — each key's
    latest surviving commit, grouped by its commit-time window."""
    grouped = {}
    for window, row in contributions.values():
        if spec.where is not None and not spec.where(row):
            continue
        grouped.setdefault(window, []).append(row.get("v"))
    out = {}
    for window, values in grouped.items():
        if spec.kind == "count":
            out[window] = len(values)
        elif spec.kind == "sum":
            out[window] = sum(values)
        elif spec.kind == "avg":
            out[window] = sum(values) / len(values)
        elif spec.kind == "min":
            out[window] = min(values)
        else:
            out[window] = max(values)
    return out


@given(st.integers(0, len(WINDOW_SPECS) - 1), TIMED_SEQUENCES)
@settings(max_examples=100, deadline=None)
def test_window_tracks_last_commit_time(spec_id, sequence):
    """Each key contributes to the window of its *latest* commit; a
    later commit moves the key (retracting the old window), a tombstone
    removes it.  Checked against the shadow model after every delta."""
    spec = WINDOW_SPECS[spec_id]
    compiled = compile_spec(spec)
    contributions = {}
    for delta, at_ms in sequence:
        compiled.apply(delta, at_ms=at_ms)
        for key, row in delta.items():
            if row is TOMBSTONE:
                contributions.pop(key, None)
            else:
                contributions[key] = (_window_of(at_ms), row)
        assert compiled.value() == _shadow_value(spec, contributions)


class TestWindowedAggregate:
    def test_keys_land_in_their_commit_window(self):
        compiled = compile_spec(
            ViewSpec("w", "E", "count", window_ms=100.0))
        compiled.apply({"a": {"v": 1}}, at_ms=50.0)
        compiled.apply({"b": {"v": 1}}, at_ms=250.0)
        assert compiled.value() == {0.0: 1, 200.0: 1}

    def test_recommit_moves_the_key_to_the_new_window(self):
        compiled = compile_spec(
            ViewSpec("w", "E", "sum", field="v", window_ms=100.0))
        compiled.apply({"a": {"v": 7}}, at_ms=50.0)
        out = compiled.apply({"a": {"v": 9}}, at_ms=350.0)
        assert out[0.0] is TOMBSTONE and out[300.0] == 9
        assert compiled.value() == {300.0: 9}

    def test_no_clock_collapses_to_window_zero(self):
        operator = WindowedAggregate("count", 100.0)
        operator.apply({"a": {"v": 1}})
        assert operator.result() == {0.0: 1}

    def test_window_ms_must_be_positive(self):
        with pytest.raises(ViewError, match="window_ms > 0"):
            ViewSpec("w", "E", "count", window_ms=0).validated()

    def test_windowed_top_k_rejected(self):
        with pytest.raises(ViewError, match="aggregate kind"):
            ViewSpec("w", "E", "top_k", field="v", k=3,
                     window_ms=10.0).validated()

    def test_windowed_group_by_rejected(self):
        with pytest.raises(ViewError, match="window is the group"):
            ViewSpec("w", "E", "count", group_by="g",
                     window_ms=10.0).validated()


class TestMinMaxSpecValidation:
    @pytest.mark.parametrize("kind", ["min", "max"])
    def test_field_required(self, kind):
        with pytest.raises(ViewError, match="needs field="):
            ViewSpec("v", "E", kind).validated()
