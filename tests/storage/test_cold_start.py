"""Cold-start battery: durable runs are observationally identical to
in-memory runs, and a process death — simulated or a real SIGKILL —
loses nothing the stores called durable.

The equivalence leg reuses the PR-5 battery's deterministic
configuration (150 ms cuts, a base every 3) so crashes land at
interesting chain positions; the disk must be a pure side effect of
exactly the same run.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import verify_history
from repro.faults import random_plan
from repro.query import QueryEngine, ViewSpec
from repro.runtimes.state import TOMBSTONE, apply_flat_writes, \
    materialize_snapshot
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.storage import FileChangelogStore, FileSnapshotStore
from repro.substrates.simulation import Simulation
from repro.views import ViewManager
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload

BACKENDS = ("dict", "cow")
MODES = ("full", "incremental")
SNAPSHOT_INTERVAL_MS = 150.0
BASE_EVERY = 3


def run_once(mode, backend, *, seed=11, durability_dir=None,
             fault_plan=None, rps=150.0, duration_ms=1_500.0, records=24):
    config = StateflowConfig(
        workers=3, state_backend=backend, snapshot_mode=mode,
        pipeline_depth=2, fault_plan=fault_plan,
        durability_dir=durability_dir,
        coordinator=CoordinatorConfig(
            snapshot_interval_ms=SNAPSHOT_INTERVAL_MS,
            failure_detect_ms=200.0,
            snapshot_base_every=BASE_EVERY))
    runtime = StateflowRuntime(run_once.program, sim=Simulation(seed=seed),
                               config=config)
    trace = []
    runtime.reply_tap = lambda reply: trace.append(
        (reply.request_id, repr(reply.payload), reply.error))
    workload = YcsbWorkload("T", record_count=records,
                            distribution="uniform", seed=seed + 1,
                            initial_balance=1_000)
    runtime.preload(Account, workload.dataset_rows())
    runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=rps, duration_ms=duration_ms, warmup_ms=0.0,
        drain_ms=25_000.0, seed=seed + 2))
    result = driver.run()
    runtime.sim.run(until=runtime.sim.now + 25_000.0)
    state = materialize_snapshot(runtime.committed.snapshot())
    return (trace, state, runtime, result.sent, driver.completed, workload)


@pytest.fixture(autouse=True)
def _program(account_program):
    run_once.program = account_program


def reopen_stores(directory):
    """A cold start: fresh store objects over the surviving files only."""
    snapshots = FileSnapshotStore(directory, mode="incremental",
                                  base_every=BASE_EVERY)
    changelog = FileChangelogStore(directory)
    return snapshots, changelog


class TestDurableRunsAreInvisible:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mode", MODES)
    def test_traces_byte_identical_to_in_memory(self, tmp_path, mode,
                                                backend):
        memory = run_once(mode, backend)
        durable = run_once(mode, backend,
                           durability_dir=str(tmp_path / mode / backend))
        assert memory[0] == durable[0], "reply traces diverged"
        assert memory[1] == durable[1], "final committed state diverged"
        trace, state, _, sent, completed, workload = durable
        problems = verify_history(sent=sent, completed=completed,
                                  trace=trace, state=state,
                                  workload=workload, workload_name="T")
        assert problems == [], problems
        # The run really did hit the disk.
        coordinator = durable[2].coordinator
        assert coordinator.snapshots.bytes_written > 0
        if mode == "incremental":
            assert coordinator.changelog.bytes_written > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_durable_recovery_equals_in_memory_recovery(self, tmp_path,
                                                        backend):
        """Crashes under a chaos plan: the replies of the durable run
        must stay byte-identical through recovery itself."""
        plan = random_plan(23, duration_ms=1_500.0, workers=3,
                           coordinator_faults=True)
        memory = run_once("incremental", backend, fault_plan=plan, seed=23)
        durable = run_once("incremental", backend, fault_plan=plan, seed=23,
                           durability_dir=str(tmp_path / backend))
        assert durable[2].coordinator.recoveries >= 1
        assert memory[0] == durable[0]
        assert memory[1] == durable[1]


class TestColdStart:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cold_reopen_resolves_the_live_state(self, tmp_path, backend):
        durable = run_once("incremental", backend,
                           durability_dir=str(tmp_path))
        coordinator = durable[2].coordinator
        live_snapshot, live_payload = \
            coordinator.snapshots.latest_recoverable(coordinator.changelog)
        live_state = materialize_snapshot(live_payload)

        cold_snapshots, cold_changelog = reopen_stores(tmp_path)
        cold_snapshot, cold_payload = cold_snapshots.latest_recoverable(
            cold_changelog)
        assert cold_snapshot.snapshot_id == live_snapshot.snapshot_id
        assert materialize_snapshot(cold_payload) == live_state
        assert cold_changelog.head_seq == coordinator.changelog.head_seq
        cold_changelog.close()

    def test_rewind_survives_the_cold_start(self, tmp_path):
        """A recovery rewinds the changelog; the dropped suffix must be
        gone from disk too, not just from the dying process's memory."""
        plan = random_plan(23, duration_ms=1_500.0, workers=3,
                           coordinator_faults=True)
        durable = run_once("incremental", "dict", fault_plan=plan, seed=23,
                           durability_dir=str(tmp_path))
        live = durable[2].coordinator.changelog
        assert durable[2].coordinator.recoveries >= 1
        assert live.rewound > 0, "the plan must actually force a rewind"

        _, cold_changelog = reopen_stores(tmp_path)
        assert cold_changelog.head_seq == live.head_seq
        assert ([r.seq for r in cold_changelog._records]
                == [r.seq for r in live._records])
        cold_changelog.close()


VIEW_SPECS = [
    ViewSpec("total", "Account", "sum", field="balance"),
    ViewSpec("poorest", "Account", "min", field="balance"),
    ViewSpec("top3", "Account", "top_k", field="balance", k=3),
    ViewSpec("by-window", "Account", "count", window_ms=400.0),
]


class _FlatStore:
    """The backend-agnostic scan surface over a materialized flat
    ``{(entity, key): state}`` mapping — what a cold process has after
    resolving a cut and rolling the changelog suffix forward."""

    def __init__(self, state):
        self._state = state

    def keys(self):
        return list(self._state)

    def get(self, entity, key):
        state = self._state.get((entity, key))
        return dict(state) if state is not None else None


def cold_start_views(directory, specs):
    """The cold-start recipe for views: resolve the latest recoverable
    cut, roll the changelog suffix over the payload, then resume the
    views from the cut's sidecar + the same suffix."""
    snapshots, changelog = reopen_stores(directory)
    snapshot, payload = snapshots.latest_recoverable(changelog)
    suffix = changelog.records_between(snapshot.changelog_seq,
                                       changelog.head_seq)
    assert suffix is not None, "the recovered chain must be contiguous"
    state = materialize_snapshot(payload)
    for record in suffix:
        state = apply_flat_writes(state, record.writes)
    state = {composite: row for composite, row in state.items()
             if row is not TOMBSTONE}
    manager = ViewManager(_FlatStore(state))
    manager.attach_recovery(getattr(snapshot, "views_state", None), suffix)
    for spec in specs:
        manager.register(spec)
    manager.detach_recovery()
    changelog.close()
    return manager, state


def canonical(value):
    """Order-insensitive repr for cross-process view comparison (dict
    insertion order differs between a live run and a restore)."""
    if isinstance(value, dict):
        return repr(sorted(value.items(), key=repr))
    return repr(value)


class TestDurableViewsColdStart:
    def _durable_run_with_views(self, directory):
        config = StateflowConfig(
            workers=3, state_backend="dict", snapshot_mode="incremental",
            pipeline_depth=2, durability_dir=str(directory),
            coordinator=CoordinatorConfig(
                snapshot_interval_ms=SNAPSHOT_INTERVAL_MS,
                failure_detect_ms=200.0,
                snapshot_base_every=BASE_EVERY))
        runtime = StateflowRuntime(run_once.program,
                                   sim=Simulation(seed=11), config=config)
        workload = YcsbWorkload("T", record_count=24,
                                distribution="uniform", seed=12,
                                initial_balance=1_000)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        engine = QueryEngine(runtime)
        for spec in VIEW_SPECS:
            engine.register_view(spec)
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=150.0, duration_ms=1_500.0, warmup_ms=0.0,
            drain_ms=25_000.0, seed=13))
        driver.run()
        runtime.sim.run(until=runtime.sim.now + 25_000.0)
        return runtime

    def test_cold_start_resumes_views_without_a_scan(self, tmp_path):
        """The full durable loop: run with views, quiesce, reopen the
        *files* in a fresh manager, and resume every view — including
        the windowed one no scan could rebuild — from the cut's sidecar
        plus the changelog suffix.  Zero rehydrations, byte-identical
        values."""
        runtime = self._durable_run_with_views(tmp_path)
        live_values = {name: runtime.views.read(name).value
                       for name in runtime.views.names()}
        runtime.coordinator.changelog.close()

        manager, state = cold_start_views(tmp_path, VIEW_SPECS)
        assert manager.rehydrations == 0, (
            "a sidecar-covered cold start must not rescan the store")
        assert manager.sidecar_restores == len(VIEW_SPECS)
        cold_values = {name: manager.read(name).value
                       for name in manager.names()}
        assert cold_values == live_values, (
            "cold-started views must be byte-identical to the live ones")

        # Control: scan hydration agrees wherever a scan *can* answer,
        # and provably cannot for the windowed view.
        control = ViewManager(_FlatStore(state))
        for spec in VIEW_SPECS:
            if spec.window_ms is None:
                control.register(spec)
        for name in control.names():
            assert control.read(name).value == cold_values[name]
        assert len(cold_values["by-window"]) > 1, (
            "the run must spread commits over multiple windows")


#: The child runs a deterministic durable workload, reports what its
#: stores say is recoverable, then dies by real SIGKILL mid-breath —
#: no atexit, no flush, no orderly close.
_CHILD = """
import json, os, signal, sys
from repro.compiler.pipeline import compile_program
from repro.runtimes.state import materialize_snapshot
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.substrates.simulation import Simulation
from repro.workloads import Account, DriverConfig, WorkloadDriver, \\
    YcsbWorkload

durable, report = sys.argv[1], sys.argv[2]
config = StateflowConfig(
    workers=3, state_backend="dict", snapshot_mode="incremental",
    pipeline_depth=2, durability_dir=durable,
    coordinator=CoordinatorConfig(
        snapshot_interval_ms=150.0, failure_detect_ms=200.0,
        snapshot_base_every=3))
runtime = StateflowRuntime(compile_program([Account]),
                           sim=Simulation(seed=11), config=config)
workload = YcsbWorkload("T", record_count=16, distribution="uniform",
                        seed=12, initial_balance=1_000)
runtime.preload(Account, workload.dataset_rows())
runtime.start()
driver = WorkloadDriver(runtime, workload, DriverConfig(
    rps=150.0, duration_ms=1_000.0, warmup_ms=0.0, drain_ms=20_000.0,
    seed=13))
driver.run()
runtime.sim.run(until=runtime.sim.now + 20_000.0)
coordinator = runtime.coordinator
snapshot, payload = coordinator.snapshots.latest_recoverable(
    coordinator.changelog)
state = materialize_snapshot(payload)
with open(report, "w") as handle:
    json.dump({"snapshot_id": snapshot.snapshot_id,
               "head_seq": coordinator.changelog.head_seq,
               "state": repr(sorted(state.items(), key=repr))}, handle)
    handle.flush()
    os.fsync(handle.fileno())
os.kill(os.getpid(), signal.SIGKILL)
"""


class TestRealKill:
    def test_sigkill_loses_nothing_durable(self, tmp_path):
        durable = tmp_path / "durable"
        report = tmp_path / "report.json"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.run(
            [sys.executable, "-c", _CHILD, str(durable), str(report)],
            env=env, capture_output=True, text=True, timeout=300)
        assert child.returncode == -signal.SIGKILL, child.stderr
        dying_words = json.loads(report.read_text(encoding="utf-8"))

        cold_snapshots, cold_changelog = reopen_stores(durable)
        snapshot, payload = cold_snapshots.latest_recoverable(cold_changelog)
        state = materialize_snapshot(payload)
        assert snapshot.snapshot_id == dying_words["snapshot_id"]
        assert cold_changelog.head_seq == dying_words["head_seq"]
        assert repr(sorted(state.items(), key=repr)) == dying_words["state"]
        cold_changelog.close()


#: Same shape as _CHILD, but with the PR-10 view set registered: the
#: dying words are the views' values, so the parent can diff them
#: against a files-only cold start.
_CHILD_VIEWS = """
import json, os, signal, sys
from repro.compiler.pipeline import compile_program
from repro.query import QueryEngine, ViewSpec
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.substrates.simulation import Simulation
from repro.workloads import Account, DriverConfig, WorkloadDriver, \\
    YcsbWorkload

durable, report = sys.argv[1], sys.argv[2]
config = StateflowConfig(
    workers=3, state_backend="dict", snapshot_mode="incremental",
    pipeline_depth=2, durability_dir=durable,
    coordinator=CoordinatorConfig(
        snapshot_interval_ms=150.0, failure_detect_ms=200.0,
        snapshot_base_every=3))
runtime = StateflowRuntime(compile_program([Account]),
                           sim=Simulation(seed=11), config=config)
workload = YcsbWorkload("T", record_count=16, distribution="uniform",
                        seed=12, initial_balance=1_000)
runtime.preload(Account, workload.dataset_rows())
runtime.start()
engine = QueryEngine(runtime)
for spec in [ViewSpec("total", "Account", "sum", field="balance"),
             ViewSpec("poorest", "Account", "min", field="balance"),
             ViewSpec("top3", "Account", "top_k", field="balance", k=3),
             ViewSpec("by-window", "Account", "count", window_ms=400.0)]:
    engine.register_view(spec)
driver = WorkloadDriver(runtime, workload, DriverConfig(
    rps=150.0, duration_ms=1_000.0, warmup_ms=0.0, drain_ms=20_000.0,
    seed=13))
driver.run()
runtime.sim.run(until=runtime.sim.now + 20_000.0)


def canonical(value):
    if isinstance(value, dict):
        return repr(sorted(value.items(), key=repr))
    return repr(value)


values = {name: canonical(runtime.views.read(name).value)
          for name in runtime.views.names()}
with open(report, "w") as handle:
    json.dump(values, handle)
    handle.flush()
    os.fsync(handle.fileno())
os.kill(os.getpid(), signal.SIGKILL)
"""


class TestRealKillPreservesViews:
    def test_view_values_identical_across_sigkill_cold_start(self,
                                                             tmp_path):
        """A real SIGKILL, then a files-only cold start of the views:
        every value — including the windowed one — must match the dying
        process's last reads, with zero store rescans."""
        durable = tmp_path / "durable"
        report = tmp_path / "report.json"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.run(
            [sys.executable, "-c", _CHILD_VIEWS, str(durable), str(report)],
            env=env, capture_output=True, text=True, timeout=300)
        assert child.returncode == -signal.SIGKILL, child.stderr
        dying_words = json.loads(report.read_text(encoding="utf-8"))

        manager, _ = cold_start_views(durable, [
            ViewSpec("total", "Account", "sum", field="balance"),
            ViewSpec("poorest", "Account", "min", field="balance"),
            ViewSpec("top3", "Account", "top_k", field="balance", k=3),
            ViewSpec("by-window", "Account", "count", window_ms=400.0)])
        assert manager.rehydrations == 0
        assert manager.sidecar_restores == 4
        cold = {name: canonical(manager.read(name).value)
                for name in manager.names()}
        assert cold == dying_words


@pytest.mark.slow
class TestRealKillOnProcessSubstrate:
    def test_worker_sigkill_with_durable_stores(self, tmp_path,
                                                account_program):
        """Real worker processes, a real mid-history kill, real files:
        the history stays exact and a cold reopen of the durability
        directory resolves what the live coordinator resolves."""
        config = StateflowConfig(
            spawner="process", workers=3, exec_service_ms=0.0,
            state_op_ms=0.0, snapshot_mode="incremental",
            durability_dir=str(tmp_path),
            coordinator=CoordinatorConfig(
                conflict_check_ms_per_txn=0.0, dispatch_ms_per_txn=0.0,
                failure_detect_ms=2_000.0, snapshot_interval_ms=500.0,
                snapshot_base_every=3))
        runtime = StateflowRuntime(account_program, config=config)
        try:
            (ref,) = runtime.preload(Account, [("hot", 0)])
            runtime.start()
            increments = [1 + (i % 9) for i in range(30)]
            replies = []

            def submit(amount):
                runtime.submit(ref, "add", (amount,),
                               on_reply=lambda r: replies.append(
                                   r.request_id))

            for amount in increments[:10]:
                submit(amount)
            runtime.sim.run_until(lambda: len(replies) >= 5,
                                  max_time=runtime.sim.now + 90_000.0)
            runtime.fail_worker(1)  # a real SIGKILL under the hood
            for amount in increments[10:]:
                submit(amount)
            expected = sum(increments)
            assert runtime.sim.run_until(
                lambda: (runtime.entity_state(ref) or {}).get("balance")
                == expected and len(replies) >= len(increments),
                max_time=runtime.sim.now + 90_000.0)
            coordinator = runtime.coordinator
            live_snapshot, live_payload = \
                coordinator.snapshots.latest_recoverable(
                    coordinator.changelog)
            live_state = materialize_snapshot(live_payload)
        finally:
            runtime.close()

        cold_snapshots, cold_changelog = reopen_stores(tmp_path)
        cold_snapshot, cold_payload = cold_snapshots.latest_recoverable(
            cold_changelog)
        assert cold_snapshot.snapshot_id == live_snapshot.snapshot_id
        assert materialize_snapshot(cold_payload) == live_state
        cold_changelog.close()
