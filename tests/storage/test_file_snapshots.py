"""File-backed snapshot store: cut persistence, chain cadence across
restarts, pruning on disk, corrupt-cut handling, changelog repair after
a cold start, and layout versioning/migration."""

import json
import shutil

import pytest

from repro.runtimes.state import StateDelta
from repro.storage import (FileChangelogStore, FileSnapshotStore,
                           StorageError, read_manifest, open_layout)
from repro.storage.manifest import FORMAT_VERSION

#: The coordinator-owned consistency metadata every cut carries; these
#: tests exercise the store, not the coordinator, so minimal values do.
META = dict(source_offsets={}, replied=set(), batch_seq=0, arrival_seq=0)


def state_v(v):
    return {("Account", "x"): {"v": v}}


def delta_v(v):
    return StateDelta(layers=(state_v(v),))


class TestRoundTrip:
    def test_take_close_reopen_resolves_the_same_payload(self, tmp_path):
        store = FileSnapshotStore(tmp_path, mode="incremental", base_every=3)
        store.take(taken_at_ms=0.0, state=state_v(0), kind="base",
                   changelog_seq=-1, **META)
        store.take(taken_at_ms=10.0, state=delta_v(1), kind="delta",
                   changelog_seq=0, **META)

        reopened = FileSnapshotStore(tmp_path, mode="incremental",
                                     base_every=3)
        assert reopened.loaded == 2
        latest = reopened.latest()
        assert (latest.snapshot_id, latest.kind, latest.parent_id,
                latest.taken_at_ms) == (1, "delta", 0, 10.0)
        assert reopened.resolve(latest) == state_v(1)
        # The bench-facing ledger survives too.
        assert [(c.snapshot_id, c.kind) for c in reopened.cut_log] == [
            (0, "base"), (1, "delta")]

    def test_chain_cadence_continues_across_restarts(self, tmp_path):
        store = FileSnapshotStore(tmp_path, mode="incremental", base_every=3)
        store.take(taken_at_ms=0.0, state=state_v(0), kind="base",
                   changelog_seq=-1, **META)
        store.take(taken_at_ms=1.0, state=delta_v(1), kind="delta",
                   changelog_seq=-1, **META)
        assert store.next_kind() == "delta"

        reopened = FileSnapshotStore(tmp_path, mode="incremental",
                                     base_every=3)
        # base + one delta so far: one more delta, then re-anchor.
        assert reopened.next_kind() == "delta"
        reopened.take(taken_at_ms=2.0, state=delta_v(2), kind="delta",
                      changelog_seq=-1, **META)
        assert reopened.next_kind() == "base"

    def test_id_counter_survives_even_a_full_prune(self, tmp_path):
        store = FileSnapshotStore(tmp_path, mode="full")
        store.take(taken_at_ms=0.0, state=state_v(0), kind="full",
                   changelog_seq=-1, **META)
        store.prune(0)
        reopened = FileSnapshotStore(tmp_path, mode="full")
        taken = reopened.take(taken_at_ms=1.0, state=state_v(1),
                              kind="full", changelog_seq=-1, **META)
        # Ids must never be reused: a stale cut-0 file from a slow
        # unlink or a backup could otherwise shadow a new cut.
        assert taken.snapshot_id == 1


class TestPruning:
    def test_auto_prune_unlinks_fallen_cut_files(self, tmp_path):
        store = FileSnapshotStore(tmp_path, mode="full", keep=2)
        for n in range(5):
            store.take(taken_at_ms=float(n), state=state_v(n), kind="full",
                       changelog_seq=-1, **META)
        names = sorted(p.name for p in
                       (tmp_path / "snapshots").glob("cut-*.bin"))
        assert names == ["cut-0000000003.bin", "cut-0000000004.bin"]

    def test_explicit_prune_unlinks_the_file(self, tmp_path):
        store = FileSnapshotStore(tmp_path, mode="full", keep=4)
        for n in range(2):
            store.take(taken_at_ms=float(n), state=state_v(n), kind="full",
                       changelog_seq=-1, **META)
        store.prune(0)
        assert not (tmp_path / "snapshots" / "cut-0000000000.bin").exists()
        assert (tmp_path / "snapshots" / "cut-0000000001.bin").exists()


class TestCorruption:
    def test_unreadable_cut_is_dropped_not_fatal(self, tmp_path):
        store = FileSnapshotStore(tmp_path, mode="full")
        for n in range(2):
            store.take(taken_at_ms=float(n), state=state_v(n), kind="full",
                       changelog_seq=-1, **META)
        newest = tmp_path / "snapshots" / "cut-0000000001.bin"
        newest.write_bytes(b"SF\x00\x00\x00\x09garbage!!")

        reopened = FileSnapshotStore(tmp_path, mode="full")
        assert reopened.dropped_unreadable == 1
        assert not newest.exists()
        assert reopened.latest().snapshot_id == 0
        assert reopened.resolve(reopened.latest()) == state_v(0)

    def test_torn_ledger_tail_is_truncated(self, tmp_path):
        store = FileSnapshotStore(tmp_path, mode="full")
        store.take(taken_at_ms=0.0, state=state_v(0), kind="full",
                   changelog_seq=-1, **META)
        ledger = tmp_path / "snapshots" / "ledger.log"
        intact = ledger.stat().st_size
        with open(ledger, "ab") as handle:
            handle.write(b"SF\xff\xff")
        reopened = FileSnapshotStore(tmp_path, mode="full")
        assert len(reopened.cut_log) == 1
        assert ledger.stat().st_size == intact


class TestRepairAfterColdStart:
    def test_torn_delta_repairs_through_reopened_changelog(self, tmp_path):
        snapshots = FileSnapshotStore(tmp_path, mode="incremental",
                                      base_every=4)
        changelog = FileChangelogStore(tmp_path)
        snapshots.take(taken_at_ms=0.0, state=state_v(0), kind="base",
                       changelog_seq=changelog.head_seq, **META)
        changelog.append(0, state_v(1), at_ms=10.0)
        snapshots.arm_torn("drop")
        snapshots.take(taken_at_ms=10.0, state=delta_v(1), kind="delta",
                       changelog_seq=changelog.head_seq, **META)
        live_snapshot, live_payload = snapshots.latest_recoverable(changelog)
        assert live_snapshot.snapshot_id == 1
        assert live_payload == state_v(1)
        assert snapshots.changelog_repairs == 1
        changelog.close()

        cold_snapshots = FileSnapshotStore(tmp_path, mode="incremental",
                                           base_every=4)
        cold_changelog = FileChangelogStore(tmp_path)
        cold_snapshot, cold_payload = cold_snapshots.latest_recoverable(
            cold_changelog)
        # The tear survives persistence — and so does its repair.
        assert cold_snapshot.snapshot_id == 1
        assert cold_payload == state_v(1)
        assert cold_snapshots.changelog_repairs == 1
        cold_changelog.close()


class TestLayoutVersioning:
    def _make_v0(self, tmp_path):
        """Fabricate the flat v0 prototype layout: everything in the
        root, no manifest."""
        staging = tmp_path / "staging"
        snapshots = FileSnapshotStore(staging, mode="full")
        snapshots.take(taken_at_ms=0.0, state=state_v(0), kind="full",
                       changelog_seq=-1, **META)
        changelog = FileChangelogStore(staging)
        changelog.append(0, state_v(1), at_ms=10.0)
        changelog.close()
        root = tmp_path / "v0"
        root.mkdir()
        for path in (staging / "changelog").glob("segment-*.log"):
            shutil.move(path, root / path.name)
        for path in (staging / "snapshots").iterdir():
            shutil.move(path, root / path.name)
        return root

    def test_v0_layout_is_migrated_forward(self, tmp_path):
        root = self._make_v0(tmp_path)
        snapshots = FileSnapshotStore(root, mode="full")
        changelog = FileChangelogStore(root)
        assert snapshots.loaded == 1
        assert snapshots.resolve(snapshots.latest()) == state_v(0)
        assert changelog.loaded == 1
        assert changelog._records[0].writes == state_v(1)
        assert read_manifest(open_layout(root))["format_version"] \
            == FORMAT_VERSION
        # Migrated files live in the split subdirectories now.
        assert not list(root.glob("segment-*.log"))
        assert not list(root.glob("cut-*.bin"))
        # The v1 cut-frame migration ran too: the sidecar slot is
        # materialized, not merely absent.
        assert snapshots.latest().views_state is None
        changelog.close()

    def test_v1_cut_frames_gain_the_sidecar_slot(self, tmp_path):
        """A v1 directory's cut pickles predate ``Snapshot.views_state``
        (a slots dataclass: the attribute is *missing*, not None); the
        v1 -> v2 migration must rewrite them so every retained cut
        answers ``views_state`` without blowing up."""
        import pickle

        store = FileSnapshotStore(tmp_path, mode="full")
        store.take(taken_at_ms=0.0, state=state_v(0), kind="full",
                   changelog_seq=-1, **META)
        # Fabricate a v1 frame: strip the slot from the pickled state
        # and stamp the manifest back to version 1.
        layout = open_layout(tmp_path)
        [cut_path] = layout.cut_files()
        snapshot = store.latest()

        class _V1Snapshot:
            """Pickles as a Snapshot whose state dict lacks the slot."""

            def __reduce__(self):
                import copyreg

                from repro.runtimes.stateflow.snapshots import Snapshot
                state = snapshot.__reduce_ex__(2)[2]
                slots = dict(state[1])
                slots.pop("views_state", None)
                return (copyreg._reconstructor,
                        (Snapshot, object, None), (state[0], slots))

        from repro.substrates.wire import encode_frame
        cut_path.write_bytes(encode_frame(_V1Snapshot()))
        manifest = json.loads(layout.manifest_path.read_text())
        manifest["format_version"] = 1
        layout.manifest_path.write_text(json.dumps(manifest))
        # Prove the fabricated frame really lacks the slot.
        from repro.substrates.wire import decode_frame
        stale = decode_frame(cut_path.read_bytes())
        with pytest.raises(AttributeError):
            stale.views_state

        reopened = FileSnapshotStore(tmp_path, mode="full")
        assert reopened.loaded == 1
        assert reopened.latest().views_state is None
        assert read_manifest(open_layout(tmp_path))["format_version"] \
            == FORMAT_VERSION

    def test_newer_layout_is_refused(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text(
            json.dumps({"format_version": 99}), encoding="utf-8")
        with pytest.raises(StorageError, match="newer"):
            FileChangelogStore(tmp_path)
        with pytest.raises(StorageError, match="newer"):
            FileSnapshotStore(tmp_path)
