"""File-backed changelog: segment files, fsync accounting, torn-tail
truncation, physical rewind and whole-segment compaction."""

import pytest

from repro.storage import FileChangelogStore, read_manifest, open_layout


def writes_for(n):
    return {("Account", f"k{n}"): {"balance": float(n)}}


def fill(store, count, *, start=0):
    for n in range(start, start + count):
        store.append(n, writes_for(n), at_ms=float(n) * 10.0)


class TestRoundTrip:
    def test_append_close_reopen_restores_every_record(self, tmp_path):
        store = FileChangelogStore(tmp_path)
        fill(store, 5)
        before = [(r.seq, r.batch_id, r.writes, r.at_ms)
                  for r in store._records]
        store.close()

        reopened = FileChangelogStore(tmp_path)
        after = [(r.seq, r.batch_id, r.writes, r.at_ms)
                 for r in reopened._records]
        assert after == before
        assert reopened.head_seq == 4
        assert reopened.loaded == 5
        # Sequencing continues where the dead process stopped.
        assert reopened.append(99, writes_for(99)) == 5

    def test_every_append_is_fsynced(self, tmp_path):
        store = FileChangelogStore(tmp_path)
        fill(store, 7)
        assert store.fsyncs == 7
        assert store.bytes_written > 0

        relaxed = FileChangelogStore(tmp_path / "relaxed", fsync=False)
        fill(relaxed, 7)
        assert relaxed.fsyncs == 0

    def test_duplicate_append_hits_memory_and_disk_once(self, tmp_path):
        store = FileChangelogStore(tmp_path)
        seq = store.append(7, writes_for(7))
        written = store.bytes_written
        assert store.append(7, writes_for(7)) == seq  # redelivered close
        assert store.bytes_written == written
        store.close()
        assert FileChangelogStore(tmp_path).loaded == 1


class TestTornTail:
    def test_partial_trailing_frame_is_truncated(self, tmp_path):
        store = FileChangelogStore(tmp_path)
        fill(store, 3)
        store.close()
        [segment] = list((tmp_path / "changelog").glob("segment-*.log"))
        intact = segment.stat().st_size
        # A crash mid-append leaves half a frame on disk.
        with open(segment, "ab") as handle:
            handle.write(b"SF\x00\x00\x00\xff half-a-frame")

        reopened = FileChangelogStore(tmp_path)
        assert reopened.loaded == 3
        assert reopened.torn_tail_bytes > 0
        assert segment.stat().st_size == intact
        # The log stays appendable after the repair.
        assert reopened.append(3, writes_for(3)) == 3

    def test_corrupt_frame_body_drops_the_suffix(self, tmp_path):
        store = FileChangelogStore(tmp_path)
        fill(store, 4)
        offsets = dict(store._offsets)
        store.close()
        [segment] = list((tmp_path / "changelog").glob("segment-*.log"))
        # Zero out record 2's bytes (frame framing intact, body rotted):
        # everything from the corruption on is untrusted.
        _, end_1 = offsets[1]
        _, end_2 = offsets[2]
        data = bytearray(segment.read_bytes())
        data[end_1 + 8:end_2] = bytes(len(data[end_1 + 8:end_2]))
        segment.write_bytes(bytes(data))

        reopened = FileChangelogStore(tmp_path)
        assert [r.seq for r in reopened._records] == [0, 1]
        assert reopened.torn_tail_bytes > 0

    def test_segments_after_a_torn_one_are_dropped(self, tmp_path):
        store = FileChangelogStore(tmp_path, segment_records=2)
        fill(store, 6)
        store.close()
        segments = sorted((tmp_path / "changelog").glob("segment-*.log"))
        assert len(segments) == 3
        # Tear the middle segment mid-record: the third segment's
        # records come after the tear, so they are from a lost timeline.
        middle = segments[1]
        middle.write_bytes(middle.read_bytes()[:-3])

        reopened = FileChangelogStore(tmp_path)
        assert [r.seq for r in reopened._records] == [0, 1, 2]
        assert not segments[2].exists()


class TestSegments:
    def test_appends_roll_into_new_segments(self, tmp_path):
        store = FileChangelogStore(tmp_path, segment_records=2)
        fill(store, 5)
        names = sorted(p.name for p in
                       (tmp_path / "changelog").glob("segment-*.log"))
        assert names == ["segment-0000000000.log", "segment-0000000002.log",
                         "segment-0000000004.log"]
        store.close()
        assert FileChangelogStore(tmp_path, segment_records=2).loaded == 5

    def test_truncate_through_drops_dead_segments(self, tmp_path):
        store = FileChangelogStore(tmp_path, segment_records=2)
        fill(store, 6)
        store.truncate_through(3)
        assert store.segments_dropped == 2
        names = sorted(p.name for p in
                       (tmp_path / "changelog").glob("segment-*.log"))
        assert names == ["segment-0000000004.log"]
        assert read_manifest(open_layout(tmp_path))["changelog_floor"] == 3
        store.close()
        reopened = FileChangelogStore(tmp_path, segment_records=2)
        assert [r.seq for r in reopened._records] == [4, 5]

    def test_records_below_the_floor_are_skipped_on_reload(self, tmp_path):
        # The floor can land inside the live segment: its file survives
        # (appends keep landing there) but the dead prefix must not
        # come back on a cold start.
        store = FileChangelogStore(tmp_path, segment_records=4)
        fill(store, 3)
        store.truncate_through(1)
        assert [r.seq for r in store._records] == [2]
        store.close()
        reopened = FileChangelogStore(tmp_path, segment_records=4)
        assert [r.seq for r in reopened._records] == [2]
        assert reopened.head_seq == 2


class TestRewind:
    def test_rewind_truncates_disk_and_counts_the_loss(self, tmp_path):
        store = FileChangelogStore(tmp_path)
        fill(store, 5)
        store.rewind_to(2)
        assert store.rewound == 2
        assert store.bytes_rewound > 0
        assert store.head_seq == 2
        store.close()
        # The orphaned suffix must not resurrect on a cold start.
        reopened = FileChangelogStore(tmp_path)
        assert [r.seq for r in reopened._records] == [0, 1, 2]

    def test_append_after_rewind_reuses_seqs_durably(self, tmp_path):
        store = FileChangelogStore(tmp_path, segment_records=2)
        fill(store, 6)
        store.rewind_to(2)
        store.append(100, writes_for(100), at_ms=1000.0)
        assert store.head_seq == 3
        store.close()
        reopened = FileChangelogStore(tmp_path, segment_records=2)
        assert [(r.seq, r.batch_id) for r in reopened._records] == [
            (0, 0), (1, 1), (2, 2), (3, 100)]

    def test_rewind_below_every_record_empties_the_log(self, tmp_path):
        store = FileChangelogStore(tmp_path)
        fill(store, 3)
        store.rewind_to(-1)
        assert store.head_seq == -1
        assert store.rewound == 3
        store.append(50, writes_for(50))
        store.close()
        reopened = FileChangelogStore(tmp_path)
        assert [(r.seq, r.batch_id) for r in reopened._records] == [(0, 50)]
