"""Events, frames, execution state, txn contexts."""

from repro.core.refs import EntityRef
from repro.ir.events import (
    Event,
    EventKind,
    ExecutionState,
    Frame,
    TxnContext,
    next_event_id,
)


class TestFrames:
    def test_frame_roundtrip(self):
        frame = Frame(entity="User", key="alice", method="buy_item",
                      node="buy_item_1", store={"x": 1}, result_var="r")
        assert Frame.from_dict(frame.to_dict()).to_dict() == frame.to_dict()

    def test_execution_state_stack(self):
        execution = ExecutionState()
        execution.push(Frame("A", 1, "m", "m_0"))
        execution.push(Frame("B", 2, "n", "n_0"))
        assert execution.depth == 2
        assert execution.top.entity == "B"
        popped = execution.pop()
        assert popped.entity == "B"
        assert execution.top.entity == "A"

    def test_execution_state_roundtrip(self):
        execution = ExecutionState(frames=[
            Frame("A", 1, "m", "m_0", store={"i": 3}),
            Frame("B", "k", "n", "n_2", store={"y": [1, 2]}),
        ])
        restored = ExecutionState.from_dict(execution.to_dict())
        assert restored.depth == 2
        assert restored.frames[1].store == {"y": [1, 2]}


class TestEvents:
    def test_ids_unique_and_monotonic(self):
        first, second = next_event_id(), next_event_id()
        assert second > first
        a = Event(kind=EventKind.INVOKE, target=EntityRef("A", 1))
        b = Event(kind=EventKind.INVOKE, target=EntityRef("A", 1))
        assert a.event_id != b.event_id

    def test_reply_detection(self):
        reply = Event(kind=EventKind.REPLY,
                      target=EntityRef("__client__", 1))
        assert reply.is_reply()
        invoke = Event(kind=EventKind.INVOKE, target=EntityRef("A", 1))
        assert not invoke.is_reply()

    def test_describe_readable(self):
        event = Event(kind=EventKind.INVOKE, target=EntityRef("A", 1),
                      method="go")
        assert "A/1" in event.describe()
        assert "go" in event.describe()


class TestTxnContext:
    def test_read_write_recording(self):
        ctx = TxnContext(tid=3, batch_id=7)
        ctx.record_read("Account", "a")
        ctx.record_write("Account", "b", {"balance": 1})
        assert ctx.read_set == {("Account", "a")}
        assert ctx.write_set == {("Account", "b"): {"balance": 1}}

    def test_create_recording(self):
        ctx = TxnContext(tid=0, batch_id=0)
        ctx.record_create("Account", "new", {"balance": 0})
        assert ("Account", "new") in ctx.create_set
        assert ("Account", "new") in ctx.write_set

    def test_rewrite_overwrites(self):
        ctx = TxnContext(tid=0, batch_id=0)
        ctx.record_write("A", 1, {"v": 1})
        ctx.record_write("A", 1, {"v": 2})
        assert ctx.write_set[("A", 1)] == {"v": 2}
