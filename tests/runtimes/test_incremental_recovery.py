"""Recovery-equivalence battery: incremental snapshots + changelog
replay must be observationally identical to full-copy snapshots.

For matched (seed, fault plan, rescale plan) runs, a full-mode and an
incremental-mode deployment must produce byte-identical reply traces
and final committed state on both the dict and cow backends — through
coordinator crashes landing between base and delta cuts, crashes while
the chain is mid-compaction (deep in a delta run), and elastic rescales
whose slot migrations ship base+delta fragments.

Torn-snapshot chaos (a delta fragment dropped or duplicated in flight)
is incremental-only by construction, so those scenarios assert the
recovery contract instead: the watchdog repairs the chain through the
commit changelog, or falls back to the last complete chain, and the run
stays exactly-once and conservative either way.
"""

import pytest

from repro.bench import verify_history
from repro.faults import FaultEvent, FaultPlan, random_plan
from repro.rescale import staged_plan
from repro.runtimes.state import materialize_snapshot
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload

BACKENDS = ("dict", "cow")

#: Cuts every 150 ms, a base every 3 cuts: crash times can be aimed at
#: specific chain positions (between base and delta, mid-chain).
SNAPSHOT_INTERVAL_MS = 150.0
BASE_EVERY = 3


def run_once(mode, backend, *, seed=11, fault_plan=None, rescale_plan=None,
             workers=3, pipeline_depth=2, rps=150.0, duration_ms=1_500.0,
             records=24, changelog=None):
    """One deterministic run; returns (trace, final_state, coordinator,
    sent, completed, workload)."""
    config = StateflowConfig(
        workers=workers, state_backend=backend, snapshot_mode=mode,
        pipeline_depth=pipeline_depth, fault_plan=fault_plan,
        rescale_plan=rescale_plan, changelog=changelog,
        coordinator=CoordinatorConfig(
            snapshot_interval_ms=SNAPSHOT_INTERVAL_MS,
            failure_detect_ms=200.0,
            snapshot_base_every=BASE_EVERY))
    from repro.substrates.simulation import Simulation
    runtime = StateflowRuntime(run_once.program, sim=Simulation(seed=seed),
                              config=config)
    trace = []
    runtime.reply_tap = lambda reply: trace.append(
        (reply.request_id, repr(reply.payload), reply.error))
    workload = YcsbWorkload("T", record_count=records,
                            distribution="uniform", seed=seed + 1,
                            initial_balance=1_000)
    runtime.preload(Account, workload.dataset_rows())
    runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=rps, duration_ms=duration_ms, warmup_ms=0.0,
        drain_ms=25_000.0, seed=seed + 2))
    result = driver.run()
    runtime.sim.run(until=runtime.sim.now + 25_000.0)
    state = materialize_snapshot(runtime.committed.snapshot())
    return (trace, state, runtime.coordinator, result.sent,
            driver.completed, workload)


@pytest.fixture(autouse=True)
def _program(account_program):
    run_once.program = account_program


def assert_equivalent(backend, **kwargs):
    """Full and incremental runs of one scenario must match byte for
    byte, and both must satisfy the serial oracle."""
    full = run_once("full", backend, **kwargs)
    incremental = run_once("incremental", backend, **kwargs)
    assert full[0] == incremental[0], "reply traces diverged"
    assert full[1] == incremental[1], "final committed state diverged"
    for trace, state, _, sent, completed, workload in (full, incremental):
        problems = verify_history(sent=sent, completed=completed,
                                  trace=trace, state=state,
                                  workload=workload, workload_name="T")
        assert problems == [], problems
    return full, incremental


class TestFaultFreeEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_modes_agree_without_faults(self, backend):
        full, incremental = assert_equivalent(backend)
        # The incremental run must actually exercise the delta path.
        kinds = {cut.kind for cut in incremental[2].snapshots.cut_log}
        assert kinds >= {"base", "delta"}
        assert all(cut.kind == "full"
                   for cut in full[2].snapshots.cut_log)
        # The changelog was fed (and then compacted down by the idle
        # drain's cut cadence — retained cuts stop needing old records).
        assert incremental[2].changelog.appended > 0
        assert full[2].changelog.appended == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_incremental_cuts_are_smaller(self, backend):
        _, incremental = assert_equivalent(backend, records=64, rps=80.0)
        deltas = [cut for cut in incremental[2].snapshots.cut_log
                  if cut.kind == "delta"]
        bases = [cut for cut in incremental[2].snapshots.cut_log
                 if cut.kind == "base"]
        assert deltas and bases
        assert (sum(cut.keys for cut in deltas) / len(deltas)
                < sum(cut.keys for cut in bases) / len(bases))


class TestEquivalenceUnderChaos:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_random_chaos_plan(self, backend):
        plan = random_plan(23, duration_ms=1_500.0, workers=3,
                           coordinator_faults=True)
        full, incremental = assert_equivalent(backend, fault_plan=plan,
                                              seed=23)
        assert incremental[2].recoveries >= 1, (
            "the plan must actually force recovery")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_between_base_and_delta_cuts(self, backend):
        """Fail-overs aimed right after a base cut (~10 ms past the
        3rd-cut boundary) and right after a delta cut: recovery resolves
        a chain whose head is a base in one case and a delta in the
        other."""
        plan = FaultPlan(seed=1, events=[
            FaultEvent(kind="crash_coordinator",
                       at_ms=3 * SNAPSHOT_INTERVAL_MS + 10.0,
                       duration_ms=60.0),
            FaultEvent(kind="crash_coordinator",
                       at_ms=7 * SNAPSHOT_INTERVAL_MS + 10.0,
                       duration_ms=60.0),
        ], name="crash-at-cut-boundaries")
        full, incremental = assert_equivalent(backend, fault_plan=plan)
        assert incremental[2].failovers == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_crash_mid_compaction_chain(self, backend):
        """A deep delta chain (base_every cuts between bases) with the
        crash landing mid-chain: recovery replays base + several
        deltas."""
        plan = FaultPlan(seed=2, events=[
            FaultEvent(kind="crash_coordinator",
                       at_ms=5 * SNAPSHOT_INTERVAL_MS + 40.0,
                       duration_ms=80.0),
        ], name="crash-mid-chain")
        full, incremental = assert_equivalent(backend, fault_plan=plan)
        restored_kinds = [cut.kind for cut
                          in incremental[2].snapshots.cut_log]
        assert "delta" in restored_kinds


class TestEquivalenceUnderRescale:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rescale_with_chaos(self, backend):
        """2 -> 4 -> 3 live rescales (slot migrations ship base+delta in
        incremental mode) under a message-fault plan."""
        rescale_plan = staged_plan((4, 3), start_ms=400.0,
                                   interval_ms=500.0)
        fault_plan = random_plan(31, duration_ms=1_500.0, workers=2,
                                 process_faults=False)
        full, incremental = assert_equivalent(
            backend, workers=2, rescale_plan=rescale_plan,
            fault_plan=fault_plan, seed=31)
        assert incremental[2].rescales >= 2
        assert full[2].rescales == incremental[2].rescales

    def test_incremental_migration_ships_deltas(self, account_program):
        """Slots migrated under incremental mode travel as base+delta
        fragments, not full copies."""
        config = StateflowConfig(
            workers=2, state_backend="cow", snapshot_mode="incremental",
            rescale_plan=staged_plan((4,), start_ms=500.0,
                                     interval_ms=500.0),
            coordinator=CoordinatorConfig(
                snapshot_interval_ms=SNAPSHOT_INTERVAL_MS,
                snapshot_base_every=BASE_EVERY))
        runtime = StateflowRuntime(account_program, config=config)
        workload = YcsbWorkload("T", record_count=24,
                                distribution="uniform", seed=3,
                                initial_balance=1_000)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=100.0, duration_ms=1_200.0, warmup_ms=0.0,
            drain_ms=25_000.0, seed=4))
        driver.run()
        assert runtime.coordinator.rescales == 1
        assert runtime.migration_delta_slots > 0
        assert runtime.migration_full_slots == 0


class TestTornSnapshots:
    def _torn_plan(self, *, variant="drop", crash_after=True):
        events = [FaultEvent(kind="torn_snapshot",
                             at_ms=4 * SNAPSHOT_INTERVAL_MS + 20.0,
                             variant=variant)]
        if crash_after:
            # Crash while the torn cut is the latest: recovery must
            # repair or fall back.
            events.append(FaultEvent(kind="crash_coordinator",
                                     at_ms=5 * SNAPSHOT_INTERVAL_MS + 30.0,
                                     duration_ms=60.0))
        return FaultPlan(seed=5, events=events, name="torn")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_changelog_repairs_a_torn_chain(self, backend):
        trace, state, coordinator, sent, completed, workload = run_once(
            "incremental", backend, fault_plan=self._torn_plan())
        assert coordinator.snapshots.snapshots_torn >= 1
        assert (coordinator.snapshots.changelog_repairs
                + coordinator.snapshots.chain_fallbacks) >= 1
        problems = verify_history(sent=sent, completed=completed,
                                  trace=trace, state=state,
                                  workload=workload, workload_name="T")
        assert problems == [], problems

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_without_changelog_recovery_falls_back(self, backend):
        """With the changelog disabled there is nothing to repair with:
        the watchdog must fall back to the last complete chain — and the
        run must still be exactly-once (replay covers the difference)."""
        trace, state, coordinator, sent, completed, workload = run_once(
            "incremental", backend, fault_plan=self._torn_plan(),
            changelog=False)
        assert coordinator.snapshots.snapshots_torn >= 1
        assert coordinator.snapshots.chain_fallbacks >= 1
        assert coordinator.snapshots.changelog_repairs == 0
        problems = verify_history(sent=sent, completed=completed,
                                  trace=trace, state=state,
                                  workload=workload, workload_name="T")
        assert problems == [], problems

    def test_duplicated_fragment_is_idempotent(self):
        """A duplicated delta fragment resolves to the same state as the
        original would have: replay applies absolute states twice."""
        trace, state, coordinator, sent, completed, workload = run_once(
            "incremental", "cow",
            fault_plan=self._torn_plan(variant="duplicate"))
        assert coordinator.snapshots.snapshots_torn >= 1
        # A duplicated fragment still resolves: no fallback needed.
        problems = verify_history(sent=sent, completed=completed,
                                  trace=trace, state=state,
                                  workload=workload, workload_name="T")
        assert problems == [], problems

    def test_torn_events_are_skipped_in_full_mode(self):
        _, _, coordinator, _, _, _ = run_once(
            "full", "dict", fault_plan=self._torn_plan(crash_after=False))
        assert coordinator.snapshots.snapshots_torn == 0

    def test_post_fallback_cuts_reanchor_as_bases(self):
        """Regression: after recovery falls back past a torn cut, the
        next cut must be a base — chaining it to the torn parent would
        leave every later delta cut unresolvable, so each further crash
        would keep rewinding to the old pre-torn state."""
        from repro.runtimes.state import StateDelta
        from repro.runtimes.stateflow.snapshots import SnapshotStore

        store = SnapshotStore(mode="incremental", base_every=4)
        meta = dict(source_offsets={}, replied=set(), batch_seq=0,
                    arrival_seq=0)
        store.take(taken_at_ms=0.0, state={("E", "a"): {"v": 0}},
                   kind="base", **meta)
        store.arm_torn("drop")
        store.take(taken_at_ms=1.0,
                   state=StateDelta(layers=({("E", "a"): {"v": 1}},)),
                   kind="delta", **meta)
        # First recovery: the torn head falls back to the base.
        snapshot, payload = store.latest_recoverable(None)
        assert snapshot.snapshot_id == 0
        assert store.chain_fallbacks == 1
        store.reset_chain()  # what coordinator.recover() now does
        assert store.next_kind() == "base"
        store.take(taken_at_ms=2.0, state={("E", "a"): {"v": 2}},
                   kind=store.next_kind(), **meta)
        # A second recovery restores the new base, not the old one.
        snapshot, payload = store.latest_recoverable(None)
        assert snapshot.snapshot_id == 2
        assert payload == {("E", "a"): {"v": 2}}
        assert store.chain_fallbacks == 1, "no further fallback"
