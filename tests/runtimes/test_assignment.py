"""Property tests for the slot assignment scheme behind elastic
rescaling.

The contracts that make rescaling safe:

- ``partition_of`` is *total* (every key has exactly one owner, always
  in range) and *stable* (same key, same owner — across calls and
  across independently built stores);
- rescaling is *minimal-movement*: growing n -> n+1 moves at most
  ``ceil(slots / (n+1))`` slots, all of them to the new worker, and
  every key whose slot did not move keeps its owner;
- a store-level rescale (migrate + commit) never loses, duplicates, or
  corrupts a key — for both the dict and cow backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtimes.state import (
    BACKENDS,
    PartitionedStore,
    SlotAssignment,
    materialize_snapshot,
)

keys = st.lists(
    st.text(min_size=1, max_size=12), min_size=1, max_size=60, unique=True)


class TestTotalityAndStability:
    @given(keys=keys, workers=st.integers(1, 8), slots=st.integers(8, 64))
    @settings(max_examples=40, deadline=None)
    def test_partition_of_total_and_stable(self, keys, workers, slots):
        slots = max(slots, workers)
        store = PartitionedStore(workers, slots=slots)
        twin = PartitionedStore(workers, slots=slots)
        for key in keys:
            owner = store.partition_of("Account", key)
            assert 0 <= owner < workers
            assert store.partition_of("Account", key) == owner
            assert twin.partition_of("Account", key) == owner

    def test_default_layout_matches_classic_scheme(self):
        """With slots == workers and the round-robin initial deal, the
        two-step routing degenerates to the seed's ``hash % n``."""
        from repro.ir.dataflow import stable_hash

        store = PartitionedStore(5)
        for index in range(64):
            key = f"k{index}"
            assert store.partition_of("Account", key) == \
                stable_hash(f"Account|{key}") % 5

    def test_loads_balanced_at_start(self):
        assignment = SlotAssignment(5, slots=64)
        loads = assignment.loads()
        assert sum(loads) == 64
        assert max(loads) - min(loads) <= 1


class TestMinimalMovement:
    @given(workers=st.integers(1, 12), slots=st.integers(16, 96))
    @settings(max_examples=50, deadline=None)
    def test_grow_by_one_moves_only_to_the_new_worker(self, workers, slots):
        slots = max(slots, workers + 1)
        assignment = SlotAssignment(workers, slots=slots)
        delta = assignment.plan(workers + 1)
        # Every moved slot lands on the new worker, nowhere else.
        assert all(dst == workers for _, dst in delta.values())
        # At most the new worker's fair share moves.
        assert len(delta) <= -(-slots // (workers + 1))  # ceil
        # Unmoved slots keep their owner.
        before = list(assignment.owners)
        assignment.apply(workers + 1, delta)
        for slot in range(slots):
            if slot not in delta:
                assert assignment.owners[slot] == before[slot]

    @given(workers=st.integers(2, 12), slots=st.integers(16, 96))
    @settings(max_examples=50, deadline=None)
    def test_shrink_by_one_moves_only_the_victims_slots(self, workers,
                                                        slots):
        slots = max(slots, workers)
        assignment = SlotAssignment(workers, slots=slots)
        victim = workers - 1
        owned = set(assignment.slots_of(victim))
        delta = assignment.plan(workers - 1)
        assert set(delta) == owned
        assert all(src == victim and dst < workers - 1
                   for src, dst in delta.values())

    @given(workers=st.integers(1, 10), target=st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_rebalance_lands_on_quota(self, workers, target):
        assignment = SlotAssignment(workers, slots=64)
        delta = assignment.plan(target)
        assignment.apply(target, delta)
        loads = assignment.loads()
        assert len(loads) == target
        assert sum(loads) == 64
        assert max(loads) - min(loads) <= 1

    def test_plan_is_deterministic(self):
        first = SlotAssignment(3, slots=32).plan(5)
        second = SlotAssignment(3, slots=32).plan(5)
        assert first == second

    def test_apply_bumps_routing_epoch(self):
        assignment = SlotAssignment(2, slots=8)
        epoch = assignment.epoch
        assignment.apply(3, assignment.plan(3))
        assert assignment.epoch == epoch + 1


@pytest.mark.parametrize("backend", sorted(BACKENDS))
class TestStoreRescaleIntegrity:
    @given(keys=keys, path=st.lists(st.integers(1, 8), min_size=1,
                                    max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_rescale_path_preserves_every_key(self, backend, keys, path):
        """Walking an arbitrary rescale path (grow and shrink mixed)
        keeps every key readable with its exact state, owned by the
        worker the assignment names — the minimal-movement migration
        moved the data along with the routing table."""
        store = PartitionedStore(2, backend=backend, slots=16)
        for index, key in enumerate(keys):
            store.put("Account", key, {"balance": index})
        for target in path:
            moved = set(store.plan_rescale(target))
            owners_before = list(store.assignment.owners)
            store.rescale(target)
            assert store.assignment.workers == target
            assert len(store) == len(keys)
            for index, key in enumerate(keys):
                owner = store.partition_of("Account", key)
                assert owner < target
                assert store.partition(owner).get(
                    "Account", key) == {"balance": index}
            # Keys in unmoved slots kept their owner: only the migrated
            # ranges' keys changed hands.
            for slot in range(store.slot_count):
                if slot not in moved:
                    assert store.assignment.owners[slot] == \
                        owners_before[slot]

    def test_split_then_merge_round_trip(self, backend):
        store = PartitionedStore(3, backend=backend, slots=12)
        for index in range(24):
            store.put("Account", f"k{index}", {"balance": index})
        before = dict(materialize_snapshot(store.snapshot()))
        store.split()
        assert store.assignment.workers == 4
        store.merge()
        assert store.assignment.workers == 3
        assert materialize_snapshot(store.snapshot()) == before

    def test_snapshot_taken_before_rescale_restores_after(self, backend):
        """Per-slot fragments make snapshots topology-independent: a cut
        taken at 2 workers restores cleanly into a 5-worker store."""
        store = PartitionedStore(2, backend=backend, slots=16)
        for index in range(20):
            store.put("Account", f"k{index}", {"balance": index})
        snapshot = store.snapshot()
        store.rescale(5)
        store.apply_writes({("Account", f"k{i}"): {"balance": -1}
                            for i in range(20)})
        store.restore(snapshot)
        for index in range(20):
            assert store.get("Account", f"k{index}") == {"balance": index}


class TestWorkerSlice:
    def test_slice_views_track_the_live_assignment(self):
        """The same slice object covers a worker's new slots after a
        rescale — ownership is consulted per access, never cached."""
        store = PartitionedStore(2, slots=8)
        slices = [store.partition(index) for index in range(4)]
        for index in range(16):
            store.put("Account", f"k{index}", {"balance": index})
        assert sum(len(s) for s in slices[:2]) == 16
        assert sorted(key for s in slices[:2] for key in s.keys()) == \
            sorted(store.keys())
        store.rescale(4)
        assert sum(len(s) for s in slices) == 16
        for worker_slice in slices:
            assert set(worker_slice.owned_slots()) == \
                set(store.assignment.slots_of(worker_slice.index))
            for entity, key in worker_slice.keys():
                assert worker_slice.exists(entity, key)
                assert worker_slice.get(entity, key) is not None

    def test_unowned_reads_are_invisible(self):
        store = PartitionedStore(3, slots=9)
        store.put("Account", "k", {"balance": 1})
        owner = store.partition_of("Account", "k")
        for index in range(3):
            view = store.partition(index)
            if index == owner:
                assert view.get("Account", "k") == {"balance": 1}
            else:
                assert view.get("Account", "k") is None
                assert not view.exists("Account", "k")

    def test_partitions_iterates_active_workers(self):
        store = PartitionedStore(3, slots=6)
        assert [s.index for s in store.partitions()] == [0, 1, 2]
        store.merge()
        assert [s.index for s in store.partitions()] == [0, 1]

    def test_slice_writes_route_by_slot(self):
        store = PartitionedStore(2, slots=4)
        view = store.partition(0)
        view.create("Account", "x", {"balance": 9})
        view.apply_writes({("Account", "y"): {"balance": 8}})
        assert store.get("Account", "x") == {"balance": 9}
        assert store.get("Account", "y") == {"balance": 8}


class TestAssignmentErrors:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            SlotAssignment(0)

    def test_more_workers_than_slots_rejected(self):
        with pytest.raises(ValueError):
            SlotAssignment(5, slots=3)

    def test_plan_beyond_slots_rejected(self):
        with pytest.raises(ValueError, match="slots"):
            SlotAssignment(2, slots=4).plan(5)

    def test_plan_below_one_rejected(self):
        with pytest.raises(ValueError):
            SlotAssignment(2, slots=4).plan(0)

    def test_restore_slot_count_mismatch_rejected(self):
        assignment = SlotAssignment(2, slots=4)
        with pytest.raises(ValueError, match="slots"):
            assignment.restore((2, (0, 1)))

    def test_freeze_restore_round_trip(self):
        assignment = SlotAssignment(2, slots=8)
        assignment.apply(3, assignment.plan(3))
        frozen = assignment.freeze()
        other = SlotAssignment(2, slots=8)
        other.restore(frozen)
        assert other.workers == 3
        assert other.owners == assignment.owners
