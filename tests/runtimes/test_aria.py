"""Aria protocol logic: conflict rules, reordering, properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtimes.stateflow.aria import (
    AriaStats,
    BatchMember,
    TxnOutcome,
    build_reservations,
    decide,
    serializable_order,
)


def _member(tid, reads=(), writes=()):
    return BatchMember(tid=tid,
                       read_set=frozenset(("Account", k) for k in reads),
                       write_set=frozenset(("Account", k) for k in writes))


class TestReservations:
    def test_smallest_tid_wins(self):
        members = [_member(2, writes=["a"]), _member(0, writes=["a"]),
                   _member(1, reads=["a"])]
        read_res, write_res = build_reservations(members)
        assert write_res[("Account", "a")] == 0
        assert read_res[("Account", "a")] == 1

    def test_failed_members_reserve_nothing(self):
        failed = BatchMember(tid=0, read_set=frozenset(),
                             write_set=frozenset(), failed=True)
        _, write_res = build_reservations([failed])
        assert write_res == {}


class TestDecide:
    def test_disjoint_all_commit(self):
        report = decide([_member(0, writes=["a"]), _member(1, writes=["b"])])
        assert report.commits == [0, 1]
        assert report.abort_count == 0

    def test_waw_aborts_higher_tid(self):
        report = decide([_member(0, writes=["a"]), _member(1, writes=["a"])])
        assert report.commits == [0]
        assert report.aborts == {1: TxnOutcome.ABORT_WAW}

    def test_raw_aborts_without_reordering(self):
        members = [_member(0, writes=["a"]), _member(1, reads=["a"])]
        report = decide(members, reordering=False)
        assert report.aborts == {1: TxnOutcome.ABORT_RAW}

    def test_pure_raw_commits_with_reordering(self):
        members = [_member(0, writes=["a"]), _member(1, reads=["a"])]
        report = decide(members, reordering=True)
        assert report.abort_count == 0
        # The reader serializes before the writer.
        assert serializable_order(members, report) == [1, 0]

    def test_raw_plus_war_aborts_even_with_reordering(self):
        members = [_member(0, reads=["b"], writes=["a"]),
                   _member(1, reads=["a"], writes=["b"])]
        report = decide(members, reordering=True)
        assert report.aborts == {1: TxnOutcome.ABORT_RAW}

    def test_rmw_same_key_one_survivor(self):
        members = [_member(t, reads=["hot"], writes=["hot"])
                   for t in range(5)]
        report = decide(members)
        assert report.commits == [0]
        assert report.abort_count == 4

    def test_failed_txn_commits_empty(self):
        failed = BatchMember(tid=0, read_set=frozenset({("Account", "a")}),
                             write_set=frozenset(), failed=True)
        report = decide([failed, _member(1, writes=["a"])])
        assert set(report.commits) == {0, 1}

    def test_empty_batch(self):
        report = decide([])
        assert report.commits == [] and report.abort_count == 0


class TestStats:
    def test_observe_accumulates(self):
        stats = AriaStats()
        stats.observe(decide([_member(0, writes=["a"]),
                              _member(1, writes=["a"])]))
        assert stats.batches == 1
        assert stats.commits == 1
        assert stats.aborts_waw == 1
        assert 0 < stats.abort_rate < 1


# -- property-based: protocol invariants -------------------------------------

keys = st.sampled_from(["a", "b", "c", "d"])
member_sets = st.lists(
    st.tuples(st.frozensets(keys, max_size=3), st.frozensets(keys, max_size=2)),
    min_size=1, max_size=8)


def _members_from(spec):
    return [
        BatchMember(tid=i,
                    read_set=frozenset(("Account", k) for k in reads | writes),
                    write_set=frozenset(("Account", k) for k in writes))
        for i, (reads, writes) in enumerate(spec)
    ]


@given(member_sets)
@settings(max_examples=200, deadline=None)
def test_committed_writers_are_disjoint(spec):
    """No two committed transactions may write the same key (they would
    not be serializable by reservation order)."""
    members = _members_from(spec)
    report = decide(members)
    seen = {}
    for member in members:
        if member.tid not in report.commits:
            continue
        for key in member.write_set:
            assert key not in seen, (key, seen[key], member.tid)
            seen[key] = member.tid


@given(member_sets)
@settings(max_examples=200, deadline=None)
def test_lowest_tid_always_commits(spec):
    members = _members_from(spec)
    report = decide(members)
    assert 0 in report.commits


@given(member_sets, st.booleans())
@settings(max_examples=200, deadline=None)
def test_every_txn_decided_exactly_once(spec, reordering):
    members = _members_from(spec)
    report = decide(members, reordering=reordering)
    decided = set(report.commits) | set(report.aborts)
    assert decided == {m.tid for m in members}
    assert not (set(report.commits) & set(report.aborts))


@given(member_sets)
@settings(max_examples=200, deadline=None)
def test_reordering_never_aborts_more(spec):
    members = _members_from(spec)
    with_reordering = decide(members, reordering=True)
    without = decide(members, reordering=False)
    assert set(with_reordering.aborts) <= set(without.aborts)


@given(member_sets)
@settings(max_examples=150, deadline=None)
def test_serializable_order_respects_raw_edges(spec):
    """In the equivalent serial order, a committed RAW reader appears
    before the committed writer it read under."""
    members = _members_from(spec)
    report = decide(members, reordering=True)
    order = serializable_order(members, report)
    position = {tid: i for i, tid in enumerate(order)}
    committed = {m.tid: m for m in members if m.tid in set(report.commits)}
    for reader in committed.values():
        for key in reader.read_set:
            for writer in committed.values():
                if writer.tid < reader.tid and key in writer.write_set:
                    assert position[reader.tid] < position[writer.tid]


# -- pipelined epochs: cross-batch stale detection ---------------------------


class TestStaleDetection:
    def _stale(self, *keys):
        return frozenset(("Account", k) for k in keys)

    def test_stale_read_aborts(self):
        report = decide([_member(0, reads=["a"], writes=["b"])],
                        stale_keys=self._stale("a"))
        assert report.aborts == {0: TxnOutcome.ABORT_STALE}

    def test_blind_overwrite_of_stale_key_commits(self):
        """Cross-batch WAW needs no abort: writes install in batch
        order, so a blind overwrite is already serialized correctly."""
        report = decide([_member(0, writes=["a"])],
                        stale_keys=self._stale("a"))
        assert report.commits == [0]

    def test_disjoint_reads_unaffected(self):
        report = decide([_member(0, reads=["b"], writes=["b"])],
                        stale_keys=self._stale("a"))
        assert report.commits == [0]

    def test_failed_member_with_stale_read_aborts(self):
        """A user-level failure observed through a stale snapshot cannot
        be trusted: the failure itself may be the artifact (e.g. a
        balance check against a pre-deposit value).  It re-executes."""
        failed = BatchMember(tid=0,
                             read_set=frozenset({("Account", "a")}),
                             write_set=frozenset(), failed=True)
        report = decide([failed], stale_keys=self._stale("a"))
        assert report.aborts == {0: TxnOutcome.ABORT_STALE}

    def test_stale_outcome_counted_separately(self):
        stats = AriaStats()
        stats.observe(decide([_member(0, reads=["a"])],
                             stale_keys=self._stale("a")))
        assert stats.aborts_stale == 1
        assert stats.aborts_raw == 0 and stats.aborts_waw == 0
        assert stats.abort_rate == 1.0

    def test_empty_stale_set_is_the_plain_protocol(self):
        members = [_member(0, writes=["a"]), _member(1, reads=["a"])]
        assert decide(members).commits == decide(
            members, stale_keys=frozenset()).commits


@given(member_sets, st.frozensets(keys, max_size=3))
@settings(max_examples=200, deadline=None)
def test_stale_aborts_exactly_the_readers(spec, stale):
    """With stale keys, precisely the members that read one abort with
    ABORT_STALE; the rest are decided as if the batch had been filtered
    to the non-stale members *plus* the stale members' reservations."""
    members = _members_from(spec)
    stale_keys = frozenset(("Account", k) for k in stale)
    report = decide(members, stale_keys=stale_keys)
    for member in members:
        if member.read_set & stale_keys:
            assert report.aborts[member.tid] is TxnOutcome.ABORT_STALE
        else:
            assert report.aborts.get(member.tid) is not TxnOutcome.ABORT_STALE


@given(member_sets)
@settings(max_examples=150, deadline=None)
def test_heap_topological_order_matches_reference(spec):
    """The heapq-based serializable_order must produce exactly the
    smallest-TID-first topological order of the naive resort loop it
    replaced."""
    members = _members_from(spec)
    report = decide(members, reordering=True)
    order = serializable_order(members, report)

    committed = [m for m in members if m.tid in set(report.commits)]
    writer_of = {}
    for member in committed:
        for key in member.write_set:
            writer_of[key] = member.tid
    successors = {m.tid: set() for m in committed}
    indegree = {m.tid: 0 for m in committed}
    for member in committed:
        for key in member.read_set:
            writer = writer_of.get(key)
            if writer is not None and writer != member.tid:
                if writer not in successors[member.tid]:
                    successors[member.tid].add(writer)
                    indegree[writer] += 1
    ready = sorted(t for t, d in indegree.items() if d == 0)
    reference = []
    while ready:
        tid = ready.pop(0)
        reference.append(tid)
        for successor in sorted(successors[tid]):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                ready.append(successor)
        ready.sort()
    assert order == reference
