"""SnapshotStore pruning: the store keeps a bounded window of
snapshots, recovery still works long after the first snapshots were
pruned, snapshot cuts stay consistent while a pipeline is in flight,
and — with incremental chains — pruning never frees a base (or an
intermediate delta) that a retained cut still resolves through."""

import pytest

from repro.runtimes.state import materialize_snapshot
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.runtimes.stateflow.snapshots import (SnapshotPruneError,
                                                SnapshotStore)
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload


class TestPruning:
    def test_store_keeps_a_bounded_window(self):
        store = SnapshotStore(keep=3)
        for i in range(8):
            store.take(taken_at_ms=float(i), state={}, source_offsets={},
                       replied=set(), batch_seq=i, arrival_seq=i)
        assert len(store) == 3
        assert store.latest().snapshot_id == 7
        retained = [s.snapshot_id for s in store._snapshots]
        assert retained == [5, 6, 7], "oldest snapshots must be pruned"

    def test_latest_survives_pruning_metadata(self):
        store = SnapshotStore(keep=2)
        for i in range(5):
            store.take(taken_at_ms=float(i), state={"v": i},
                       source_offsets={("t", 0): i}, replied={i},
                       batch_seq=i, arrival_seq=i)
        latest = store.latest()
        assert latest.state == {"v": 4}
        assert latest.source_offsets == {("t", 0): 4}
        assert latest.replied == {4}


def _incremental_store(keep=2, base_every=4):
    """A store holding one base and a chain of delta cuts over it."""
    store = SnapshotStore(keep=keep, mode="incremental",
                          base_every=base_every)
    store.take(taken_at_ms=0.0, state={("E", "a"): {"v": 0}},
               source_offsets={}, replied=set(), batch_seq=0,
               arrival_seq=0, kind="base")
    for i in range(1, base_every):
        from repro.runtimes.state import StateDelta
        store.take(taken_at_ms=float(i),
                   state=StateDelta(layers=({("E", "a"): {"v": i}},)),
                   source_offsets={}, replied=set(), batch_seq=i,
                   arrival_seq=i, kind="delta")
    return store


class TestChainAwarePruning:
    """Regression for the latent full-mode pruning policy: a base that
    still anchors a live delta chain must never be dropped — by the
    automatic window trim or by an explicit prune."""

    def test_window_trim_stops_at_the_anchoring_base(self):
        store = _incremental_store(keep=2, base_every=4)
        # keep=2 would have evicted the base (id 0) under the old
        # unconditional pop; the retained deltas resolve through it.
        assert len(store) == 4
        retained = [s.snapshot_id for s in store._snapshots]
        assert 0 in retained, "the anchoring base was pruned"
        resolved = store.resolve(store.latest())
        assert resolved == {("E", "a"): {"v": 3}}

    def test_explicit_prune_of_an_anchored_base_is_refused(self):
        store = _incremental_store()
        with pytest.raises(SnapshotPruneError):
            store.prune(0)
        # Intermediate deltas anchor their successors just the same.
        with pytest.raises(SnapshotPruneError):
            store.prune(1)

    def test_unanchored_snapshots_still_prune(self):
        store = _incremental_store(keep=2, base_every=4)
        # A new base cuts the old chain loose...
        store.take(taken_at_ms=9.0, state={("E", "a"): {"v": 9}},
                   source_offsets={}, replied=set(), batch_seq=9,
                   arrival_seq=9, kind="base")
        store.take(taken_at_ms=10.0, state={("E", "a"): {"v": 10}},
                   source_offsets={}, replied=set(), batch_seq=10,
                   arrival_seq=10, kind="base")
        # ...so the trim reclaims the whole old chain down to the window.
        assert len(store) == 2
        assert [s.snapshot_id for s in store._snapshots] == [4, 5]

    def test_full_mode_pruning_unchanged(self):
        store = SnapshotStore(keep=3)
        for i in range(8):
            store.take(taken_at_ms=float(i), state={}, source_offsets={},
                       replied=set(), batch_seq=i, arrival_seq=i)
        assert [s.snapshot_id for s in store._snapshots] == [5, 6, 7]
        store.prune(6)  # full cuts anchor nothing: prunable
        assert [s.snapshot_id for s in store._snapshots] == [5, 7]


class TestRecoveryAfterPruning:
    def test_recovery_after_more_than_keep_snapshots(self, account_program):
        """Run long enough that the initial snapshots are pruned, then
        fail over: recovery restores the latest retained snapshot and
        the run stays exactly-once."""
        config = StateflowConfig(
            coordinator=CoordinatorConfig(snapshot_interval_ms=100.0))
        runtime = StateflowRuntime(account_program, config=config)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        keep = runtime.coordinator.snapshots._keep
        replies = []
        for i in range(20):
            runtime.sim.schedule_at(
                i * 60.0, lambda: runtime.submit(
                    ref, "add", (1,),
                    on_reply=lambda r: replies.append(r.request_id)))
        runtime.sim.run(until=1_200)
        assert runtime.coordinator.snapshots._next_id > keep, (
            "the run must have pruned at least one snapshot")
        assert len(runtime.coordinator.snapshots) <= keep
        runtime.fail_coordinator(failover_after_ms=50.0)
        runtime.sim.run(until=30_000)
        assert runtime.entity_state(ref)["balance"] == 20
        assert len(replies) == 20 and len(set(replies)) == 20


class TestNoHalfCommittedSnapshots:
    def test_every_snapshot_conserves_balance_under_pipeline(
            self, account_program):
        """Transfer load on a deep pipeline: every snapshot ever cut
        (including those later pruned) must conserve the total balance —
        a half-committed transfer batch would break the sum."""
        config = StateflowConfig(
            pipeline_depth=4,
            coordinator=CoordinatorConfig(snapshot_interval_ms=80.0))
        runtime = StateflowRuntime(account_program, config=config)
        totals = []
        original_take = runtime.coordinator.snapshots.take

        def auditing_take(**kwargs):
            state = materialize_snapshot(kwargs["state"])
            totals.append(sum(
                entry["balance"] for (kind, _), entry in state.items()
                if kind == "Account"))
            return original_take(**kwargs)

        runtime.coordinator.snapshots.take = auditing_take
        workload = YcsbWorkload("T", record_count=12, distribution="uniform",
                                seed=5, initial_balance=1_000)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=300, duration_ms=1_000, warmup_ms=0, drain_ms=20_000,
            seed=6))
        driver.run()
        assert len(totals) >= 5, "the run must actually cut snapshots"
        expected = workload.total_balance()
        assert all(total == expected for total in totals), (
            "a snapshot captured a half-committed batch: "
            f"{[t for t in totals if t != expected]}")
