"""Unit tests for the fault-injection subsystem: plan model, substrate
interception hooks, and injector policy."""

import pytest

from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    MessageFaultProfile,
    random_plan,
)
from repro.substrates.kafka import FETCH_RETRY_MS, KafkaBroker
from repro.substrates.network import DeliveryFault, Network
from repro.substrates.simulation import Simulation


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = random_plan(13, duration_ms=2_000, workers=3,
                           coordinator_faults=True)
        path = tmp_path / "plan.json"
        plan.to_json(path)
        loaded = FaultPlan.from_json(path)
        assert loaded == plan

    def test_from_json_accepts_inline_text(self):
        plan = random_plan(5)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_random_plan_is_seed_deterministic(self):
        assert random_plan(99) == random_plan(99)
        assert random_plan(99) != random_plan(100)

    def test_validation_rejects_bad_probability(self):
        event = FaultEvent(kind="messages", at_ms=0.0,
                           profile=MessageFaultProfile(drop_p=1.5))
        with pytest.raises(FaultPlanError):
            FaultPlan(events=[event]).validate()

    def test_validation_rejects_unknown_kind(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(events=[FaultEvent(kind="meteor", at_ms=0)]).validate()

    def test_validation_rejects_empty_partition(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(events=[FaultEvent(kind="partition", at_ms=0,
                                         duration_ms=10)]).validate()

    def test_unknown_intensity(self):
        with pytest.raises(FaultPlanError):
            random_plan(1, intensity="apocalyptic")


class TestNetworkHook:
    def test_drop_loses_the_message(self):
        sim = Simulation(seed=1)
        network = Network(sim)
        network.fault_hook = lambda src, dst: DeliveryFault(drop=True)
        delivered = []
        network.send(lambda: delivered.append(1))
        sim.run()
        assert delivered == []
        assert network.messages_dropped == 1

    def test_copies_deliver_duplicates(self):
        sim = Simulation(seed=1)
        network = Network(sim)
        network.fault_hook = lambda src, dst: DeliveryFault(copies=2)
        delivered = []
        network.send(lambda: delivered.append(1))
        sim.run()
        assert len(delivered) == 3
        assert network.messages_duplicated == 2

    def test_delay_spike_postpones_delivery(self):
        sim = Simulation(seed=1)
        fast = Network(sim)
        arrival = {}
        fast.send(lambda: arrival.setdefault("plain", sim.now))
        sim.run()
        sim2 = Simulation(seed=1)
        slow = Network(sim2)
        slow.fault_hook = lambda src, dst: DeliveryFault(extra_delay_ms=50.0)
        slow.send(lambda: arrival.setdefault("spiked", sim2.now))
        sim2.run()
        assert arrival["spiked"] == pytest.approx(arrival["plain"] + 50.0)

    def test_no_hook_is_fault_free(self):
        sim = Simulation(seed=1)
        network = Network(sim)
        delivered = []
        for _ in range(20):
            network.send(lambda: delivered.append(1))
        sim.run()
        assert len(delivered) == 20
        assert network.messages_dropped == 0


class TestKafkaHook:
    def _broker(self, hook):
        sim = Simulation(seed=2)
        broker = KafkaBroker(sim)
        broker.fault_hook = hook
        broker.create_topic("t", 1)
        return sim, broker

    def test_duplicate_produce_appends_two_records(self):
        sim, broker = self._broker(
            lambda op, name: DeliveryFault(copies=1) if op == "produce"
            else None)
        seen = []
        broker.subscribe("g", "t", lambda record: seen.append(record.offset))
        broker.produce("t", key="k", value="v")
        sim.run()
        assert broker.end_offset("t", 0) == 2
        assert seen == [0, 1]  # at-least-once: the reader dedups

    def test_fetch_fault_retries_until_delivered(self):
        rolls = {"count": 0}

        def hook(op, name):
            if op != "fetch":
                return None
            rolls["count"] += 1
            if rolls["count"] <= 3:
                return DeliveryFault(drop=True)
            return None

        sim, broker = self._broker(hook)
        seen = []
        broker.subscribe("g", "t", lambda record: seen.append(record.value))
        broker.produce("t", key="k", value="v")
        sim.run()
        assert seen == ["v"]  # never lost, just late
        assert broker.deliveries_faulted == 3

    def test_delayed_predecessor_does_not_stall_successors(self):
        dropped = {"armed": True}

        def hook(op, name):
            if op == "fetch" and dropped["armed"]:
                dropped["armed"] = False
                return DeliveryFault(drop=True,
                                     extra_delay_ms=20 * FETCH_RETRY_MS)
            return None

        sim, broker = self._broker(hook)
        seen = []
        broker.subscribe("g", "t", lambda record: seen.append(record.offset))
        for index in range(3):
            broker.produce("t", key="k", value=index)
        sim.run()
        assert seen == [0, 1, 2]  # offset order survives the delay


class TestInjectorPolicy:
    def _window_plan(self, **profile):
        return FaultPlan(seed=3, events=[FaultEvent(
            kind="messages", at_ms=0.0, duration_ms=1_000.0,
            channel="network", profile=MessageFaultProfile(**profile))])

    def test_network_duplicates_are_suppressed(self):
        """Direct channels model sequenced transports: a duplicate roll
        must never produce copies."""
        sim = Simulation(seed=3)
        network = Network(sim)
        injector = FaultInjector(self._window_plan(duplicate_p=1.0),
                                 sim=sim, network=network).install()
        delivered = []
        for _ in range(10):
            network.send(lambda: delivered.append(1))
        sim.run()
        assert len(delivered) == 10
        assert injector.stats.duplicates_suppressed == 10

    def test_window_scopes_faults_in_time(self):
        sim = Simulation(seed=3)
        network = Network(sim)
        FaultInjector(self._window_plan(drop_p=1.0),
                      sim=sim, network=network).install()
        inside, outside = [], []
        network.send(lambda: inside.append(1))
        sim.schedule(2_000.0,
                     lambda: network.send(lambda: outside.append(1)))
        sim.run()
        assert inside == []      # inside the window: dropped
        assert outside == [1]    # window expired: delivered

    def test_partition_isolates_named_nodes_both_ways(self):
        plan = FaultPlan(seed=4, events=[FaultEvent(
            kind="partition", at_ms=0.0, duration_ms=100.0,
            isolate=("worker-1",))])
        sim = Simulation(seed=4)
        network = Network(sim)
        # A coordinator (any named node) marks the fabric as labeled;
        # without one, partitions are skipped as physical no-ops.
        injector = FaultInjector(plan, sim=sim, network=network,
                                 coordinator=object()).install()
        delivered = []
        sim.schedule(1.0, lambda: (
            network.send(lambda: delivered.append("in"),
                         src="coordinator", dst="worker-1"),
            network.send(lambda: delivered.append("out"),
                         src="worker-1", dst="coordinator"),
            network.send(lambda: delivered.append("bystander"),
                         src="coordinator", dst="worker-2")))
        sim.schedule(200.0, lambda: network.send(
            lambda: delivered.append("healed"),
            src="coordinator", dst="worker-1"))
        sim.run()
        assert sorted(delivered) == ["bystander", "healed"]
        assert injector.stats.partition_drops == 2
        assert injector.stats.partitions_healed == 1

    def test_process_faults_skipped_without_hosts(self):
        plan = FaultPlan(seed=5, events=[
            FaultEvent(kind="crash_worker", at_ms=1.0, worker=0),
            FaultEvent(kind="crash_coordinator", at_ms=1.0,
                       duration_ms=10.0),
            FaultEvent(kind="partition", at_ms=1.0, duration_ms=10.0,
                       isolate=("worker-0",))])
        sim = Simulation(seed=5)
        injector = FaultInjector(plan, sim=sim,
                                 network=Network(sim)).install()
        sim.run()
        # The partition is also a no-op: no named nodes -> no src/dst
        # labels on sends -> it must not fabricate disruption data.
        assert injector.stats.skipped_events == 3
        assert injector.stats.worker_crashes == 0
        assert injector.stats.disruption_times_ms == []

    def test_torn_snapshot_arms_the_store(self):
        from repro.runtimes.stateflow.snapshots import SnapshotStore

        class Host:
            snapshots = SnapshotStore(mode="incremental")

        plan = FaultPlan(seed=9, events=[FaultEvent(
            kind="torn_snapshot", at_ms=1.0, variant="drop")])
        sim = Simulation(seed=9)
        injector = FaultInjector(plan, sim=sim,
                                 coordinator=Host()).install()
        sim.run()
        assert injector.stats.torn_snapshots_armed == 1
        assert Host.snapshots._torn_armed == "drop"

    def test_torn_snapshot_skipped_without_a_snapshot_store(self):
        plan = FaultPlan(seed=9, events=[FaultEvent(
            kind="torn_snapshot", at_ms=1.0)])
        sim = Simulation(seed=9)
        injector = FaultInjector(plan, sim=sim).install()
        sim.run()
        assert injector.stats.skipped_events == 1
        assert injector.stats.torn_snapshots_armed == 0

    def test_torn_snapshot_skipped_in_full_mode(self):
        from repro.runtimes.stateflow.snapshots import SnapshotStore

        class Host:
            snapshots = SnapshotStore(mode="full")

        plan = FaultPlan(seed=9, events=[FaultEvent(
            kind="torn_snapshot", at_ms=1.0)])
        sim = Simulation(seed=9)
        injector = FaultInjector(plan, sim=sim,
                                 coordinator=Host()).install()
        sim.run()
        assert injector.stats.skipped_events == 1

    def test_random_plan_torn_snapshots_knob(self):
        plan = random_plan(21, torn_snapshots=2)
        torn = [e for e in plan.events if e.kind == "torn_snapshot"]
        assert len(torn) == 2
        assert all(e.variant in ("drop", "duplicate") for e in torn)
        # The knob must not perturb the rest of the schedule.
        base = random_plan(21)
        assert [e for e in plan.events if e.kind != "torn_snapshot"] \
            == base.events
        # And it round-trips through JSON like every other event.
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_kafka_duplicates_respect_dedup_safe_topics(self):
        plan = FaultPlan(seed=6, events=[FaultEvent(
            kind="messages", at_ms=0.0, duration_ms=1_000.0,
            channel="kafka",
            profile=MessageFaultProfile(duplicate_p=1.0))])
        sim = Simulation(seed=6)
        broker = KafkaBroker(sim)
        broker.create_topic("ingress", 1)
        broker.create_topic("loopback", 1)
        FaultInjector(plan, sim=sim, broker=broker,
                      duplicable_topics=("ingress",)).install()
        broker.produce("ingress", key="k", value="v")
        broker.produce("loopback", key="k", value="v")
        sim.run()
        assert broker.end_offset("ingress", 0) == 2
        assert broker.end_offset("loopback", 0) == 1


class TestLocalReordering:
    def test_reordering_is_deterministic_and_state_preserving(self):
        from repro import compile_program
        from repro.runtimes import LocalRuntime

        import zoo

        program = compile_program(zoo.ZOO_ENTITIES)
        plan = FaultPlan(seed=8, events=[FaultEvent(
            kind="messages", at_ms=0.0, duration_ms=1_000.0,
            profile=MessageFaultProfile(delay_p=0.5))])

        def run():
            runtime = LocalRuntime(program, fault_plan=plan)
            counter = runtime.create("Counter", "c1")
            zoo_ref = runtime.create("Zoo", "z1")
            values = [runtime.call(zoo_ref, "loop_for", counter, 4),
                      runtime.call(zoo_ref, "straight", counter, 2)]
            return values, runtime.entity_state(counter)

        assert run() == run()
