"""``fast_deepcopy``: the commit-path copy must keep deepcopy's
isolation semantics while shallow-copying the flat shapes entity states
overwhelmingly take."""

from __future__ import annotations

import pickle

from repro.runtimes.state import (
    TOMBSTONE,
    _flat_scalar,
    fast_deepcopy,
    materialize_snapshot,
)


def test_scalars_pass_through() -> None:
    for value in (None, True, 3, 2.5, "s", b"b", (1, "a", None)):
        assert fast_deepcopy(value) is value


def test_flat_dict_is_isolated_by_shallow_copy() -> None:
    state = {"balance": 100, "name": "alice", "tags": ("a", "b")}
    copied = fast_deepcopy(state)
    assert copied == state
    assert copied is not state
    copied["balance"] = 0
    assert state["balance"] == 100
    # The fast path shares the (immutable) values themselves.
    assert copied["tags"] is state["tags"]


def test_nested_dict_falls_back_to_real_deepcopy() -> None:
    state = {"history": [1, 2], "meta": {"k": "v"}}
    copied = fast_deepcopy(state)
    copied["history"].append(3)
    copied["meta"]["k"] = "changed"
    assert state["history"] == [1, 2]
    assert state["meta"] == {"k": "v"}


def test_mutable_non_dict_values_are_deep_copied() -> None:
    value = [1, [2, 3]]
    copied = fast_deepcopy(value)
    copied[1].append(4)
    assert value == [1, [2, 3]]


def test_scalar_subclasses_do_not_take_the_fast_path() -> None:
    class Sneaky(str):
        pass

    assert not _flat_scalar(Sneaky("x"))
    assert not _flat_scalar((Sneaky("x"),))


def test_tombstone_keeps_identity_through_copy_and_pickle() -> None:
    assert fast_deepcopy(TOMBSTONE) is TOMBSTONE
    copied = fast_deepcopy({"gone": TOMBSTONE})
    assert copied["gone"] is TOMBSTONE
    # Cross-process: the wire format pickles tombstones inside deltas,
    # and receivers compare by identity.
    assert pickle.loads(pickle.dumps(TOMBSTONE)) is TOMBSTONE


def test_materialize_snapshot_copies_states() -> None:
    payload = {("Account", "a"): {"balance": 1}}
    flat = materialize_snapshot(payload)
    assert flat == payload
    flat[("Account", "a")]["balance"] = 99
    assert payload[("Account", "a")]["balance"] == 1
