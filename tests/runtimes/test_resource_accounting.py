"""Resource-model checks: the capacity arguments behind Figure 4.

The paper's explanation of the throughput crossover is architectural:
Statefun spends half its CPUs on messaging/state (Flink) and half on the
remote function runtime; StateFlow bundles everything on its workers.
These tests verify the simulation actually implements that accounting —
i.e. the Figure 4 result follows from the modelled architecture rather
than from hard-coded latencies.
"""

from repro.bench import build_runtime, ycsb_program
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload


def _drive(runtime, *, rps, duration=3_000):
    workload = YcsbWorkload("M", record_count=200, seed=5)
    runtime.preload(Account, workload.dataset_rows())
    if hasattr(runtime, "start"):
        runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=rps, duration_ms=duration, warmup_ms=0, drain_ms=3_000))
    return driver.run()


class TestStatefunAccounting:
    def test_function_pool_is_the_bottleneck(self):
        runtime = build_runtime("statefun", ycsb_program())
        elapsed_start = runtime.sim.now
        _drive(runtime, rps=2500)
        elapsed = runtime.sim.now - elapsed_start
        fn_util = runtime.function_cpu.utilisation(elapsed)
        flink_util = runtime.flink_cpu.utilisation(elapsed)
        assert fn_util > 0.5, f"fn pool should run hot, got {fn_util:.2f}"
        assert fn_util > 2 * flink_util, (
            "the remote function pool, not Flink, must saturate first")

    def test_doubling_function_cores_raises_capacity(self):
        narrow = build_runtime("statefun", ycsb_program(), seed=3)
        wide = build_runtime("statefun", ycsb_program(), seed=3,
                             function_cores=6)
        narrow_result = _drive(narrow, rps=3200)
        wide_result = _drive(wide, rps=3200)
        assert wide_result.percentile(99) < narrow_result.percentile(99) / 2


class TestStateflowAccounting:
    def test_workers_far_from_saturation_at_4000(self):
        runtime = build_runtime("stateflow", ycsb_program())
        start = runtime.sim.now
        _drive(runtime, rps=4000, duration=2_000)
        elapsed = runtime.sim.now - start
        for worker in runtime.workers:
            assert worker.cpu.utilisation(elapsed) < 0.8

    def test_coordinator_single_core_not_bottleneck(self):
        runtime = build_runtime("stateflow", ycsb_program())
        start = runtime.sim.now
        result = _drive(runtime, rps=4000, duration=2_000)
        elapsed = runtime.sim.now - start
        assert runtime.coordinator.cpu.utilisation(elapsed) < 0.9
        assert result.completed == result.sent

    def test_fewer_workers_degrade(self):
        five = build_runtime("stateflow", ycsb_program(), seed=4)
        one = build_runtime("stateflow", ycsb_program(), seed=4, workers=1)
        five_result = _drive(five, rps=2500, duration=2_000)
        one_result = _drive(one, rps=2500, duration=2_000)
        assert one_result.percentile(99) > five_result.percentile(99)
