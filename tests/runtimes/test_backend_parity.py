"""Backend parity: the state backend is a storage concern, never a
semantic one.  Under the same seed, the dict and copy-on-write backends
must produce identical invocation results, identical Aria conflict/abort
statistics, and identical committed state — including across failure
injection and snapshot recovery."""

from dataclasses import dataclass
from typing import Any

import pytest

from repro.runtimes.state import BACKENDS
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.substrates.simulation import Simulation
from repro.workloads import Account

ACCOUNTS = 10
INITIAL = 100


@dataclass
class RunOutcome:
    """Everything observable from one driven run."""

    replies: dict[int, tuple[Any, str | None]]
    stats: dict[str, int]
    final_state: dict[str, dict]
    recoveries: int


def _drive(account_program, backend: str, *, seed: int = 7,
           fail_worker_at: float | None = None) -> RunOutcome:
    config = StateflowConfig(
        state_backend=backend,
        coordinator=CoordinatorConfig(snapshot_interval_ms=300.0,
                                      failure_detect_ms=250.0))
    runtime = StateflowRuntime(account_program, sim=Simulation(seed=seed),
                               config=config)
    refs = runtime.preload(
        Account, [(f"a{i}", INITIAL) for i in range(ACCOUNTS)])
    runtime.start()
    replies: dict[int, tuple[Any, str | None]] = {}

    def record(request_id):
        return lambda reply: replies.__setitem__(
            request_id, (reply.payload, reply.error))

    # A deterministic mix: conflicting multi-key transfers over a small
    # hot set plus single-key adds and reads, submitted in bursts so
    # overlapping transfers land in the same Aria batch and conflict.
    sequence = []
    for index in range(60):
        src = refs[index % ACCOUNTS]
        dst = refs[(index * 3 + 1) % ACCOUNTS]
        if src.key == dst.key:
            dst = refs[(index * 3 + 2) % ACCOUNTS]
        sequence.append(("transfer", src, (1 + index % 3, dst)))
        if index % 4 == 0:
            sequence.append(("add", refs[index % ACCOUNTS], (2,)))
        if index % 7 == 0:
            sequence.append(("read", refs[(index + 1) % ACCOUNTS], ()))
    for position, (method, ref, args) in enumerate(sequence):
        def fire(ref=ref, method=method, args=args):
            request_id = runtime.submit(ref, method, args)
            runtime._reply_callbacks[request_id] = record(request_id)
        runtime.sim.schedule_at((position // 8) * 40.0, fire)
    if fail_worker_at is not None:
        runtime.fail_worker(runtime.worker_of("Account", "a0"),
                            at_ms=fail_worker_at)
    runtime.sim.run(until=60_000)
    stats = runtime.coordinator.stats
    return RunOutcome(
        replies=replies,
        stats={"batches": stats.batches,
               "transactions": stats.transactions,
               "commits": stats.commits,
               "aborts_waw": stats.aborts_waw,
               "aborts_raw": stats.aborts_raw,
               "retries": stats.retries,
               "fallback_runs": stats.fallback_runs,
               "single_key": stats.single_key},
        final_state={f"a{i}": runtime.entity_state(refs[i])
                     for i in range(ACCOUNTS)},
        recoveries=runtime.coordinator.recoveries)


def test_registry_covers_both_backends():
    assert {"dict", "cow"} <= set(BACKENDS)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_duplicate_create_rejected_across_partitions(account_program,
                                                     backend):
    """Constructors execute before their key is known (on the key-less
    worker), so the duplicate-key check must see every partition, not
    just the executing worker's own."""
    from repro.core.errors import InvocationError

    config = StateflowConfig(state_backend=backend)
    runtime = StateflowRuntime(account_program, config=config)
    (ref,) = runtime.preload(Account, [("dup", 100)])
    runtime.start()
    with pytest.raises(InvocationError, match="already exists"):
        runtime.create(Account, "dup", 55)
    assert runtime.entity_state(ref)["balance"] == 100


class TestBackendParity:
    @pytest.fixture(scope="class")
    def outcomes(self, account_program):
        return {backend: _drive(account_program, backend)
                for backend in ("dict", "cow")}

    def test_identical_invocation_results(self, outcomes):
        dict_replies = outcomes["dict"].replies
        cow_replies = outcomes["cow"].replies
        assert dict_replies.keys() == cow_replies.keys()
        assert len(dict_replies) > 50
        for request_id, outcome in dict_replies.items():
            assert cow_replies[request_id] == outcome

    def test_identical_aria_statistics(self, outcomes):
        assert outcomes["dict"].stats == outcomes["cow"].stats
        # The workload must actually exercise the conflict machinery for
        # the parity claim to mean anything.
        stats = outcomes["dict"].stats
        assert stats["aborts_waw"] + stats["aborts_raw"] > 0
        assert stats["single_key"] > 0

    def test_identical_committed_state(self, outcomes):
        assert outcomes["dict"].final_state == outcomes["cow"].final_state

    def test_money_conserved_on_both(self, outcomes):
        adds = sum(1 for index in range(60) if index % 4 == 0) * 2
        for outcome in outcomes.values():
            total = sum(state["balance"]
                        for state in outcome.final_state.values())
            assert total == ACCOUNTS * INITIAL + adds


class TestBackendParityThroughRecovery:
    @pytest.fixture(scope="class")
    def outcomes(self, account_program):
        return {backend: _drive(account_program, backend,
                                fail_worker_at=200.0)
                for backend in ("dict", "cow")}

    def test_recovery_happened(self, outcomes):
        for outcome in outcomes.values():
            assert outcome.recoveries >= 1

    def test_identical_post_recovery_state(self, outcomes):
        assert outcomes["dict"].final_state == outcomes["cow"].final_state

    def test_identical_post_recovery_replies(self, outcomes):
        dict_replies = outcomes["dict"].replies
        cow_replies = outcomes["cow"].replies
        assert dict_replies.keys() == cow_replies.keys()
        for request_id, outcome in dict_replies.items():
            assert cow_replies[request_id] == outcome

    def test_money_conserved_through_recovery(self, outcomes):
        adds = sum(1 for index in range(60) if index % 4 == 0) * 2
        for outcome in outcomes.values():
            total = sum(state["balance"]
                        for state in outcome.final_state.values())
            assert total == ACCOUNTS * INITIAL + adds
