"""Version-pinned read views: the state-layer contract the pipelined
epoch coordinator relies on — a pinned view answers with the store's
contents exactly as of the pin, regardless of later writes, on every
backend and on the partitioned store."""

import pytest

from repro.runtimes.state import (
    CowStateBackend,
    DictStateBackend,
    PartitionedStore,
)

BACKENDS = [DictStateBackend, CowStateBackend]


@pytest.mark.parametrize("backend_cls", BACKENDS)
class TestBackendReadViews:
    def test_view_is_immune_to_later_writes(self, backend_cls):
        backend = backend_cls()
        backend.put("Account", "a", {"balance": 100})
        backend.pin_view(7)
        backend.put("Account", "a", {"balance": 999})
        view = backend.view(7)
        assert view.get("Account", "a") == {"balance": 100}
        assert backend.get("Account", "a") == {"balance": 999}

    def test_view_hides_keys_created_after_pin(self, backend_cls):
        backend = backend_cls()
        backend.pin_view(1)
        backend.put("Account", "new", {"balance": 1})
        view = backend.view(1)
        assert view.get("Account", "new") is None
        assert not view.exists("Account", "new")
        assert backend.exists("Account", "new")

    def test_view_sees_untouched_keys_live(self, backend_cls):
        backend = backend_cls()
        backend.put("Account", "quiet", {"balance": 5})
        backend.pin_view(3)
        backend.put("Account", "hot", {"balance": 1})
        assert backend.view(3).get("Account", "quiet") == {"balance": 5}
        assert backend.view(3).exists("Account", "quiet")

    def test_release_and_unknown_versions(self, backend_cls):
        backend = backend_cls()
        backend.pin_view(2)
        assert backend.view(2) is not None
        backend.release_view(2)
        assert backend.view(2) is None
        backend.release_view(2)  # idempotent
        assert backend.view(99) is None

    def test_view_get_returns_copies(self, backend_cls):
        backend = backend_cls()
        backend.put("Account", "a", {"balance": 100})
        backend.pin_view(1)
        backend.put("Account", "a", {"balance": 200})
        copy_out = backend.view(1).get("Account", "a")
        copy_out["balance"] = -1
        assert backend.view(1).get("Account", "a") == {"balance": 100}

    def test_restore_drops_views(self, backend_cls):
        backend = backend_cls()
        backend.put("Account", "a", {"balance": 1})
        frozen = backend.snapshot()
        backend.pin_view(4)
        backend.restore(frozen)
        assert backend.view(4) is None

    def test_multiple_pinned_versions_are_independent(self, backend_cls):
        backend = backend_cls()
        backend.put("Account", "a", {"balance": 1})
        backend.pin_view(1)
        backend.put("Account", "a", {"balance": 2})
        backend.pin_view(2)
        backend.put("Account", "a", {"balance": 3})
        assert backend.view(1).get("Account", "a") == {"balance": 1}
        assert backend.view(2).get("Account", "a") == {"balance": 2}
        assert backend.get("Account", "a") == {"balance": 3}


@pytest.mark.parametrize("backend", ["dict", "cow"])
class TestPartitionedStoreViews:
    def test_view_routes_and_pins_across_slots(self, backend):
        store = PartitionedStore(3, backend=backend, slots=8)
        keys = [f"acct-{i}" for i in range(16)]
        for key in keys:
            store.put("Account", key, {"balance": 10})
        store.pin_view(5)
        for key in keys:
            store.put("Account", key, {"balance": 99})
        view = store.view(5)
        assert all(view.get("Account", key) == {"balance": 10}
                   for key in keys)
        assert all(store.get("Account", key) == {"balance": 99}
                   for key in keys)

    def test_release_view_releases_every_slot(self, backend):
        store = PartitionedStore(2, backend=backend, slots=4)
        store.pin_view(1)
        store.pin_view(2)
        store.release_view(1)
        store.release_view(2)
        assert store.view(1) is None and store.view(2) is None
        # Slot backends released too: nothing lingers.
        assert all(slot.view(1) is None and slot.view(2) is None
                   for slot in store._slots)

    def test_restore_drops_views(self, backend):
        store = PartitionedStore(2, backend=backend, slots=4)
        store.put("Account", "a", {"balance": 1})
        frozen = store.snapshot()
        store.pin_view(9)
        store.restore(frozen)
        assert store.view(9) is None
