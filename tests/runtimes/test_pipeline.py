"""Pipelined epoch execution: overlap, snapshot-view isolation,
cross-batch stale aborts, depth equivalence, and whole-pipeline drains
(recovery, rescale)."""

import pytest

from repro.runtimes.state import materialize_snapshot
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.substrates.network import LatencyModel, NetworkConfig
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload


def _runtime(account_program, *, depth=2, network_median_ms=None,
             **coordinator_overrides) -> StateflowRuntime:
    config = StateflowConfig(
        pipeline_depth=depth,
        coordinator=CoordinatorConfig(**coordinator_overrides))
    if network_median_ms is not None:
        config.network = NetworkConfig(
            intra_cluster=LatencyModel(median_ms=network_median_ms,
                                       sigma=0.05))
    return StateflowRuntime(account_program, config=config)


class TestOverlap:
    def test_pipeline_reaches_depth_two_under_load(self, account_program):
        runtime = _runtime(account_program, depth=2)
        refs = runtime.preload(
            Account, [(f"a{i}", 100) for i in range(20)])
        runtime.start()
        for round_i in range(25):
            for ref in refs:
                runtime.sim.schedule_at(
                    round_i * 2.0, lambda r=ref: runtime.submit(r, "add", (1,)))
        runtime.sim.run(until=10_000)
        stats = runtime.coordinator.stats
        assert stats.depth_hist.get(2, 0) > 0, (
            "a busy depth-2 pipeline must actually seal over an "
            f"in-flight batch; histogram: {stats.depth_hist}")
        assert all(runtime.entity_state(r)["balance"] == 125 for r in refs)

    def test_depth_one_is_strictly_serial(self, account_program):
        runtime = _runtime(account_program, depth=1)
        refs = runtime.preload(
            Account, [(f"a{i}", 100) for i in range(10)])
        runtime.start()
        for ref in refs:
            runtime.submit(ref, "add", (1,))
            runtime.submit(ref, "transfer", (1, refs[0]))
        runtime.sim.run(until=20_000)
        stats = runtime.coordinator.stats
        assert set(stats.depth_hist) == {1}
        assert stats.stall_ms == 0.0
        assert stats.aborts_stale == 0
        assert not runtime.coordinator._pinned
        assert runtime.committed._views == {}


class TestSnapshotViewIsolation:
    """A batch sealed over an in-flight commit executes against the
    pinned snapshot of its seal boundary: the older batch's writes land
    mid-execution but stay invisible, and the stale read is caught at
    the commit barrier (ABORT_STALE) and re-executed in arrival order."""

    def test_cross_batch_stale_read_aborts_and_reexecutes(
            self, account_program):
        # Slow fabric: the first transfer's commit phase (apply-write
        # round trips) is long enough for the second to seal, execute
        # against the pinned pre-commit view, and have to abort stale.
        runtime = _runtime(account_program, depth=2, network_median_ms=8.0)
        hot, b, c = runtime.preload(
            Account, [("hot", 100), ("b", 0), ("c", 0)])
        runtime.start()
        replies = {}
        runtime.reply_tap = lambda r: replies.setdefault(r.request_id,
                                                         r.payload)
        first = runtime.submit(hot, "transfer", (60, b))
        coordinator = runtime.coordinator
        runtime.sim.run_until(lambda: coordinator._commit_batch is not None,
                              max_time=60_000)
        # The pipelined batch: sealed while the first is committing.
        second = runtime.submit(hot, "transfer", (60, c))
        runtime.sim.run(until=runtime.sim.now + 30_000)
        assert coordinator.stats.aborts_stale >= 1
        # Arrival-order serial outcome: the second transfer re-executed
        # against live state and saw the drained balance.
        assert replies[first] is True
        assert replies[second] is False
        assert runtime.entity_state(hot)["balance"] == 40
        assert runtime.entity_state(b)["balance"] == 60
        assert runtime.entity_state(c)["balance"] == 0


def _ycsb_run(account_program, *, depth, workload="T", distribution="uniform",
              rps=250.0, duration_ms=800.0, records=20, seed=11):
    runtime = _runtime(account_program, depth=depth)
    trace = []
    runtime.reply_tap = lambda r: trace.append(
        (r.request_id, repr(r.payload), r.error))
    workload = YcsbWorkload(workload, record_count=records,
                            distribution=distribution, seed=seed + 1,
                            initial_balance=1_000)
    runtime.preload(Account, workload.dataset_rows())
    runtime.start()
    driver = WorkloadDriver(runtime, workload, DriverConfig(
        rps=rps, duration_ms=duration_ms, warmup_ms=0, drain_ms=20_000,
        seed=seed + 2))
    driver.run()
    runtime.sim.run(until=runtime.sim.now + 20_000)
    state = materialize_snapshot(runtime.committed.snapshot())
    return sorted(trace), sorted(state.items(), key=repr)


class TestDepthEquivalence:
    """Replies and final state must be identical across pipeline depths:
    the pipeline changes *when* work happens, never *what* commits."""

    @pytest.mark.parametrize("workload,distribution",
                             [("T", "uniform"), ("A", "zipfian")])
    def test_depth2_matches_depth1(self, account_program, workload,
                                   distribution):
        base = _ycsb_run(account_program, depth=1, workload=workload,
                         distribution=distribution)
        piped = _ycsb_run(account_program, depth=2, workload=workload,
                          distribution=distribution)
        assert piped[0] == base[0], "reply traces diverged across depths"
        assert piped[1] == base[1], "final state diverged across depths"

    def test_depth4_matches_depth1(self, account_program):
        base = _ycsb_run(account_program, depth=1)
        piped = _ycsb_run(account_program, depth=4)
        assert piped == base


class TestPipelineDrains:
    def test_recovery_abandons_whole_pipeline(self, account_program):
        runtime = _runtime(account_program, depth=2, network_median_ms=8.0,
                           snapshot_interval_ms=250.0)
        refs = runtime.preload(Account, [(f"a{i}", 100) for i in range(8)])
        runtime.start()
        replies = []
        for i, ref in enumerate(refs):
            runtime.sim.schedule_at(
                i * 6.0, lambda r=ref: runtime.submit(
                    r, "add", (1,),
                    on_reply=lambda reply: replies.append(reply.request_id)))
        coordinator = runtime.coordinator
        runtime.sim.run_until(lambda: len(coordinator.inflight) == 2,
                              max_time=60_000)
        coordinator.recover()
        # The WHOLE pipeline is gone, including pinned snapshot views.
        assert coordinator.inflight == {}
        assert coordinator._commit_batch is None
        assert coordinator._pinned == set()
        assert coordinator._footprints == {}
        assert runtime.committed._views == {}
        runtime.sim.run(until=runtime.sim.now + 30_000)
        # Replay restored every request exactly once.
        assert sorted(replies) == sorted(set(replies))
        assert len(replies) == len(refs)
        assert all(runtime.entity_state(r)["balance"] == 101 for r in refs)

    def test_snapshot_folds_executing_batches_into_pending(
            self, account_program):
        """A snapshot cut mid-pipeline must carry still-executing
        batches as channel state (their effects are uncommitted), so a
        recovery from it replays them — and must never capture a
        half-committed batch."""
        runtime = _runtime(account_program, depth=2, network_median_ms=8.0)
        refs = runtime.preload(Account, [(f"a{i}", 100) for i in range(8)])
        runtime.start()
        for i, ref in enumerate(refs):
            runtime.sim.schedule_at(
                i * 6.0, lambda r=ref: runtime.submit(r, "add", (1,)))
        coordinator = runtime.coordinator
        runtime.sim.run_until(lambda: len(coordinator.inflight) == 2,
                              max_time=60_000)
        executing = [batch for bid, batch in coordinator.inflight.items()
                     if coordinator._commit_batch is None
                     or bid != coordinator._commit_batch.batch_id]
        assert executing, "test needs a batch beyond the commit region"
        folded_ids = {txn.request_id for batch in executing
                      for txn in batch.all_records()}
        snapshots_before = len(coordinator.snapshots)
        coordinator._snapshot_requested = True
        runtime.sim.run_until(
            lambda: len(coordinator.snapshots) > snapshots_before,
            max_time=60_000)
        snapshot = coordinator.snapshots.latest()
        snapshot_ids = {txn.request_id for txn in snapshot.pending}
        assert folded_ids <= snapshot_ids, (
            "executing batches must be folded into snapshot channel state")
        # No half-committed batch: the cut's balances are the preload
        # plus exactly the adds whose replies the cut also carries
        # (every committed add replied before the batch closed; folded
        # executing adds contributed nothing yet).
        state = materialize_snapshot(snapshot.state)
        total = sum(entry["balance"] for (kind, _), entry in state.items()
                    if kind == "Account")
        assert total - 800 == len(snapshot.replied)
        runtime.sim.run(until=runtime.sim.now + 30_000)
        assert all(runtime.entity_state(r)["balance"] == 101 for r in refs)

    def test_rescale_waits_for_pipeline_drain(self, account_program):
        runtime = _runtime(account_program, depth=2,
                           snapshot_interval_ms=250.0)
        refs = runtime.preload(Account, [(f"a{i}", 100) for i in range(12)])
        runtime.start()
        coordinator = runtime.coordinator
        original_begin = coordinator._begin_rescale
        drained_at_begin = []

        def checked_begin(target):
            drained_at_begin.append(not coordinator.inflight)
            original_begin(target)

        coordinator._begin_rescale = checked_begin
        for i, ref in enumerate(refs):
            runtime.sim.schedule_at(
                i * 4.0, lambda r=ref: runtime.submit(r, "add", (1,)))
        runtime.sim.schedule_at(20.0, lambda: runtime.request_rescale(4))
        runtime.sim.run(until=30_000)
        assert coordinator.rescales == 1
        assert drained_at_begin and all(drained_at_begin), (
            "the RESCALE barrier must only fire on a drained pipeline")
        assert runtime.worker_count == 4
        assert all(runtime.entity_state(r)["balance"] == 101 for r in refs)
