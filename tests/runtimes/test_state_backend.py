"""State backends (dict / copy-on-write / partitioned) and the
per-transaction Aria view."""

import pytest

from repro.core.errors import EntityAlreadyExistsError
from repro.ir.events import TxnContext
from repro.runtimes.state import (
    BACKENDS,
    CowSnapshot,
    CowStateBackend,
    DictStateBackend,
    PartitionedSnapshot,
    PartitionedStore,
    StateBackend,
    make_state_backend,
)
from repro.runtimes.stateflow.state_backend import (
    AriaStateView,
    CommittedStore,
)


@pytest.fixture()
def store():
    committed = CommittedStore()
    committed.put("Account", "a", {"account_id": "a", "balance": 10})
    committed.put("Account", "b", {"account_id": "b", "balance": 20})
    return committed


@pytest.fixture(params=sorted(BACKENDS))
def any_backend(request):
    backend = make_state_backend(request.param)
    backend.put("Account", "a", {"account_id": "a", "balance": 10})
    backend.put("Account", "b", {"account_id": "b", "balance": 20})
    return backend


class TestCommittedStore:
    def test_get_returns_copy(self, store):
        state = store.get("Account", "a")
        state["balance"] = 999
        assert store.get("Account", "a")["balance"] == 10

    def test_missing_is_none(self, store):
        assert store.get("Account", "ghost") is None

    def test_snapshot_restore_roundtrip(self, store):
        snapshot = store.snapshot()
        store.put("Account", "a", {"account_id": "a", "balance": 0})
        store.put("Account", "c", {"account_id": "c", "balance": 5})
        store.restore(snapshot)
        assert store.get("Account", "a")["balance"] == 10
        assert store.get("Account", "c") is None

    def test_snapshot_is_deep(self, store):
        store.put("Account", "n", {"nested": {"x": [1, 2]}})
        snapshot = store.snapshot()
        store.get("Account", "n")  # copies anyway
        snapshot[("Account", "n")]["nested"]["x"].append(3)
        assert store.get("Account", "n")["nested"]["x"] == [1, 2]

    def test_apply_writes(self, store):
        store.apply_writes({("Account", "a"): {"balance": 1},
                            ("Account", "z"): {"balance": 2}})
        assert store.get("Account", "a") == {"balance": 1}
        assert store.get("Account", "z") == {"balance": 2}

    def test_len_and_keys(self, store):
        assert len(store) == 2
        assert set(store.keys()) == {("Account", "a"), ("Account", "b")}


class TestBackendContract:
    """Behaviour every registered backend must share."""

    def test_satisfies_protocol(self, any_backend):
        assert isinstance(any_backend, StateBackend)

    def test_get_returns_copy(self, any_backend):
        state = any_backend.get("Account", "a")
        state["balance"] = 999
        assert any_backend.get("Account", "a")["balance"] == 10

    def test_missing_is_none(self, any_backend):
        assert any_backend.get("Account", "ghost") is None

    def test_overwrite_and_exists(self, any_backend):
        any_backend.put("Account", "a", {"account_id": "a", "balance": 1})
        assert any_backend.get("Account", "a")["balance"] == 1
        assert any_backend.exists("Account", "a")
        assert not any_backend.exists("Account", "ghost")

    def test_snapshot_restore_roundtrip(self, any_backend):
        snapshot = any_backend.snapshot()
        any_backend.put("Account", "a", {"account_id": "a", "balance": 0})
        any_backend.put("Account", "c", {"account_id": "c", "balance": 5})
        any_backend.restore(snapshot)
        assert any_backend.get("Account", "a")["balance"] == 10
        assert any_backend.get("Account", "c") is None

    def test_snapshot_isolated_from_later_writes(self, any_backend):
        snapshot = any_backend.snapshot()
        any_backend.put("Account", "n", {"nested": {"x": [1, 2]}})
        any_backend.apply_writes(
            {("Account", "a"): {"account_id": "a", "balance": -1}})
        any_backend.restore(snapshot)
        assert any_backend.get("Account", "n") is None
        assert any_backend.get("Account", "a")["balance"] == 10

    def test_nested_mutation_through_get_cannot_leak(self, any_backend):
        any_backend.put("Account", "n", {"nested": {"x": [1]}})
        state = any_backend.get("Account", "n")
        state["nested"]["x"].append(99)
        assert any_backend.get("Account", "n")["nested"]["x"] == [1]

    def test_nested_mutation_through_put_input_cannot_leak(self,
                                                           any_backend):
        state = {"nested": {"x": [1]}}
        any_backend.put("Account", "n", state)
        state["nested"]["x"].append(99)
        assert any_backend.get("Account", "n")["nested"]["x"] == [1]

    def test_materialized_snapshot_is_isolated(self, any_backend):
        from repro.runtimes.state import materialize_snapshot

        any_backend.put("Account", "n", {"nested": {"x": [1]}})
        snapshot = any_backend.snapshot()
        materialize_snapshot(snapshot)[("Account", "n")][
            "nested"]["x"].append(99)
        # Neither the stored snapshot nor live state may see the mutation.
        assert materialize_snapshot(snapshot)[("Account", "n")][
            "nested"]["x"] == [1]
        any_backend.restore(snapshot)
        assert any_backend.get("Account", "n")["nested"]["x"] == [1]

    def test_nested_mutation_cannot_leak_into_snapshot(self, any_backend):
        any_backend.put("Account", "n", {"nested": {"x": [1, 2]}})
        snapshot = any_backend.snapshot()
        state = any_backend.get("Account", "n")
        state["nested"]["x"].append(3)
        any_backend.put("Account", "n", state)
        any_backend.restore(snapshot)
        assert any_backend.get("Account", "n")["nested"]["x"] == [1, 2]

    def test_len_and_keys(self, any_backend):
        assert len(any_backend) == 2
        assert set(any_backend.keys()) == {("Account", "a"),
                                           ("Account", "b")}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown state backend"):
            make_state_backend("rocksdb")


class TestCowStateBackend:
    def test_snapshot_shares_layers_not_copies(self):
        backend = CowStateBackend()
        backend.put("Account", "a", {"balance": 1})
        first = backend.snapshot()
        assert isinstance(first, CowSnapshot)
        # No writes since: the next snapshot reuses the same chain.
        second = backend.snapshot()
        assert second.layers == first.layers

    def test_writes_after_snapshot_go_to_new_head(self):
        backend = CowStateBackend()
        backend.put("Account", "a", {"balance": 1})
        snapshot = backend.snapshot()
        backend.put("Account", "a", {"balance": 2})
        assert backend.get("Account", "a")["balance"] == 2
        assert snapshot.materialize()[("Account", "a")]["balance"] == 1

    def test_old_snapshot_survives_restore_of_newer(self):
        backend = CowStateBackend()
        backend.put("Account", "a", {"balance": 1})
        old = backend.snapshot()
        backend.put("Account", "a", {"balance": 2})
        backend.snapshot()
        backend.restore(old)
        assert backend.get("Account", "a")["balance"] == 1

    def test_chain_compaction_bounds_layers(self):
        backend = CowStateBackend(compact_after=3)
        for round_ in range(10):
            backend.put("Account", f"k{round_}", {"balance": round_})
            backend.snapshot()
        assert backend.layer_count <= 3
        assert backend.layers_compacted >= 1
        assert len(backend) == 10
        for round_ in range(10):
            assert backend.get("Account", f"k{round_}") == {
                "balance": round_}

    def test_materialize_does_not_alias_live_layers(self):
        backend = CowStateBackend()
        backend.put("Account", "n", {"tags": ["x"]})
        snapshot = backend.snapshot()
        # A consumer mutating a materialized row must corrupt neither
        # live committed state nor the stored snapshot.
        snapshot.materialize()[("Account", "n")]["tags"].append("bad")
        assert backend.get("Account", "n")["tags"] == ["x"]
        backend.restore(snapshot)
        assert backend.get("Account", "n")["tags"] == ["x"]

    def test_newer_layer_shadows_older(self):
        backend = CowStateBackend()
        backend.put("Account", "a", {"balance": 1})
        backend.snapshot()
        backend.put("Account", "a", {"balance": 2})
        backend.snapshot()
        assert backend.get("Account", "a")["balance"] == 2
        assert len(backend) == 1


class TestPartitionedStore:
    @pytest.mark.parametrize("partitions", [1, 2, 5, 8])
    def test_routing_covers_all_partitions_consistently(self, partitions):
        store = PartitionedStore(partitions, backend="dict")
        for index in range(64):
            store.put("Account", f"k{index}", {"balance": index})
        assert len(store) == 64
        for index in range(64):
            owner = store.partition_of("Account", f"k{index}")
            assert store.partition(owner).get(
                "Account", f"k{index}") == {"balance": index}
            for other in range(partitions):
                if other != owner:
                    assert store.partition(other).get(
                        "Account", f"k{index}") is None

    @pytest.mark.parametrize("partitions", [1, 2, 5, 8])
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_snapshot_restore_roundtrip(self, partitions, backend):
        store = PartitionedStore(partitions, backend=backend)
        for index in range(32):
            store.put("Account", f"k{index}", {"balance": index})
        snapshot = store.snapshot()
        assert isinstance(snapshot, PartitionedSnapshot)
        assert snapshot.partition_count == partitions
        for index in range(32):
            store.put("Account", f"k{index}", {"balance": -1})
        store.put("Account", "extra", {"balance": 0})
        store.restore(snapshot)
        assert store.get("Account", "extra") is None
        for index in range(32):
            assert store.get("Account", f"k{index}")["balance"] == index

    def test_per_partition_fragment_roundtrip(self):
        store = PartitionedStore(4, backend="cow")
        for index in range(32):
            store.put("Account", f"k{index}", {"balance": index})
        fragments = [store.snapshot_partition(i) for i in range(4)]
        store.apply_writes({("Account", f"k{i}"): {"balance": -1}
                            for i in range(32)})
        for index, fragment in enumerate(fragments):
            store.restore_partition(index, fragment)
        for index in range(32):
            assert store.get("Account", f"k{index}")["balance"] == index

    def test_partition_count_mismatch_rejected(self):
        store = PartitionedStore(2)
        other = PartitionedStore(3)
        with pytest.raises(ValueError, match="partition"):
            store.restore(other.snapshot())

    def test_apply_writes_routes_to_owners(self):
        store = PartitionedStore(3)
        writes = {("Account", f"k{i}"): {"balance": i} for i in range(16)}
        store.apply_writes(writes)
        for (entity, key), state in writes.items():
            owner = store.partition_of(entity, key)
            assert store.partition(owner).get(entity, key) == state

    def test_at_least_one_partition_required(self):
        with pytest.raises(ValueError):
            PartitionedStore(0)


class TestAriaStateView:
    def test_reads_recorded(self, store):
        ctx = TxnContext(tid=0, batch_id=0)
        view = AriaStateView(store, ctx)
        view.get("Account", "a")
        assert ctx.read_set == {("Account", "a")}

    def test_writes_buffered_not_applied(self, store):
        ctx = TxnContext(tid=0, batch_id=0)
        view = AriaStateView(store, ctx)
        view.put("Account", "a", {"account_id": "a", "balance": 0})
        assert store.get("Account", "a")["balance"] == 10
        assert ctx.write_set[("Account", "a")]["balance"] == 0

    def test_read_your_own_writes(self, store):
        ctx = TxnContext(tid=0, batch_id=0)
        view = AriaStateView(store, ctx)
        view.put("Account", "a", {"account_id": "a", "balance": 77})
        assert view.get("Account", "a")["balance"] == 77

    def test_snapshot_isolation_between_txns(self, store):
        first = AriaStateView(store, TxnContext(tid=0, batch_id=0))
        second = AriaStateView(store, TxnContext(tid=1, batch_id=0))
        first.put("Account", "a", {"account_id": "a", "balance": 0})
        # The second transaction must not see the first's buffered write.
        assert second.get("Account", "a")["balance"] == 10

    def test_create_buffers_into_create_set(self, store):
        ctx = TxnContext(tid=0, batch_id=0)
        view = AriaStateView(store, ctx)
        view.create("Account", "new", {"account_id": "new", "balance": 1})
        assert ("Account", "new") in ctx.create_set
        assert ("Account", "new") in ctx.write_set
        assert store.get("Account", "new") is None

    def test_create_existing_raises_already_exists(self, store):
        view = AriaStateView(store, TxnContext(tid=0, batch_id=0))
        with pytest.raises(EntityAlreadyExistsError):
            view.create("Account", "a", {})

    def test_create_after_buffered_create_raises_already_exists(self, store):
        view = AriaStateView(store, TxnContext(tid=0, batch_id=0))
        view.create("Account", "new", {"account_id": "new", "balance": 1})
        with pytest.raises(EntityAlreadyExistsError):
            view.create("Account", "new", {"account_id": "new",
                                           "balance": 2})

    def test_works_over_cow_backend(self):
        backend = CowStateBackend()
        backend.put("Account", "a", {"account_id": "a", "balance": 10})
        ctx = TxnContext(tid=0, batch_id=0)
        view = AriaStateView(backend, ctx)
        assert view.get("Account", "a")["balance"] == 10
        view.put("Account", "a", {"account_id": "a", "balance": 0})
        assert backend.get("Account", "a")["balance"] == 10
