"""CommittedStore and the per-transaction Aria view."""

import pytest

from repro.core.errors import EntityNotFoundError
from repro.ir.events import TxnContext
from repro.runtimes.stateflow.state_backend import (
    AriaStateView,
    CommittedStore,
)


@pytest.fixture()
def store():
    committed = CommittedStore()
    committed.put("Account", "a", {"account_id": "a", "balance": 10})
    committed.put("Account", "b", {"account_id": "b", "balance": 20})
    return committed


class TestCommittedStore:
    def test_get_returns_copy(self, store):
        state = store.get("Account", "a")
        state["balance"] = 999
        assert store.get("Account", "a")["balance"] == 10

    def test_missing_is_none(self, store):
        assert store.get("Account", "ghost") is None

    def test_snapshot_restore_roundtrip(self, store):
        snapshot = store.snapshot()
        store.put("Account", "a", {"account_id": "a", "balance": 0})
        store.put("Account", "c", {"account_id": "c", "balance": 5})
        store.restore(snapshot)
        assert store.get("Account", "a")["balance"] == 10
        assert store.get("Account", "c") is None

    def test_snapshot_is_deep(self, store):
        store.put("Account", "n", {"nested": {"x": [1, 2]}})
        snapshot = store.snapshot()
        store.get("Account", "n")  # copies anyway
        snapshot[("Account", "n")]["nested"]["x"].append(3)
        assert store.get("Account", "n")["nested"]["x"] == [1, 2]

    def test_apply_writes(self, store):
        store.apply_writes({("Account", "a"): {"balance": 1},
                            ("Account", "z"): {"balance": 2}})
        assert store.get("Account", "a") == {"balance": 1}
        assert store.get("Account", "z") == {"balance": 2}

    def test_len_and_keys(self, store):
        assert len(store) == 2
        assert set(store.keys()) == {("Account", "a"), ("Account", "b")}


class TestAriaStateView:
    def test_reads_recorded(self, store):
        ctx = TxnContext(tid=0, batch_id=0)
        view = AriaStateView(store, ctx)
        view.get("Account", "a")
        assert ctx.read_set == {("Account", "a")}

    def test_writes_buffered_not_applied(self, store):
        ctx = TxnContext(tid=0, batch_id=0)
        view = AriaStateView(store, ctx)
        view.put("Account", "a", {"account_id": "a", "balance": 0})
        assert store.get("Account", "a")["balance"] == 10
        assert ctx.write_set[("Account", "a")]["balance"] == 0

    def test_read_your_own_writes(self, store):
        ctx = TxnContext(tid=0, batch_id=0)
        view = AriaStateView(store, ctx)
        view.put("Account", "a", {"account_id": "a", "balance": 77})
        assert view.get("Account", "a")["balance"] == 77

    def test_snapshot_isolation_between_txns(self, store):
        first = AriaStateView(store, TxnContext(tid=0, batch_id=0))
        second = AriaStateView(store, TxnContext(tid=1, batch_id=0))
        first.put("Account", "a", {"account_id": "a", "balance": 0})
        # The second transaction must not see the first's buffered write.
        assert second.get("Account", "a")["balance"] == 10

    def test_create_buffers_into_create_set(self, store):
        ctx = TxnContext(tid=0, batch_id=0)
        view = AriaStateView(store, ctx)
        view.create("Account", "new", {"account_id": "new", "balance": 1})
        assert ("Account", "new") in ctx.create_set
        assert ("Account", "new") in ctx.write_set
        assert store.get("Account", "new") is None

    def test_create_existing_rejected(self, store):
        view = AriaStateView(store, TxnContext(tid=0, batch_id=0))
        with pytest.raises(EntityNotFoundError):
            view.create("Account", "a", {})
