"""Local runtime: the paper's debug/unit-test execution mode."""

import pytest

from repro.core.errors import (
    EntityNotFoundError,
    InvocationError,
    RuntimeExecutionError,
    SerializationError,
)
from repro.core.refs import EntityRef
from repro.runtimes import LocalRuntime


class TestShopSemantics:
    def test_figure1_flow(self, shop_program):
        runtime = LocalRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        runtime.call(apple, "update_stock", 10)
        alice = runtime.create("User", "alice")
        assert runtime.call(alice, "buy_item", 2, apple) is True
        assert runtime.entity_state(alice)["balance"] == 94
        assert runtime.entity_state(apple)["stock"] == 8

    def test_insufficient_balance(self, shop_program):
        runtime = LocalRuntime(shop_program)
        apple = runtime.create("Item", "apple", 60)
        runtime.call(apple, "update_stock", 10)
        alice = runtime.create("User", "alice")
        assert runtime.call(alice, "buy_item", 2, apple) is False
        # No state was touched: balance check failed before any write.
        assert runtime.entity_state(alice)["balance"] == 100
        assert runtime.entity_state(apple)["stock"] == 10

    def test_compensation_on_stock_shortage(self, shop_program):
        runtime = LocalRuntime(shop_program)
        apple = runtime.create("Item", "apple", 1)
        runtime.call(apple, "update_stock", 3)
        alice = runtime.create("User", "alice")
        assert runtime.call(alice, "buy_item", 5, apple) is False
        assert runtime.entity_state(apple)["stock"] == 3  # compensated

    def test_create_returns_ref_with_key(self, shop_program):
        runtime = LocalRuntime(shop_program)
        ref = runtime.create("Item", "pear", 2)
        assert ref == EntityRef("Item", "pear")

    def test_invocation_result_latency_measured(self, shop_program):
        runtime = LocalRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        result = runtime.invoke(apple, "price")
        assert result.ok
        assert result.latency_ms >= 0


class TestErrors:
    def test_unknown_entity_invoke(self, shop_program):
        runtime = LocalRuntime(shop_program)
        result = runtime.invoke(EntityRef("Item", "ghost"), "price")
        assert not result.ok
        assert "ghost" in result.error
        with pytest.raises(InvocationError):
            result.unwrap()

    def test_unknown_method(self, shop_program):
        runtime = LocalRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        result = runtime.invoke(apple, "explode")
        assert not result.ok

    def test_unknown_operator(self, shop_program):
        runtime = LocalRuntime(shop_program)
        with pytest.raises(RuntimeExecutionError):
            runtime.invoke(EntityRef("Ghost", "g"), "go")

    def test_user_exception_becomes_error_reply(self, shop_program):
        runtime = LocalRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        result = runtime.invoke(apple, "update_stock", "not-an-int")
        assert not result.ok
        assert "update_stock" in result.error

    def test_wrong_arity(self, shop_program):
        runtime = LocalRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        result = runtime.invoke(apple, "update_stock")
        assert not result.ok
        assert "expects" in result.error

    def test_non_ref_receiver_rejected(self, shop_program):
        runtime = LocalRuntime(shop_program)
        alice = runtime.create("User", "alice")
        result = runtime.invoke(alice, "buy_item", 1, "not-a-ref")
        assert not result.ok
        assert "EntityRef" in result.error


class TestSerializabilityEnforcement:
    def test_unserializable_state_rejected_at_runtime(self, tmp_path):
        module = tmp_path / "badstate.py"
        module.write_text(
            "from repro import entity\n"
            "@entity\n"
            "class Holder:\n"
            "    def __init__(self, hid: str):\n"
            "        self.hid: str = hid\n"
            "        self.conn: object = None\n"
            "    def __key__(self):\n"
            "        return self.hid\n"
            "    def attach(self, x: int) -> bool:\n"
            "        self.conn = open('/dev/null')\n"
            "        return True\n")
        import sys

        from repro import compile_program

        sys.path.insert(0, str(tmp_path))
        try:
            import badstate

            runtime = LocalRuntime(compile_program([badstate.Holder]))
            ref = runtime.create("Holder", "h1")
            result = runtime.invoke(ref, "attach", 1)
            assert not result.ok
            assert "serializable" in result.error
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("badstate", None)

    def test_check_can_be_disabled(self, shop_program):
        runtime = LocalRuntime(shop_program, check_state_serializable=False)
        apple = runtime.create("Item", "apple", 3)
        assert runtime.call(apple, "price") == 3
