"""Property tests for the delta-chain algebra behind incremental
snapshots.

The laws the snapshot store's bounded-depth compaction and the
changelog repair path rely on:

- **capture/apply round trip** — replaying every captured delta over a
  captured base reproduces the live store, for any interleaving of
  writes, creates and deletes, on both backends;
- **compaction equivalence** — ``apply(base, d1..dn)`` equals
  ``apply(base, compact(d1..dn))``;
- **replay idempotence** — applying a delta (or a changelog record)
  twice equals applying it once: entries are absolute states, so
  duplicate delivery cannot diverge (the PR 2 incarnation fences make
  duplicates *rare*; the algebra makes them *harmless*).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtimes.state import (
    CowStateBackend,
    DictStateBackend,
    StateDelta,
    compact_deltas,
    make_state_backend,
    resolve_payload,
)
from repro.runtimes.stateflow.snapshots import ChangelogStore

KEYS = [f"k{i}" for i in range(8)]

#: One mutation: (op, key, value).  Deletes of absent keys are legal.
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["put", "create", "delete"]),
              st.sampled_from(KEYS),
              st.integers(min_value=0, max_value=99)),
    min_size=0, max_size=40)

#: Where to split the op sequence into capture segments.
cuts_strategy = st.lists(st.integers(min_value=0, max_value=40),
                         min_size=0, max_size=4)


def apply_ops(backend, ops):
    for op, key, value in ops:
        if op == "delete":
            backend.delete("E", key)
        else:
            backend.put("E", key, {"v": value})


def contents(backend):
    return {key: backend.get(*key) for key in sorted(backend.keys())}


def run_segments(backend_name, ops, cuts):
    """Drive a backend through *ops*, capturing a base up front and a
    delta at every cut point; returns (base, deltas, final_contents)."""
    backend = make_state_backend(backend_name)
    base = backend.capture_base()
    deltas = []
    boundaries = sorted(set(min(c, len(ops)) for c in cuts))
    start = 0
    for boundary in boundaries:
        apply_ops(backend, ops[start:boundary])
        deltas.append(backend.capture_delta())
        start = boundary
    apply_ops(backend, ops[start:])
    deltas.append(backend.capture_delta())
    assert all(delta is not None for delta in deltas)
    return base, deltas, contents(backend)


class TestCaptureApplyRoundTrip:
    @pytest.mark.parametrize("backend_name", ["dict", "cow"])
    @given(ops=ops_strategy, cuts=cuts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_deltas_reproduce_the_store(self, backend_name, ops, cuts):
        base, deltas, final = run_segments(backend_name, ops, cuts)
        replica = make_state_backend(backend_name)
        replica.restore(resolve_payload(base, deltas))
        assert contents(replica) == final

    @pytest.mark.parametrize("backend_name", ["dict", "cow"])
    @given(ops=ops_strategy, cuts=cuts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_apply_delta_on_live_backend(self, backend_name, ops, cuts):
        base, deltas, final = run_segments(backend_name, ops, cuts)
        replica = make_state_backend(backend_name)
        replica.restore(base)
        for delta in deltas:
            replica.apply_delta(delta)
        assert contents(replica) == final

    @given(ops=ops_strategy, cuts=cuts_strategy)
    @settings(max_examples=30, deadline=None)
    def test_backends_capture_equivalent_deltas(self, ops, cuts):
        """The same op sequence captured on dict and cow resolves to the
        same contents — deltas are backend-portable through resolution."""
        _, _, dict_final = run_segments("dict", ops, cuts)
        _, _, cow_final = run_segments("cow", ops, cuts)
        assert dict_final == cow_final


class TestCompactionEquivalence:
    @pytest.mark.parametrize("backend_name", ["dict", "cow"])
    @given(ops=ops_strategy, cuts=cuts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_compact_preserves_resolution(self, backend_name, ops, cuts):
        base, deltas, final = run_segments(backend_name, ops, cuts)
        compacted = compact_deltas(deltas)
        replica = make_state_backend(backend_name)
        replica.restore(resolve_payload(base, [compacted]))
        assert contents(replica) == final

    @given(ops=ops_strategy, cuts=cuts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_compact_bounds_layer_count(self, ops, cuts):
        _, deltas, _ = run_segments("cow", ops, cuts)
        compacted = compact_deltas(deltas)
        assert len(compacted.layers) <= 1


class TestReplayIdempotence:
    @pytest.mark.parametrize("backend_name", ["dict", "cow"])
    @given(ops=ops_strategy, cuts=cuts_strategy)
    @settings(max_examples=50, deadline=None)
    def test_duplicate_delivery_is_harmless(self, backend_name, ops, cuts):
        """Every delta delivered twice (the torn_snapshot "duplicate"
        variant) resolves to the same state as single delivery."""
        base, deltas, final = run_segments(backend_name, ops, cuts)
        doubled = [delta for delta in deltas for _ in range(2)]
        replica = make_state_backend(backend_name)
        replica.restore(resolve_payload(base, doubled))
        assert contents(replica) == final

    @given(ops=ops_strategy)
    @settings(max_examples=50, deadline=None)
    def test_changelog_replay_idempotence(self, ops):
        """Changelog records replay idempotently onto any payload, and
        duplicate appends of one batch are dropped (the append-side
        fence, mirroring the PR 2 worker incarnation fences)."""
        reference = DictStateBackend()
        changelog = ChangelogStore()
        writes = {}
        for op, key, value in ops:
            if op == "delete":
                continue  # commit records never carry deletes
            reference.put("E", key, {"v": value})
            writes[("E", key)] = {"v": value}
        if writes:
            first = changelog.append(batch_id=7, writes=writes)
            again = changelog.append(batch_id=7, writes=writes)
            assert first == again
            assert changelog.duplicate_appends == 1
            assert len(changelog) == 1
        records = changelog.records_between(-1, changelog.head_seq) or []
        once = {}
        for record in records:
            once.update(record.writes)
        twice = dict(once)
        for record in records:
            twice.update(record.writes)
        assert once == twice
        assert once == {key: reference.get(*key)
                        for key in reference.keys()}


class TestDeltaShapes:
    def test_cow_delta_layers_are_shared_not_copied(self):
        backend = CowStateBackend()
        backend.capture_base()
        backend.put("E", "a", {"v": 1})
        backend.pin_view(0)  # freezes the head into the tracked layers
        backend.put("E", "a", {"v": 2})
        delta = backend.capture_delta()
        assert len(delta.layers) == 2
        merged = delta.merged()
        assert merged[("E", "a")] == {"v": 2}

    def test_empty_segment_captures_empty_delta(self):
        for name in ("dict", "cow"):
            backend = make_state_backend(name)
            backend.capture_base()
            delta = backend.capture_delta()
            assert delta is not None and delta.is_empty

    def test_restore_invalidates_tracking(self):
        for name in ("dict", "cow"):
            backend = make_state_backend(name)
            payload = backend.capture_base()
            backend.put("E", "a", {"v": 1})
            backend.restore(payload)
            assert backend.capture_delta() is None, name
            # A fresh base re-arms tracking.
            backend.capture_base()
            backend.put("E", "b", {"v": 2})
            delta = backend.capture_delta()
            assert delta is not None and not delta.is_empty
