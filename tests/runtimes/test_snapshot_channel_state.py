"""Regression: snapshots must capture admitted-but-uncommitted requests.

A request consumed from the source sits in the coordinator's pending
queue until its batch runs.  A snapshot taken in that window records
source offsets *past* the request; restoring state + offsets alone would
silently drop it.  The fix snapshots the pending queue as channel state
(see snapshots.py) — these tests pin that behaviour down.
"""

from repro.runtimes.stateflow import StateflowRuntime, StateflowConfig
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.workloads import Account


def _runtime(account_program, **coord):
    config = StateflowConfig(coordinator=CoordinatorConfig(**coord))
    runtime = StateflowRuntime(account_program, config=config)
    runtime._ref = runtime.preload(Account, [("hot", 0)])[0]
    return runtime


def test_snapshot_records_pending_queue(account_program):
    runtime = _runtime(account_program, batch_interval_ms=50.0)
    runtime.start()
    ref = runtime._ref
    runtime.submit(ref, "add", (1,))
    # Let the request reach the coordinator but not a batch (interval is
    # long), then force a snapshot.
    runtime.sim.run_until(lambda: bool(runtime.coordinator.pending),
                          max_time=5_000)
    runtime.coordinator._take_snapshot()
    snapshot = runtime.coordinator.snapshots.latest()
    assert len(snapshot.pending) == 1
    assert snapshot.pending[0].method == "add"


def test_recovery_in_admission_window_loses_nothing(account_program):
    runtime = _runtime(account_program, batch_interval_ms=50.0,
                       snapshot_interval_ms=100.0)
    runtime.start()
    ref = runtime._ref
    runtime.submit(ref, "add", (1,))
    runtime.sim.run_until(lambda: bool(runtime.coordinator.pending),
                          max_time=5_000)
    # Snapshot with the request pending, then crash before its batch.
    runtime.coordinator._take_snapshot()
    runtime.coordinator.recover()
    runtime.sim.run(until=runtime.sim.now + 10_000)
    assert runtime.entity_state(ref)["balance"] == 1


def test_restored_pending_not_double_replayed(account_program):
    """The pending request's source record precedes the snapshot offsets,
    so seek must not redeliver it: exactly one application."""
    runtime = _runtime(account_program, batch_interval_ms=50.0)
    runtime.start()
    ref = runtime._ref
    for _ in range(3):
        runtime.submit(ref, "add", (1,))
    runtime.sim.run_until(
        lambda: len(runtime.coordinator.pending) == 3, max_time=5_000)
    runtime.coordinator._take_snapshot()
    runtime.coordinator.recover()
    runtime.sim.run(until=runtime.sim.now + 10_000)
    assert runtime.entity_state(ref)["balance"] == 3


def test_snapshot_records_buffered_epoch_replies(account_program):
    """Regression (found by the recovery-equivalence battery): a
    transactional reply committed but still buffered for the next epoch
    flush is channel state.  A snapshot cut in that window records
    source offsets *past* the request and ``admitted`` containing it, so
    a crash that loses the buffer loses the reply forever — replay drops
    the request at the ingress and the client never hears back."""
    runtime = _runtime(account_program, batch_interval_ms=5.0,
                       epoch_interval_ms=10_000.0)  # flush far away
    other = runtime.preload(Account, [("cold", 100)])[0]
    runtime.start()
    ref = runtime._ref
    replies = []
    runtime.submit(ref, "transfer", (5, other),
                   on_reply=lambda r: replies.append(r.request_id))
    # Let the transactional request commit; its reply now sits in the
    # epoch buffer awaiting the (deliberately distant) flush.
    runtime.sim.run_until(
        lambda: bool(runtime.coordinator._epoch_buffer), max_time=5_000)
    assert not replies, "the reply must still be buffered"
    runtime.coordinator._take_snapshot()
    snapshot = runtime.coordinator.snapshots.latest()
    assert len(snapshot.epoch_buffer) == 1
    # Crash + failover: the restored buffer must re-emit at the flush.
    runtime.fail_coordinator(failover_after_ms=20.0)
    runtime.sim.run(until=runtime.sim.now + 30_000)
    assert replies, "the buffered reply was lost across recovery"


def test_snapshot_pending_copies_are_isolated(account_program):
    runtime = _runtime(account_program, batch_interval_ms=50.0)
    runtime.start()
    runtime.submit(runtime._ref, "add", (1,))
    runtime.sim.run_until(lambda: bool(runtime.coordinator.pending),
                          max_time=5_000)
    runtime.coordinator._take_snapshot()
    snapshot = runtime.coordinator.snapshots.latest()
    live = runtime.coordinator.pending[0]
    live.attempt = 99
    assert snapshot.pending[0].attempt == 0
