"""Simulated StateFun deployment: semantics + architectural properties."""

import pytest

from repro.core.errors import UnsupportedFeatureError
from repro.core.refs import EntityRef
from repro.runtimes.statefun import (
    BatchingChannel,
    StatefunConfig,
    StatefunRuntime,
)
from repro.substrates.simulation import Simulation


class TestSemantics:
    def test_figure1_flow(self, shop_program):
        runtime = StatefunRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        runtime.call(apple, "update_stock", 10)
        alice = runtime.create("User", "alice")
        assert runtime.call(alice, "buy_item", 2, apple) is True
        assert runtime.entity_state(alice)["balance"] == 94
        assert runtime.entity_state(apple)["stock"] == 8

    def test_latency_positive_and_simulated(self, shop_program):
        runtime = StatefunRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        result = runtime.invoke(apple, "price")
        assert result.latency_ms > 1  # kafka + buffers, not wall-clock

    def test_error_propagates(self, shop_program):
        runtime = StatefunRuntime(shop_program)
        result = runtime.invoke(EntityRef("Item", "ghost"), "price")
        assert not result.ok

    def test_strict_transactions_rejected(self, shop_program):
        config = StatefunConfig(strict_transactions=True)
        runtime = StatefunRuntime(shop_program, config=config)
        alice = runtime.create("User", "alice")
        with pytest.raises(UnsupportedFeatureError):
            runtime.invoke(alice, "buy_item", 1, EntityRef("Item", "x"))

    def test_preload(self, account_program):
        from repro.workloads import Account

        runtime = StatefunRuntime(account_program)
        refs = runtime.preload(Account, [("a1", 10), ("a2", 20)])
        assert runtime.entity_state(refs[0])["balance"] == 10
        assert runtime.call(refs[1], "read") == 20


class TestArchitecture:
    def test_split_calls_loop_through_kafka(self, shop_program):
        """Every remote hop of buy_item must re-enter via the loopback
        topic (the paper: Kafka re-insertion avoids cyclic dataflows)."""
        runtime = StatefunRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        runtime.call(apple, "update_stock", 10)
        alice = runtime.create("User", "alice")
        loop_total_before = sum(
            runtime.broker.end_offset("statefun-loopback", p)
            for p in range(runtime.broker.partitions("statefun-loopback")))
        runtime.call(alice, "buy_item", 2, apple)
        loop_total_after = sum(
            runtime.broker.end_offset("statefun-loopback", p)
            for p in range(runtime.broker.partitions("statefun-loopback")))
        # price + update_stock + two resumes = at least 4 loopbacks.
        assert loop_total_after - loop_total_before >= 4

    def test_remote_function_pool_charged(self, shop_program):
        runtime = StatefunRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        runtime.call(apple, "price")
        assert runtime.function_cpu.completed_tasks >= 2  # init + price
        assert runtime.invocations >= 2

    def test_single_op_slower_than_stateflow_floor(self, shop_program):
        """Statefun pays buffer timeouts + kafka: single ops land well
        above the raw network floor."""
        runtime = StatefunRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        result = runtime.invoke(apple, "price")
        assert result.latency_ms > 2 * runtime.config.buffer_timeout_ms


class TestBatchingChannel:
    def test_flush_on_timeout(self):
        sim = Simulation()
        flushed = []
        channel = BatchingChannel(sim, timeout_ms=10, capacity=100,
                                  on_flush=flushed.append)
        channel.push("a")
        sim.run()
        assert flushed == [["a"]]
        assert sim.now == 10

    def test_flush_on_capacity(self):
        sim = Simulation()
        flushed = []
        channel = BatchingChannel(sim, timeout_ms=1000, capacity=3,
                                  on_flush=flushed.append)
        for item in "abc":
            channel.push(item)
        assert flushed == [["a", "b", "c"]]  # before any time passes

    def test_timeout_measured_from_first_item(self):
        sim = Simulation()
        flushed_at = []
        channel = BatchingChannel(sim, timeout_ms=10, capacity=100,
                                  on_flush=lambda items: flushed_at.append(sim.now))
        channel.push("a")
        sim.schedule(6, lambda: channel.push("b"))
        sim.run()
        assert flushed_at == [10]

    def test_manual_flush_cancels_timer(self):
        sim = Simulation()
        flushed = []
        channel = BatchingChannel(sim, timeout_ms=10, capacity=100,
                                  on_flush=flushed.append)
        channel.push("a")
        channel.flush()
        sim.run()
        assert flushed == [["a"]]
        assert len(channel) == 0
