"""Operator executor: event handling, suspension, instrumentation."""

import pytest

from repro.core.errors import EntityNotFoundError
from repro.core.refs import EntityRef
from repro.ir.events import Event, EventKind, ExecutionState
from repro.runtimes.executor import (
    Instrumentation,
    MapStateAccess,
    OperatorExecutor,
    run_constructor,
)


@pytest.fixture()
def executor(shop_program):
    return OperatorExecutor(shop_program.entities)


@pytest.fixture()
def state(shop_program):
    access = MapStateAccess()
    access.put("Item", "apple",
               {"item_id": "apple", "stock": 10, "price_per_unit": 3})
    access.put("User", "alice", {"username": "alice", "balance": 100})
    return access


def _invoke(entity, key, method, *args, request_id=1):
    return Event(kind=EventKind.INVOKE, target=EntityRef(entity, key),
                 method=method, args=args, request_id=request_id)


class TestSimpleInvocation:
    def test_reply_emitted(self, executor, state):
        outs = executor.handle(_invoke("Item", "apple", "price"), state)
        assert len(outs) == 1
        reply = outs[0]
        assert reply.kind is EventKind.REPLY
        assert reply.payload == 3
        assert reply.request_id == 1

    def test_state_flushed(self, executor, state):
        executor.handle(_invoke("Item", "apple", "update_stock", 5), state)
        assert state.get("Item", "apple")["stock"] == 15

    def test_missing_entity_error_reply(self, executor, state):
        outs = executor.handle(_invoke("Item", "nope", "price"), state)
        assert outs[0].error is not None

    def test_constructor_creates_and_replies_ref(self, executor, state):
        outs = executor.handle(
            _invoke("Item", None, "__init__", "pear", 7), state)
        assert outs[0].payload == EntityRef("Item", "pear")
        assert state.get("Item", "pear")["price_per_unit"] == 7


class TestSuspension:
    def test_remote_call_suspends_with_invoke(self, executor, state):
        outs = executor.handle(
            _invoke("User", "alice", "buy_item", 2,
                    EntityRef("Item", "apple")), state)
        assert len(outs) == 1
        invoke = outs[0]
        assert invoke.kind is EventKind.INVOKE
        assert invoke.target == EntityRef("Item", "apple")
        assert invoke.method == "price"
        # The caller frame is suspended underneath.
        assert invoke.execution.depth == 1
        frame = invoke.execution.top
        assert frame.method == "buy_item"
        assert frame.node == "buy_item_1"
        assert frame.result_var is not None

    def test_full_chain_by_hand(self, executor, state):
        """Drive the event ping-pong manually until the final REPLY."""
        pending = [_invoke("User", "alice", "buy_item", 2,
                           EntityRef("Item", "apple"))]
        replies = []
        hops = 0
        while pending:
            event = pending.pop(0)
            if event.kind is EventKind.REPLY:
                replies.append(event)
                continue
            pending.extend(executor.handle(event, state))
            hops += 1
            assert hops < 50
        assert len(replies) == 1
        assert replies[0].payload is True
        assert state.get("User", "alice")["balance"] == 94
        assert state.get("Item", "apple")["stock"] == 8

    def test_resume_binds_result_var(self, executor, state):
        outs = executor.handle(
            _invoke("User", "alice", "buy_item", 2,
                    EntityRef("Item", "apple")), state)
        execution = outs[0].execution
        resume = Event(kind=EventKind.RESUME,
                       target=EntityRef("User", "alice"),
                       payload=3, execution=execution, request_id=1)
        outs2 = executor.handle(resume, state)
        # price=3 -> total=6 <= 100 -> proceeds to update_stock(-2).
        assert outs2[0].kind is EventKind.INVOKE
        assert outs2[0].method == "update_stock"
        assert outs2[0].args == (-2,)


class TestInstrumentation:
    def test_components_recorded(self, shop_program, state):
        instr = Instrumentation()
        executor = OperatorExecutor(shop_program.entities,
                                    instrumentation=instr)
        executor.handle(_invoke("Item", "apple", "update_stock", 1), state)
        assert instr.components["object_construction"] > 0
        assert instr.components["function_execution"] > 0
        assert instr.components["state_storage"] >= 0
        assert instr.total() > 0
        # One invocation = one frame pop, flush, serde pass, and
        # instance build; counted operations are deterministic even
        # when the measured durations aren't.
        assert instr.counts["split_instrumentation"] == 1
        assert instr.counts["object_construction"] == 1
        assert instr.counts["state_serde"] == 1
        assert instr.counts["state_storage"] == 1
        share = instr.share("split_instrumentation")
        assert share is not None and 0 <= share <= 1

    def test_share_is_none_for_unmeasured_components(self):
        instr = Instrumentation()
        # Nothing measured yet: every share is unknown, not zero.
        assert instr.share("function_execution") is None
        instr.add("function_execution", 0.5)
        assert instr.share("function_execution") == 1.0
        assert instr.share("state_storage") is None

    def test_injected_clock_drives_measurements(self, shop_program, state):
        ticks = iter(range(1000))
        instr = Instrumentation(clock=lambda: float(next(ticks)))
        executor = OperatorExecutor(shop_program.entities,
                                    instrumentation=instr)
        executor.handle(_invoke("Item", "apple", "update_stock", 1), state)
        # Every region read the fake clock, so each measured duration is
        # a positive whole number of ticks — byte-identical on reruns.
        assert instr.total() > 0
        assert all(duration == int(duration) and duration >= 1
                   for duration in instr.components.values())


class TestRunConstructor:
    def test_returns_key_and_state(self, shop_program):
        compiled = shop_program.entities["Item"]
        key, state = run_constructor(compiled, ("apple", 3))
        assert key == "apple"
        assert state == {"item_id": "apple", "stock": 0,
                         "price_per_unit": 3}
