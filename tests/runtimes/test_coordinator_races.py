"""Recovery-race regressions: the coordinator guard paths that only
fire when recovery interleaves with in-flight work (previously untested
``# recovery raced us`` branches), plus coordinator fail-stop/fail-over
and ingress dedup."""

from repro.core.refs import EntityRef
from repro.ir.events import Event, EventKind, TxnContext
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.workloads import Account


def _runtime(account_program, **coordinator_overrides) -> StateflowRuntime:
    config = StateflowConfig(coordinator=CoordinatorConfig(
        snapshot_interval_ms=250.0, failure_detect_ms=200.0,
        **coordinator_overrides))
    return StateflowRuntime(account_program, config=config)


class TestRecoveryRaces:
    def test_recovery_races_dispatch(self, account_program):
        """recover() lands between batch formation and the (CPU-delayed)
        dispatch: the stale batch must never dispatch, and the replayed
        request must still commit exactly once."""
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        runtime.submit(ref, "add", (1,))
        coordinator = runtime.coordinator
        runtime.sim.run_until(lambda: coordinator.active is not None,
                              max_time=60_000)
        raced_batch_id = coordinator.active.batch_id
        dispatched: list[int] = []
        original_dispatch = coordinator.hooks.dispatch

        def spy(event):
            dispatched.append(event.txn.batch_id if event.txn else -1)
            original_dispatch(event)

        coordinator.hooks.dispatch = spy
        coordinator.recover()  # races the still-queued dispatch_all
        runtime.sim.run_until(
            lambda: (runtime.entity_state(ref) or {}).get("balance") == 1,
            max_time=60_000)
        assert raced_batch_id not in dispatched, (
            "a batch abandoned by recovery must not dispatch")
        assert runtime.entity_state(ref)["balance"] == 1

    def test_stale_report_after_recovery_is_ignored(self, account_program):
        """A worker's report for a pre-recovery batch must not touch the
        post-recovery batch (same-tid collision included)."""
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        coordinator = runtime.coordinator
        stale = Event(kind=EventKind.REPLY,
                      target=EntityRef("__client__", 777), payload=41,
                      request_id=777,
                      txn=TxnContext(tid=0, batch_id=0, attempt=0))
        # No active batch at all: the report must be dropped outright.
        coordinator.recover()
        before = (coordinator.duplicate_replies, len(coordinator.replied))
        coordinator.on_txn_report(stale)
        assert (coordinator.duplicate_replies,
                len(coordinator.replied)) == before
        # Now with a *different* active batch: still dropped.
        runtime.submit(ref, "add", (1,))
        runtime.sim.run_until(lambda: coordinator.active is not None,
                              max_time=60_000)
        active_batch = coordinator.active
        stale_for_old = Event(
            kind=EventKind.REPLY, target=EntityRef("__client__", 778),
            payload=13, request_id=778,
            txn=TxnContext(tid=0, batch_id=active_batch.batch_id + 500,
                           attempt=0))
        coordinator.on_txn_report(stale_for_old)
        assert coordinator.active is active_batch
        assert all(not txn.done for txn in active_batch.txns.values())
        runtime.sim.run_until(
            lambda: (runtime.entity_state(ref) or {}).get("balance") == 1,
            max_time=60_000)
        assert runtime.entity_state(ref)["balance"] == 1

    def test_double_watchdog_fire_recovers_once(self, account_program):
        """Two watchdog fires over the same stalled batch must trigger a
        single recovery (the second sees ``recovering`` and stands
        down)."""
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        coordinator = runtime.coordinator
        runtime.fail_worker(runtime.worker_of("Account", "hot"))
        runtime.submit(ref, "add", (1,))
        runtime.sim.run_until(lambda: coordinator.active is not None,
                              max_time=60_000)
        # Let the stall age past the detection threshold without letting
        # the scheduled watchdog tick run first.
        coordinator.active.last_progress = (
            runtime.sim.now - 2 * coordinator.config.failure_detect_ms)
        coordinator.active.started_at = coordinator.active.last_progress
        coordinator._tick_watchdog()
        assert coordinator.recovering
        coordinator._tick_watchdog()  # double fire
        assert coordinator.recoveries == 1
        runtime.sim.run_until(
            lambda: (runtime.entity_state(ref) or {}).get("balance") == 1,
            max_time=60_000)
        assert runtime.entity_state(ref)["balance"] == 1
        assert len(coordinator.recovery_log) == coordinator.recoveries


class TestCoordinatorFailover:
    def test_failover_preserves_exactly_once(self, account_program):
        """Kill the coordinator with requests in flight: after fail-over
        every request commits and replies exactly once."""
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        replies: list[int] = []
        for index in range(20):
            runtime.sim.schedule_at(
                index * 50.0,
                lambda: runtime.submit(
                    ref, "add", (1,),
                    on_reply=lambda reply: replies.append(reply.request_id)))
        runtime.fail_coordinator(at_ms=430.0, failover_after_ms=80.0)
        runtime.sim.run(until=60_000)
        assert runtime.coordinator.failovers == 1
        assert runtime.entity_state(ref)["balance"] == 20
        assert len(replies) == 20
        assert len(set(replies)) == 20

    def test_crashed_coordinator_ignores_traffic(self, account_program):
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        coordinator = runtime.coordinator
        coordinator.crash()
        event = Event(kind=EventKind.INVOKE, target=ref, method="add",
                      args=(1,), request_id=4242, ingress_time=0.0)
        coordinator.on_request(event, is_transactional_method=False)
        assert coordinator.pending == []
        assert 4242 not in coordinator.admitted
        coordinator.failover()
        assert coordinator.failovers == 1
        # Idempotent: a second failover call is a no-op.
        coordinator.failover()
        assert coordinator.failovers == 1

    def test_failover_does_not_double_tick_chains(self, account_program):
        """Pre-crash tick closures that survive a short outage must not
        keep rescheduling next to the standby's fresh chains (that would
        double every tick rate after each fail-over)."""
        runtime = _runtime(account_program)
        runtime.preload(Account, [("idle", 0)])
        runtime.start()
        coordinator = runtime.coordinator
        interval = coordinator.config.snapshot_interval_ms

        def snapshots_in_window() -> int:
            before = coordinator.snapshots._next_id
            runtime.sim.run(until=runtime.sim.now + 8 * interval)
            return coordinator.snapshots._next_id - before

        baseline = snapshots_in_window()
        # Outage shorter than the snapshot interval: the old tick chain
        # outlives the crash and must be fenced at failover.
        runtime.fail_coordinator(failover_after_ms=interval / 4)
        runtime.sim.run(until=runtime.sim.now + 2 * interval)
        assert coordinator.failovers == 1
        assert snapshots_in_window() <= baseline + 1

    def test_failover_while_idle_resumes_cleanly(self, account_program):
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("idle", 5)])
        runtime.start()
        runtime.call(ref, "add", 1)
        runtime.fail_coordinator(failover_after_ms=40.0)
        runtime.sim.run(until=runtime.sim.now + 1_000)
        # The system keeps working after the standby took over.
        assert runtime.call(ref, "add", 1) == 7
        assert runtime.entity_state(ref)["balance"] == 7


class TestIngressDedup:
    def test_duplicate_admission_suppressed(self, account_program):
        """The same request id arriving twice from the log (at-least-once
        producer) must be admitted once."""
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        coordinator = runtime.coordinator
        event = Event(kind=EventKind.INVOKE, target=ref, method="add",
                      args=(1,), request_id=900, ingress_time=0.0)
        coordinator.on_request(event, is_transactional_method=False)
        coordinator.on_request(event, is_transactional_method=False)
        assert coordinator.duplicate_requests == 1
        runtime.sim.run(until=runtime.sim.now + 5_000)
        assert runtime.entity_state(ref)["balance"] == 1

    def test_admitted_set_survives_recovery_consistently(self,
                                                         account_program):
        """After recovery the admitted set rewinds with the offsets:
        replayed requests re-admit (their effects were rolled back), yet
        log duplicates beyond the snapshot stay suppressed."""
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        coordinator = runtime.coordinator
        runtime.call(ref, "add", 1)
        runtime.sim.run(until=runtime.sim.now + 500)  # snapshot covers it
        admitted_before = set(coordinator.admitted)
        coordinator.recover()
        runtime.sim.run(until=runtime.sim.now + 500)
        assert admitted_before <= coordinator.admitted
        assert runtime.entity_state(ref)["balance"] == 1


class TestWorkerIncarnationFence:
    """A store-mutating message delayed past a recovery must not land on
    the restored store: replay re-executes its batch, so a late
    ``apply_writes``/``execute_single_key`` would double-apply."""

    def test_delayed_apply_writes_cannot_touch_restored_state(
            self, account_program):
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 100)])
        runtime.start()
        worker = runtime.workers[runtime.worker_of("Account", "hot")]
        stale = worker.incarnation
        runtime.coordinator.recover()  # restore_workers() bumps incarnations
        acked = []
        worker.apply_writes({("Account", "hot"): {"balance": 999}},
                            acked.append, incarnation=stale)
        runtime.sim.run(until=runtime.sim.now + 5_000)
        assert runtime.entity_state(ref)["balance"] == 100
        assert not acked

    def test_queued_apply_writes_fenced_by_mid_flight_recovery(
            self, account_program):
        """The CPU-queue variant: the install closure was submitted
        before recover() and fires after the restore."""
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 100)])
        runtime.start()
        worker = runtime.workers[runtime.worker_of("Account", "hot")]
        worker.apply_writes({("Account", "hot"): {"balance": 999}},
                            lambda: None, incarnation=worker.incarnation)
        runtime.coordinator.recover()  # before the closure's service time
        runtime.sim.run(until=runtime.sim.now + 5_000)
        assert runtime.entity_state(ref)["balance"] == 100

    def test_delayed_single_key_execution_is_fenced(self, account_program):
        runtime = _runtime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 100)])
        runtime.start()
        worker = runtime.workers[runtime.worker_of("Account", "hot")]
        stale = worker.incarnation
        runtime.coordinator.recover()
        event = Event(kind=EventKind.INVOKE, target=ref, method="add",
                      args=(7,), request_id=901, ingress_time=0.0,
                      txn=TxnContext(tid=1, batch_id=1, attempt=0))
        replies = []
        worker.execute_single_key([event], replies.append, incarnation=stale)
        runtime.sim.run(until=runtime.sim.now + 5_000)
        assert runtime.entity_state(ref)["balance"] == 100
        assert not replies
