"""Failure injection + snapshot recovery: the exactly-once guarantees.

"Leveraging dataflow systems' exactly-once guarantees can essentially
hide all Cloud failures from programmers" — these tests kill workers
mid-run and check that state effects apply exactly once and clients see
exactly one reply per request."""

import pytest

from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload


def _fast_recovery_config(**overrides) -> StateflowConfig:
    coordinator = CoordinatorConfig(
        snapshot_interval_ms=300.0,
        failure_detect_ms=250.0,
        **overrides)
    return StateflowConfig(coordinator=coordinator)


class TestSnapshotRecovery:
    def test_recovery_restores_and_replays(self, account_program):
        runtime = StateflowRuntime(account_program,
                                   config=_fast_recovery_config())
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        # 30 increments arriving over 3 seconds; worker dies at 1.2s.
        for index in range(30):
            runtime.sim.schedule_at(
                index * 100.0,
                lambda: runtime.submit(ref, "add", (1,)))
        victim = runtime.worker_of("Account", "hot")
        runtime.fail_worker(victim, at_ms=1_200.0)
        runtime.sim.run(until=20_000)
        assert runtime.coordinator.recoveries >= 1
        assert runtime.entity_state(ref)["balance"] == 30, (
            "each increment must apply exactly once across the replay")

    def test_exactly_one_reply_per_request(self, account_program):
        runtime = StateflowRuntime(account_program,
                                   config=_fast_recovery_config())
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        replies = []
        for index in range(20):
            runtime.sim.schedule_at(
                index * 100.0,
                lambda i=index: runtime.submit(
                    ref, "add", (1,),
                    on_reply=lambda reply, i=i: replies.append(i)))
        runtime.fail_worker(runtime.worker_of("Account", "hot"),
                            at_ms=900.0)
        runtime.sim.run(until=20_000)
        assert sorted(replies) == sorted(set(replies)), (
            "client must never observe duplicate replies")
        assert len(replies) == 20

    def test_transfer_conservation_through_failure(self, account_program):
        runtime = StateflowRuntime(account_program,
                                   config=_fast_recovery_config())
        workload = YcsbWorkload("T", record_count=50,
                                distribution="uniform", seed=9,
                                initial_balance=1000)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        runtime.fail_worker(1, at_ms=1_500.0)
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=120, duration_ms=4_000, warmup_ms=0, drain_ms=10_000))
        result = driver.run()
        runtime.sim.run(until=runtime.sim.now + 10_000)
        total = sum(runtime.entity_state(workload.ref(i))["balance"]
                    for i in range(workload.record_count))
        assert total == workload.total_balance()
        assert runtime.coordinator.recoveries >= 1
        assert result.completed == result.sent

    def test_no_failure_no_recovery(self, account_program):
        runtime = StateflowRuntime(account_program,
                                   config=_fast_recovery_config())
        (ref,) = runtime.preload(Account, [("a", 0)])
        runtime.start()
        for _ in range(10):
            runtime.call(ref, "add", 1)
        assert runtime.coordinator.recoveries == 0
        assert runtime.entity_state(ref)["balance"] == 10

    def test_initial_snapshot_covers_preload(self, account_program):
        """Recovery immediately after start must not lose the dataset."""
        runtime = StateflowRuntime(account_program,
                                   config=_fast_recovery_config())
        (ref,) = runtime.preload(Account, [("seeded", 42)])
        runtime.start()
        runtime.coordinator.recover()
        runtime.sim.run(until=5_000)
        assert runtime.entity_state(ref)["balance"] == 42

    def test_dead_worker_restarts_on_recovery(self, account_program):
        runtime = StateflowRuntime(account_program,
                                   config=_fast_recovery_config())
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        victim = runtime.worker_of("Account", "hot")
        runtime.submit(ref, "add", (1,))
        runtime.fail_worker(victim, at_ms=runtime.sim.now + 1.0)
        runtime.sim.run(until=20_000)
        assert runtime.workers[victim].alive
        assert runtime.entity_state(ref)["balance"] == 1


class TestSnapshotStore:
    def test_rotation_keeps_latest(self):
        from repro.runtimes.stateflow.snapshots import SnapshotStore

        store = SnapshotStore(keep=2)
        for index in range(5):
            store.take(taken_at_ms=float(index), state={},
                       source_offsets={}, replied=set(),
                       batch_seq=index, arrival_seq=index)
        assert len(store) == 2
        assert store.latest().batch_seq == 4

    def test_snapshot_contents_isolated(self):
        from repro.runtimes.stateflow.snapshots import SnapshotStore

        store = SnapshotStore()
        replied = {1, 2}
        snapshot = store.take(taken_at_ms=0.0, state={}, source_offsets={},
                              replied=replied, batch_seq=0, arrival_seq=0)
        replied.add(3)
        assert snapshot.replied == {1, 2}
