"""StateFlow runtime: transactions, serializability, architecture."""

import pytest

from repro.core.refs import EntityRef
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.workloads import Account, DriverConfig, WorkloadDriver, YcsbWorkload


class TestSemantics:
    def test_figure1_flow(self, shop_program):
        runtime = StateflowRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        runtime.call(apple, "update_stock", 10)
        alice = runtime.create("User", "alice")
        assert runtime.call(alice, "buy_item", 2, apple) is True
        assert runtime.entity_state(alice)["balance"] == 94
        assert runtime.entity_state(apple)["stock"] == 8

    def test_error_propagates(self, shop_program):
        runtime = StateflowRuntime(shop_program)
        result = runtime.invoke(EntityRef("Item", "ghost"), "price")
        assert not result.ok

    def test_failed_txn_commits_nothing(self, shop_program):
        runtime = StateflowRuntime(shop_program)
        apple = runtime.create("Item", "apple", 3)
        result = runtime.invoke(apple, "update_stock", "boom")
        assert not result.ok
        assert runtime.entity_state(apple)["stock"] == 0

    def test_preload_before_start(self, account_program):
        runtime = StateflowRuntime(account_program)
        refs = runtime.preload(Account, [("a1", 5)])
        runtime.start()
        assert runtime.call(refs[0], "read") == 5

    def test_preload_after_start_rejected(self, account_program):
        runtime = StateflowRuntime(account_program)
        runtime.start()
        with pytest.raises(Exception):
            runtime.preload(Account, [("a1", 5)])

    def test_transfer_moves_money(self, account_program):
        runtime = StateflowRuntime(account_program)
        a, b = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        assert runtime.call(a, "transfer", 30, b) is True
        assert runtime.entity_state(a)["balance"] == 70
        assert runtime.entity_state(b)["balance"] == 130

    def test_insufficient_funds_transfer(self, account_program):
        runtime = StateflowRuntime(account_program)
        a, b = runtime.preload(Account, [("a", 10), ("b", 0)])
        runtime.start()
        assert runtime.call(a, "transfer", 30, b) is False
        assert runtime.entity_state(a)["balance"] == 10
        assert runtime.entity_state(b)["balance"] == 0


class TestSerializability:
    def _run_transfers(self, account_program, *, records=40, rps=400,
                       duration=3000, seed=5, **coord_overrides):
        config = StateflowConfig()
        for name, value in coord_overrides.items():
            setattr(config.coordinator, name, value)
        runtime = StateflowRuntime(account_program, config=config)
        workload = YcsbWorkload("T", record_count=records,
                                distribution="zipfian", seed=seed,
                                initial_balance=1000)
        runtime.preload(Account, workload.dataset_rows())
        runtime.start()
        driver = WorkloadDriver(runtime, workload, DriverConfig(
            rps=rps, duration_ms=duration, warmup_ms=0, drain_ms=4000,
            seed=seed))
        result = driver.run()
        total = sum(runtime.entity_state(workload.ref(i))["balance"]
                    for i in range(records))
        return runtime, result, total, workload

    def test_hot_keys_conserve_total_balance(self, account_program):
        runtime, result, total, workload = self._run_transfers(
            account_program)
        assert result.completed == result.sent
        assert total == workload.total_balance()
        stats = runtime.coordinator.stats
        assert stats.aborts_waw + stats.aborts_raw > 0, (
            "hot zipfian transfers should conflict")
        assert stats.fallback_runs > 0

    def test_retry_fallback_mode_also_conserves(self, account_program):
        runtime, result, total, workload = self._run_transfers(
            account_program, fallback="retry")
        assert total == workload.total_balance()
        assert runtime.coordinator.stats.retries > 0

    def test_no_reordering_also_conserves(self, account_program):
        runtime, result, total, workload = self._run_transfers(
            account_program, reordering=False)
        assert total == workload.total_balance()

    def test_increments_apply_exactly_once(self, account_program):
        """Commutative increments: final balance certifies that each
        request applied exactly once."""
        runtime = StateflowRuntime(account_program)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        for _ in range(25):
            runtime.submit(ref, "add", (1,))
        runtime.sim.run_until(
            lambda: runtime.entity_state(ref)["balance"] == 25,
            max_time=60_000)
        assert runtime.entity_state(ref)["balance"] == 25


class TestArchitecture:
    def test_single_key_ops_skip_reservations(self, account_program):
        runtime = StateflowRuntime(account_program)
        (ref,) = runtime.preload(Account, [("a", 0)])
        runtime.start()
        runtime.call(ref, "read")
        stats = runtime.coordinator.stats
        assert stats.single_key == 1
        assert stats.transactions == 0

    def test_transfer_takes_multi_key_path(self, account_program):
        runtime = StateflowRuntime(account_program)
        a, b = runtime.preload(Account, [("a", 10), ("b", 10)])
        runtime.start()
        runtime.call(a, "transfer", 1, b)
        assert runtime.coordinator.stats.transactions == 1

    def test_direct_channels_beat_kafka_loopback(self, shop_program):
        def one_buy(mode):
            runtime = StateflowRuntime(
                shop_program, config=StateflowConfig(channel_mode=mode))
            apple = runtime.create("Item", "apple", 3)
            runtime.call(apple, "update_stock", 10)
            alice = runtime.create("User", "alice")
            return runtime.invoke(alice, "buy_item", 2, apple).latency_ms

        assert one_buy("direct") < one_buy("kafka")

    def test_epoch_gating_delays_txn_outputs(self, account_program):
        gated = StateflowConfig()
        ungated = StateflowConfig(
            coordinator=CoordinatorConfig(
                release_txn_outputs_at_epoch=False))

        def transfer_latency(config):
            runtime = StateflowRuntime(account_program, config=config)
            a, b = runtime.preload(Account, [("a", 10), ("b", 10)])
            runtime.start()
            return runtime.invoke(a, "transfer", 1, b).latency_ms

        assert transfer_latency(ungated) < transfer_latency(gated)

    def test_worker_partitioning_stable(self, account_program):
        runtime = StateflowRuntime(account_program)
        first = runtime.worker_of("Account", "alice")
        assert first == runtime.worker_of("Account", "alice")
        assert 0 <= first < runtime.config.workers

    def test_snapshots_taken_periodically(self, account_program):
        runtime = StateflowRuntime(account_program)
        (ref,) = runtime.preload(Account, [("a", 0)])
        runtime.start()
        runtime.call(ref, "read")
        runtime.sim.run(until=runtime.sim.now + 2500)
        assert len(runtime.coordinator.snapshots) >= 2
