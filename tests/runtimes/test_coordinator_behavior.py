"""Coordinator behaviours: batching cadence, dedup, epoch gating,
watchdog discipline."""

import pytest

from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.runtimes.stateflow.coordinator import CoordinatorConfig
from repro.workloads import Account


@pytest.fixture()
def runtime(account_program):
    runtime = StateflowRuntime(account_program)
    runtime._refs = runtime.preload(
        Account, [(f"a{i}", 100) for i in range(4)])
    runtime.start()
    return runtime


class TestBatching:
    def test_requests_batch_together(self, runtime):
        a, b, c, d = runtime._refs
        for ref in (a, b, c, d):
            runtime.submit(ref, "add", (1,))
        runtime.sim.run_until(
            lambda: all(runtime.entity_state(r)["balance"] == 101
                        for r in runtime._refs),
            max_time=30_000)
        stats = runtime.coordinator.stats
        # Four near-simultaneous requests should need few batches.
        assert stats.batches <= 3
        assert stats.single_key == 4

    def test_batch_interval_bounds_wait(self, runtime):
        a = runtime._refs[0]
        result = runtime.invoke(a, "read")
        interval = runtime.config.coordinator.batch_interval_ms
        # Latency = kafka in + <= 2 batch intervals + execution + kafka out.
        assert result.latency_ms < 6 * interval + 40

    def test_empty_system_stays_quiet(self, runtime):
        before = runtime.coordinator.stats.batches
        runtime.sim.run(until=runtime.sim.now + 500)
        assert runtime.coordinator.stats.batches == before


class TestReplyDiscipline:
    def test_duplicate_emission_suppressed(self, runtime):
        coordinator = runtime.coordinator
        from repro.core.refs import EntityRef
        from repro.ir.events import Event, EventKind

        reply = Event(kind=EventKind.REPLY,
                      target=EntityRef("__client__", 4242),
                      request_id=4242)
        coordinator._emit(reply)
        coordinator._emit(reply)
        assert coordinator.duplicate_replies == 1

    def test_epoch_buffer_flushes(self, runtime):
        a, b = runtime._refs[:2]
        request_done = []
        runtime.submit(a, "transfer", (5, b),
                       on_reply=lambda r: request_done.append(r))
        runtime.sim.run_until(lambda: bool(request_done), max_time=30_000)
        assert request_done[0].payload is True
        # The reply waited for an epoch boundary.
        assert not runtime.coordinator._epoch_buffer


class TestWatchdog:
    def test_no_spurious_recovery_under_slow_load(self, account_program):
        config = StateflowConfig(coordinator=CoordinatorConfig(
            failure_detect_ms=150.0))
        runtime = StateflowRuntime(account_program, config=config)
        refs = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        for _ in range(50):
            runtime.call(refs[0], "transfer", 1, refs[1])
        assert runtime.coordinator.recoveries == 0

    def test_stalled_batch_triggers_recovery(self, account_program):
        config = StateflowConfig(coordinator=CoordinatorConfig(
            failure_detect_ms=150.0, snapshot_interval_ms=200.0))
        runtime = StateflowRuntime(account_program, config=config)
        a, b = runtime.preload(Account, [("a", 100), ("b", 100)])
        runtime.start()
        # Kill the worker owning `a` right away: the first transfer's
        # batch stalls until the watchdog recovers it.
        runtime.fail_worker(runtime.worker_of("Account", "a"))
        result = runtime.invoke(a, "transfer", 10, b)
        assert result.ok
        assert runtime.coordinator.recoveries >= 1
        assert runtime.entity_state(a)["balance"] == 90


class TestMaxBatchSize:
    def test_overflow_spills_to_next_batch(self, account_program):
        config = StateflowConfig(coordinator=CoordinatorConfig(
            max_batch_size=5))
        runtime = StateflowRuntime(account_program, config=config)
        (ref,) = runtime.preload(Account, [("hot", 0)])
        runtime.start()
        for _ in range(12):
            runtime.submit(ref, "add", (1,))
        runtime.sim.run_until(
            lambda: runtime.entity_state(ref)["balance"] == 12,
            max_time=30_000)
        assert runtime.entity_state(ref)["balance"] == 12
        assert runtime.coordinator.stats.batches >= 3
