"""Unit-level behaviour of the elastic rescale protocol: request
clamping, no-op elision, retired-worker lifecycle, snapshot/restore of
the routing table, the fault-plan integration, and coordinator crashes
mid-rescale."""

import pytest

from repro.bench import chaos_coordinator_config
from repro.faults import FaultEvent, FaultPlan, FaultPlanError, random_plan
from repro.rescale import RescalePlan, RescalePlanError, RescaleStep, staged_plan
from repro.runtimes.stateflow import StateflowConfig, StateflowRuntime
from repro.workloads import Account


def _runtime(account_program, **config):
    config.setdefault("workers", 2)
    config.setdefault("coordinator", chaos_coordinator_config())
    return StateflowRuntime(account_program,
                            config=StateflowConfig(**config))


def _drive(runtime, count=6, spacing=80.0):
    refs = runtime.preload(Account, [(f"a{i}", 100) for i in range(6)])
    runtime.start()
    done = []
    for index in range(count):
        runtime.sim.schedule_at(
            index * spacing,
            lambda s=index % 6: runtime.submit(
                refs[s], "add", (1,),
                on_reply=lambda reply: done.append(reply.request_id)))
    return refs, done


class TestRequestHandling:
    def test_noop_target_is_elided(self, account_program):
        runtime = _runtime(account_program)
        runtime.request_rescale(2)  # already 2 workers
        runtime.start()
        runtime.sim.run(until=2_000)
        assert runtime.coordinator.rescales == 0
        assert runtime.coordinator.rescale_log == []

    def test_targets_clamped_to_slot_count(self, account_program):
        runtime = _runtime(account_program, state_slots=8)
        runtime.request_rescale(10_000)
        runtime.request_rescale(0)
        runtime.start()
        runtime.sim.run(until=3_000)
        # 10_000 clamps to 8 slots; 0 clamps to 1.
        assert [r.to_workers for r in runtime.coordinator.rescale_log] \
            == [8, 1]
        assert runtime.worker_count == 1

    def test_crashed_coordinator_ignores_rescale_requests(self,
                                                          account_program):
        runtime = _runtime(account_program)
        runtime.start()
        runtime.sim.run(until=50)
        runtime.coordinator.crash()
        runtime.request_rescale(4)
        assert runtime.coordinator._rescale_requests == []

    def test_sequential_requests_apply_in_order(self, account_program):
        runtime = _runtime(account_program)
        runtime.request_rescale(5)
        runtime.request_rescale(3)
        runtime.start()
        runtime.sim.run(until=3_000)
        assert [r.to_workers for r in runtime.coordinator.rescale_log] \
            == [5, 3]
        assert runtime.worker_count == 3


class TestWorkerLifecycle:
    def test_shrink_retires_then_grow_revives(self, account_program):
        runtime = _runtime(account_program, workers=4)
        runtime.start()
        runtime.request_rescale(2)
        runtime.sim.run(until=1_000)
        assert [w.retired for w in runtime.workers] == [False, False,
                                                        True, True]
        assert [w.alive for w in runtime.workers] == [True, True,
                                                      False, False]
        incarnation_before = runtime.workers[3].incarnation
        runtime.request_rescale(4)
        runtime.sim.run(until=2_000)
        assert all(not w.retired and w.alive for w in runtime.workers)
        assert runtime.workers[3].incarnation > incarnation_before, (
            "a revived worker must fence deliveries addressed to its "
            "retired incarnation")

    def test_retired_workers_stay_dead_across_recovery(self,
                                                       account_program):
        runtime = _runtime(account_program, workers=4)
        runtime.start()
        runtime.request_rescale(2)
        runtime.sim.run(until=1_000)
        runtime.coordinator.recover()
        runtime.sim.run(until=2_000)
        assert [w.alive for w in runtime.workers] == [True, True,
                                                      False, False]

    def test_grow_creates_new_worker_objects(self, account_program):
        runtime = _runtime(account_program, workers=2)
        runtime.start()
        runtime.request_rescale(5)
        runtime.sim.run(until=1_000)
        assert len(runtime.workers) == 5
        assert all(w.index == i for i, w in enumerate(runtime.workers))
        # The fault injector's worker list reference follows along.
        assert runtime.worker_count == 5

    def test_migration_counters_tick(self, account_program):
        runtime = _runtime(account_program, workers=2)
        runtime.preload(Account, [(f"a{i}", 10) for i in range(12)])
        runtime.start()
        runtime.request_rescale(4)
        runtime.sim.run(until=1_000)
        captured = sum(w.slots_captured for w in runtime.workers)
        installed = sum(w.slots_installed for w in runtime.workers)
        assert captured == installed == \
            runtime.coordinator.slots_migrated > 0


class TestSnapshotAssignment:
    def test_snapshot_carries_routing_table(self, account_program):
        runtime = _runtime(account_program)
        runtime.start()
        runtime.request_rescale(4)
        runtime.sim.run(until=1_000)
        snapshot = runtime.coordinator.snapshots.latest()
        assert snapshot.assignment is not None
        workers, owners = snapshot.assignment
        assert workers == 4
        assert owners == tuple(runtime.committed.assignment.owners)

    def test_failover_restores_post_rescale_topology(self, account_program):
        """A coordinator crash after a rescale must not forget it: the
        standby recovers the post-rescale routing table from the
        snapshot taken at rescale commit."""
        runtime = _runtime(account_program)
        runtime.start()
        runtime.request_rescale(4)
        runtime.sim.run(until=1_000)
        assert runtime.worker_count == 4
        runtime.fail_coordinator()
        runtime.sim.run(until=3_000)
        assert runtime.coordinator.failovers == 1
        assert runtime.worker_count == 4
        assert runtime.committed.assignment.workers == 4

    def test_coordinator_crash_mid_rescale_drops_the_intent(
            self, account_program):
        """Rescale intents are volatile: a crash wipes the queue, and
        the fail-over comes back on the pre-rescale topology (the last
        durable snapshot)."""
        runtime = _runtime(account_program)
        runtime.start()
        runtime.sim.run(until=100)

        # Queue a rescale and crash before the next batch tick can run it.
        runtime.coordinator.request_rescale(4)
        runtime.coordinator.crash()
        runtime.sim.schedule(50.0, runtime.coordinator.failover)
        runtime.sim.run(until=3_000)
        assert runtime.coordinator.rescales == 0
        assert runtime.worker_count == 2


class TestFaultPlanIntegration:
    def test_rescale_event_drives_the_coordinator(self, account_program):
        plan = FaultPlan(seed=1, events=[
            FaultEvent(kind="rescale", at_ms=200.0, target_workers=4)])
        runtime = _runtime(account_program, fault_plan=plan)
        _refs, _done = _drive(runtime)
        runtime.sim.run(until=3_000)
        assert runtime.faults.stats.rescales_requested == 1
        assert runtime.coordinator.rescales == 1
        assert runtime.worker_count == 4

    def test_statefun_skips_rescale_events(self, account_program):
        from repro.runtimes.statefun import StatefunConfig, StatefunRuntime

        plan = FaultPlan(seed=1, events=[
            FaultEvent(kind="rescale", at_ms=100.0, target_workers=4)])
        runtime = StatefunRuntime(account_program,
                                  config=StatefunConfig(fault_plan=plan))
        runtime.create(Account, "a", 1)
        runtime.sim.run(until=1_000)
        assert runtime.faults.stats.skipped_events == 1
        assert runtime.faults.stats.rescales_requested == 0

    def test_rescale_event_validation(self):
        with pytest.raises(FaultPlanError, match="target_workers"):
            FaultEvent(kind="rescale", at_ms=0.0).validate()

    def test_random_plan_rescales_round_trip(self):
        plan = random_plan(9, workers=4, rescales=2)
        events = [e for e in plan.events if e.kind == "rescale"]
        assert len(events) == 2
        assert all(e.target_workers >= 1 for e in events)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_dict() == plan.to_dict()

    def test_random_plan_without_rescales_is_unchanged(self):
        """Adding the rescales knob must not perturb existing seeded
        schedules (the determinism regressions depend on them)."""
        assert random_plan(17).to_dict() == \
            random_plan(17, rescales=0).to_dict()


class TestRescalePlanSerde:
    def test_round_trip(self, tmp_path):
        plan = staged_plan((4, 3), start_ms=250.0, interval_ms=500.0)
        path = tmp_path / "plan.json"
        plan.to_json(path)
        clone = RescalePlan.from_json(path)
        assert clone.to_dict() == plan.to_dict()
        assert clone.targets == [4, 3]

    def test_from_json_text(self):
        clone = RescalePlan.from_json(
            '{"name": "x", "steps": [{"at_ms": 5, "workers": 2}]}')
        assert clone.steps == [RescaleStep(at_ms=5.0, workers=2)]

    def test_validation(self):
        with pytest.raises(RescalePlanError):
            RescalePlan(steps=[RescaleStep(at_ms=-1.0, workers=2)]).validate()
        with pytest.raises(RescalePlanError):
            RescalePlan(steps=[RescaleStep(at_ms=0.0, workers=0)]).validate()
