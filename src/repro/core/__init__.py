"""Programming model for stateful entities (paper Section 2.2).

Public surface:

- :func:`entity` / :func:`stateflow` — class decorator declaring an entity.
- :func:`transactional` — method decorator for ACID cross-entity methods.
- :class:`EntityRef` — partition-keyed handle to a remote entity.
- :class:`EntityRegistry` / ``REGISTRY`` — entity class registry.
- Descriptors (:class:`EntityDescriptor`, ...) produced by static analysis.
- The exception hierarchy (:class:`StatefulEntityError` and friends).
"""

from .descriptors import (
    EntityDescriptor,
    MethodDescriptor,
    ParamSpec,
    StateField,
)
from .entity import (
    REGISTRY,
    EntityRegistry,
    entity,
    entity_source,
    is_entity_class,
    is_transactional,
    scoped_registry,
    stateflow,
    stateful_entity,
    transactional,
    transactional_methods,
)
from .errors import (
    CompilationError,
    EntityAlreadyExistsError,
    EntityNotFoundError,
    InvocationError,
    KeyMutationError,
    MissingKeyError,
    MissingTypeHintError,
    RecursionNotSupportedError,
    RuntimeExecutionError,
    SerializationError,
    StatefulEntityError,
    TransactionAborted,
    UnknownEntityError,
    UnsupportedConstructError,
    UnsupportedFeatureError,
)
from .refs import EntityRef, is_entity_ref, ref_for
from .serialization import (
    check_serializable,
    decode,
    dumps,
    encode,
    loads,
    state_size_bytes,
)
from .types import BUILTIN_TYPE_NAMES, TypeEnvironment, annotation_name

__all__ = [
    "BUILTIN_TYPE_NAMES",
    "CompilationError",
    "EntityAlreadyExistsError",
    "EntityDescriptor",
    "EntityNotFoundError",
    "EntityRef",
    "EntityRegistry",
    "InvocationError",
    "KeyMutationError",
    "MethodDescriptor",
    "MissingKeyError",
    "MissingTypeHintError",
    "ParamSpec",
    "REGISTRY",
    "RecursionNotSupportedError",
    "RuntimeExecutionError",
    "SerializationError",
    "StateField",
    "StatefulEntityError",
    "TransactionAborted",
    "TypeEnvironment",
    "UnknownEntityError",
    "UnsupportedConstructError",
    "UnsupportedFeatureError",
    "annotation_name",
    "check_serializable",
    "decode",
    "dumps",
    "encode",
    "entity",
    "entity_source",
    "is_entity_class",
    "is_entity_ref",
    "is_transactional",
    "loads",
    "ref_for",
    "scoped_registry",
    "state_size_bytes",
    "stateflow",
    "stateful_entity",
    "transactional",
    "transactional_methods",
]
