"""Static descriptions of entities and their methods.

These are produced by the compiler's first analysis pass (Section 2.2/2.3):
the state schema (instance attributes assigned through ``self``), the method
signatures with their type hints, and the partition-key accessor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class ParamSpec:
    """One method parameter: its name and the *name* of its annotation."""

    name: str
    type_name: str

    def to_dict(self) -> dict[str, str]:
        return {"name": self.name, "type": self.type_name}

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "ParamSpec":
        return cls(name=data["name"], type_name=data["type"])


@dataclass(slots=True)
class MethodDescriptor:
    """Everything static analysis knows about one entity method."""

    name: str
    params: list[ParamSpec]
    return_type: str
    is_transactional: bool = False
    is_constructor: bool = False
    source_ast: ast.FunctionDef | None = None
    # Names of other entities this method calls (filled by the call-graph
    # pass); maps local variable name -> entity class name.
    entity_params: dict[str, str] = field(default_factory=dict)
    calls: list[tuple[str, str]] = field(default_factory=list)

    @property
    def param_names(self) -> list[str]:
        return [p.name for p in self.params]

    def has_remote_interaction(self) -> bool:
        """True if this method calls methods of other entities."""
        return bool(self.calls)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "params": [p.to_dict() for p in self.params],
            "return_type": self.return_type,
            "is_transactional": self.is_transactional,
            "is_constructor": self.is_constructor,
            "entity_params": dict(self.entity_params),
            "calls": [list(c) for c in self.calls],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MethodDescriptor":
        return cls(
            name=data["name"],
            params=[ParamSpec.from_dict(p) for p in data["params"]],
            return_type=data["return_type"],
            is_transactional=data["is_transactional"],
            is_constructor=data["is_constructor"],
            entity_params=dict(data.get("entity_params", {})),
            calls=[tuple(c) for c in data.get("calls", [])],
        )


@dataclass(slots=True)
class StateField:
    """One instance attribute of an entity: ``self.<name>: <type> = ...``."""

    name: str
    type_name: str

    def to_dict(self) -> dict[str, str]:
        return {"name": self.name, "type": self.type_name}

    @classmethod
    def from_dict(cls, data: dict[str, str]) -> "StateField":
        return cls(name=data["name"], type_name=data["type"])


@dataclass(slots=True)
class EntityDescriptor:
    """Everything static analysis knows about one stateful entity class."""

    name: str
    state: list[StateField]
    methods: dict[str, MethodDescriptor]
    key_attribute: str | None = None
    source: str | None = None

    @property
    def state_names(self) -> list[str]:
        return [f.name for f in self.state]

    def method(self, name: str) -> MethodDescriptor:
        return self.methods[name]

    def public_methods(self) -> list[MethodDescriptor]:
        """Methods invocable through the dataflow (no dunders but
        ``__init__``, which materialises new entities)."""
        result = []
        for descriptor in self.methods.values():
            if descriptor.name == "__init__" or not descriptor.name.startswith("__"):
                result.append(descriptor)
        return result

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "state": [f.to_dict() for f in self.state],
            "methods": {n: m.to_dict() for n, m in self.methods.items()},
            "key_attribute": self.key_attribute,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EntityDescriptor":
        return cls(
            name=data["name"],
            state=[StateField.from_dict(f) for f in data["state"]],
            methods={n: MethodDescriptor.from_dict(m)
                     for n, m in data["methods"].items()},
            key_attribute=data.get("key_attribute"),
            source=data.get("source"),
        )
