"""Partition-keyed handles to remote stateful entities.

An :class:`EntityRef` is what actually travels through the dataflow when
user code passes "an Item" to a method: the pair *(entity class name, key)*.
The runtime resolves the ref to the operator partition that owns the key and
reconstructs the object there (Section 2.3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class EntityRef:
    """A serializable reference to one stateful entity instance.

    Attributes:
        entity: the entity class name (operator name in the dataflow).
        key: the partition key, as returned by the entity's ``__key__``.
    """

    entity: str
    key: Any

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.entity}/{self.key}"

    def to_dict(self) -> dict[str, Any]:
        return {"entity": self.entity, "key": self.key}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EntityRef":
        return cls(entity=data["entity"], key=data["key"])


def is_entity_ref(value: Any) -> bool:
    """True if *value* is a reference to a remote entity."""
    return isinstance(value, EntityRef)


def ref_for(entity_name: str, key: Any) -> EntityRef:
    """Build a reference to entity *entity_name* partitioned on *key*."""
    return EntityRef(entity=entity_name, key=key)
