"""Exception hierarchy for the stateful-entities compiler and runtimes.

Compile-time errors (subclasses of :class:`CompilationError`) enforce the
programming-model limitations from Section 2.2 of the paper: static type
hints, no recursion, stable keys, serializable state.  Runtime errors cover
routing, transactions, and fault-tolerance machinery.
"""

from __future__ import annotations


class StatefulEntityError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Compile-time errors
# ---------------------------------------------------------------------------

class CompilationError(StatefulEntityError):
    """Raised when static analysis or transformation of an entity fails."""

    def __init__(self, message: str, *, entity: str | None = None,
                 method: str | None = None, lineno: int | None = None):
        self.entity = entity
        self.method = method
        self.lineno = lineno
        location = ""
        if entity:
            location = f" [entity={entity}"
            if method:
                location += f", method={method}"
            if lineno is not None:
                location += f", line={lineno}"
            location += "]"
        super().__init__(message + location)


class MissingTypeHintError(CompilationError):
    """A stateful entity function parameter or return lacks a type hint."""


class MissingKeyError(CompilationError):
    """An entity class does not define the mandatory ``__key__`` method."""


class RecursionNotSupportedError(CompilationError):
    """The call graph contains (mutual) recursion, which the state machine
    cannot unroll into a finite automaton (Section 5, Program Analysis)."""


class UnsupportedConstructError(CompilationError):
    """The analyzed code uses a Python construct outside the supported
    subset (e.g. ``async``, generators, nested function definitions)."""


class KeyMutationError(CompilationError):
    """A method assigns to the attribute returned by ``__key__``; entity
    keys must be stable for the lifetime of the entity."""


# ---------------------------------------------------------------------------
# Runtime errors
# ---------------------------------------------------------------------------

class RuntimeExecutionError(StatefulEntityError):
    """Base class for errors raised while executing a dataflow."""


class UnknownEntityError(RuntimeExecutionError):
    """An event addressed an operator that is not part of the dataflow."""


class EntityNotFoundError(RuntimeExecutionError):
    """A method was invoked on a key with no materialised entity state."""


class EntityAlreadyExistsError(RuntimeExecutionError):
    """``__init__`` was routed to a key that already holds an entity."""


class SerializationError(RuntimeExecutionError):
    """Entity state contains values that cannot be serialized (the paper
    forbids sockets, DB connections, pipes, ... in entity state)."""


class TransactionAborted(RuntimeExecutionError):
    """A transactional invocation was aborted by the concurrency-control
    protocol and exhausted its retries."""

    def __init__(self, message: str, *, tid: int | None = None,
                 reason: str | None = None):
        self.tid = tid
        self.reason = reason
        super().__init__(message)


class UnsupportedFeatureError(RuntimeExecutionError):
    """The selected runtime cannot execute the requested feature (e.g.
    Statefun has no transaction support, mirroring the paper)."""


class InvocationError(RuntimeExecutionError):
    """A user method raised an exception; wraps the original error so the
    caller sees it once, exactly."""

    def __init__(self, message: str, *, cause: str | None = None):
        self.cause = cause
        super().__init__(message)
