"""The programmer-facing annotations: ``@entity`` and ``@transactional``.

Mirrors Figure 1 of the paper::

    @entity
    class Item:
        def __init__(self, item_id: str, price: int):
            self.item_id: str = item_id
            self.stock: int = 0
            self.price: int = price

        def __key__(self):
            return self.item_id

        def update_stock(self, amount: int) -> bool:
            self.stock += amount
            return self.stock >= 0

Decorating a class registers it (with its source code) so the compiler
pipeline can later analyse the AST.  ``@transactional`` marks a method whose
cross-entity state effects must commit atomically with ACID guarantees; the
StateFlow runtime executes such methods under its Aria-style deterministic
protocol (Section 3).
"""

from __future__ import annotations

import inspect
import textwrap
from typing import Any, Callable, Iterable, TypeVar

from .errors import CompilationError

_TRANSACTIONAL_ATTR = "__stateful_entity_transactional__"
_ENTITY_ATTR = "__stateful_entity__"
_SOURCE_ATTR = "__stateful_entity_source__"

T = TypeVar("T")


class EntityRegistry:
    """Holds every ``@entity``-decorated class known to this process.

    The compiler consumes the registry (or an explicit list of classes); the
    registry also lets tests build isolated universes of entities via
    :meth:`scoped`.
    """

    def __init__(self) -> None:
        self._classes: dict[str, type] = {}

    def register(self, cls: type, source: str | None = None) -> type:
        name = cls.__name__
        if source is None:
            source = _source_of(cls)
        setattr(cls, _ENTITY_ATTR, True)
        setattr(cls, _SOURCE_ATTR, source)
        self._classes[name] = cls
        return cls

    def unregister(self, name: str) -> None:
        self._classes.pop(name, None)

    def get(self, name: str) -> type:
        return self._classes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def names(self) -> frozenset[str]:
        return frozenset(self._classes)

    def classes(self) -> list[type]:
        return list(self._classes.values())

    def clear(self) -> None:
        self._classes.clear()


#: Process-global registry used by the bare ``@entity`` decorator.
REGISTRY = EntityRegistry()


def _source_of(cls: type) -> str:
    """Dedented source code of *cls* (the compiler parses this)."""
    try:
        return textwrap.dedent(inspect.getsource(cls))
    except (OSError, TypeError) as exc:  # e.g. classes built in exec()
        raise CompilationError(
            f"cannot obtain source code for entity {cls.__name__!r}; "
            f"pass `source=` to @entity or define the class in a file"
        ) from exc


def entity(cls: type | None = None, *, source: str | None = None,
           registry: EntityRegistry | None = None) -> Any:
    """Class decorator turning a plain Python class into a stateful entity.

    Usage::

        @entity
        class User: ...

        @entity(source=source_text)      # classes created dynamically
        class Generated: ...
    """
    target_registry = registry if registry is not None else REGISTRY

    def wrap(klass: type) -> type:
        return target_registry.register(klass, source=source)

    if cls is None:
        return wrap
    return wrap(cls)


#: Paper Figure 1 uses ``@entity``; Section 2.1 mentions ``@stateflow``.
#: Both names are accepted.
stateflow = entity
stateful_entity = entity


def transactional(func: Callable[..., T]) -> Callable[..., T]:
    """Mark a method as a multi-entity ACID transaction (Figure 1's
    ``User.buy_item``).  The method body is unchanged; the marker travels
    into the IR so transactional runtimes wrap its execution."""
    setattr(func, _TRANSACTIONAL_ATTR, True)
    return func


def is_entity_class(cls: type) -> bool:
    """True if *cls* was decorated with ``@entity``."""
    return bool(getattr(cls, _ENTITY_ATTR, False))


def is_transactional(func: Any) -> bool:
    """True if *func* was decorated with ``@transactional``."""
    return bool(getattr(func, _TRANSACTIONAL_ATTR, False))


def entity_source(cls: type) -> str:
    """The registered source code of an entity class."""
    source = getattr(cls, _SOURCE_ATTR, None)
    if source is None:
        return _source_of(cls)
    return source


def transactional_methods(cls: type) -> frozenset[str]:
    """Names of the ``@transactional`` methods of *cls*."""
    names = set()
    for name, member in inspect.getmembers(cls, inspect.isfunction):
        if is_transactional(member):
            names.add(name)
    return frozenset(names)


def scoped_registry(classes: Iterable[type]) -> EntityRegistry:
    """Build an isolated registry containing exactly *classes* (tests)."""
    registry = EntityRegistry()
    for cls in classes:
        registry.register(cls)
    return registry
