"""Type-hint resolution used by the static analysis passes.

The paper requires static type hints on the input/output of stateful entity
functions (Section 2.2).  The compiler only needs *names*: it must tell
entity types apart from plain Python types to find remote calls, so we map
annotation AST nodes to dotted-name strings and keep a per-method type
environment of which local names are entity-typed.
"""

from __future__ import annotations

import ast

# Python scalar/container types the programming model supports for entity
# state and method arguments.  Anything else must either be an entity type
# or explicitly registered by the user.
BUILTIN_TYPE_NAMES = frozenset({
    "int", "float", "str", "bool", "bytes", "None", "NoneType",
    "list", "dict", "set", "tuple", "Any",
    "List", "Dict", "Set", "Tuple", "Optional",
})


def annotation_name(node: ast.expr | None) -> str | None:
    """Resolve an annotation AST node to a readable type name.

    Handles plain names (``int``), dotted names (``typing.Optional``),
    strings (``"Item"`` forward references), subscripted generics
    (``list[int]`` -> ``list``), and constants (``None``).  Returns ``None``
    when there is no annotation.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant):
        if node.value is None:
            return "None"
        if isinstance(node.value, str):
            # Forward reference: the string *is* the type name.
            return node.value
        return type(node.value).__name__
    if isinstance(node, ast.Attribute):
        base = annotation_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Subscript):
        # list[int] / Optional[Item] -> keep the container name; for
        # Optional[X] keep the inner name, since Optional[Item] still means
        # the variable may hold an Item ref.
        container = annotation_name(node.value)
        if container in {"Optional", "typing.Optional"}:
            return annotation_name(node.slice)
        return container
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 unions: ``Item | None`` -> prefer the non-None side.
        left = annotation_name(node.left)
        right = annotation_name(node.right)
        if left in {"None", "NoneType"}:
            return right
        return left
    return ast.unparse(node)


class TypeEnvironment:
    """Tracks which local names refer to stateful entities inside a method.

    Seeded with entity-typed parameters and entity-typed state attributes;
    extended when the analysis sees ``x: Item = ...`` annotations or
    ``x = Item(...)`` constructor calls.
    """

    def __init__(self, entity_names: frozenset[str]):
        self._entity_names = entity_names
        self._bindings: dict[str, str] = {}

    @property
    def entity_names(self) -> frozenset[str]:
        return self._entity_names

    def is_entity_type(self, type_name: str | None) -> bool:
        return type_name is not None and type_name in self._entity_names

    def bind(self, name: str, type_name: str | None) -> None:
        """Record that *name* holds a value of *type_name* (if an entity)."""
        if self.is_entity_type(type_name):
            self._bindings[name] = type_name  # type: ignore[arg-type]
        elif name in self._bindings:
            # Re-assignment to a non-entity value shadows the old binding.
            del self._bindings[name]

    def entity_type_of(self, name: str) -> str | None:
        """The entity class name bound to local *name*, or ``None``."""
        return self._bindings.get(name)

    def bound_entities(self) -> dict[str, str]:
        return dict(self._bindings)

    def copy(self) -> "TypeEnvironment":
        clone = TypeEnvironment(self._entity_names)
        clone._bindings = dict(self._bindings)
        return clone
