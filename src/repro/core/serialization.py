"""State serialization and the paper's serializability restriction.

Entity state "needs to be serializable, i.e., connections to databases,
local pipes, and other non-serializable constructs are not allowed and will
eventually generate a runtime error" (Section 2.2).  We enforce this with an
explicit whitelist codec instead of pickling arbitrary objects: the codec
doubles as the wire format for events and as the snapshot format, and it
raises :class:`SerializationError` eagerly on forbidden values.
"""

from __future__ import annotations

import json
from typing import Any

from .errors import SerializationError
from .refs import EntityRef

_SCALARS = (str, int, float, bool, type(None))


def check_serializable(value: Any, *, path: str = "state") -> None:
    """Raise :class:`SerializationError` if *value* cannot be serialized.

    Accepts JSON-style scalars, lists, tuples, sets, string-or-scalar-keyed
    dicts, bytes, and :class:`EntityRef`.  Everything else — open files,
    sockets, lambdas, arbitrary objects — is rejected.
    """
    if isinstance(value, _SCALARS) or isinstance(value, (bytes, EntityRef)):
        return
    if isinstance(value, (list, tuple, set, frozenset)):
        for index, item in enumerate(value):
            check_serializable(item, path=f"{path}[{index}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, _SCALARS):
                raise SerializationError(
                    f"unserializable dict key {key!r} at {path}")
            check_serializable(item, path=f"{path}[{key!r}]")
        return
    raise SerializationError(
        f"value of type {type(value).__name__!r} at {path} is not "
        f"serializable entity state (the programming model forbids "
        f"connections, pipes, and other live resources)")


def encode(value: Any) -> Any:
    """Convert *value* into a JSON-compatible tree (checking legality)."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, EntityRef):
        return {"__ref__": value.to_dict()}
    if isinstance(value, (list, tuple)):
        tag = "__tuple__" if isinstance(value, tuple) else None
        items = [encode(item) for item in value]
        return {"__tuple__": items} if tag else items
    if isinstance(value, (set, frozenset)):
        return {"__set__": [encode(item) for item in sorted(value, key=repr)]}
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                return {"__kdict__": [[encode(key), encode(item)]
                                      for key, item in value.items()]}
            encoded[key] = encode(item)
        return encoded
    raise SerializationError(
        f"cannot encode value of type {type(value).__name__!r}")


def decode(value: Any) -> Any:
    """Inverse of :func:`encode`."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, list):
        return [decode(item) for item in value]
    if isinstance(value, dict):
        if "__bytes__" in value and len(value) == 1:
            return bytes.fromhex(value["__bytes__"])
        if "__ref__" in value and len(value) == 1:
            return EntityRef.from_dict(value["__ref__"])
        if "__tuple__" in value and len(value) == 1:
            return tuple(decode(item) for item in value["__tuple__"])
        if "__set__" in value and len(value) == 1:
            return set(decode(item) for item in value["__set__"])
        if "__kdict__" in value and len(value) == 1:
            return {decode(k): decode(v) for k, v in value["__kdict__"]}
        return {key: decode(item) for key, item in value.items()}
    raise SerializationError(
        f"cannot decode value of type {type(value).__name__!r}")


def dumps(value: Any) -> bytes:
    """Serialize *value* to bytes (the simulated wire/snapshot format)."""
    return json.dumps(encode(value), separators=(",", ":")).encode()


def loads(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`dumps`."""
    return decode(json.loads(data.decode()))


def state_size_bytes(state: dict[str, Any]) -> int:
    """Size of an entity's serialized state, used by the overhead bench."""
    return len(dumps(state))
