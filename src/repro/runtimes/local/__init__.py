"""Local (in-process, HashMap-state) runtime."""

from .runtime import LocalRuntime

__all__ = ["LocalRuntime"]
