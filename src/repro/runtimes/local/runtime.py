"""The Local runtime (paper Section 3, "Local").

"A StateFlow dataflow graph can execute all its components in a local
environment.  The only difference is that the state is kept in a local
HashMap data structure instead of a state management backend.  Local
execution allows developers to debug, unit test, and validate a StateFlow
program as they would do for an arbitrary application."

Events are processed synchronously from a FIFO queue in one process; the
state backend defaults to a plain dict but any registered
:class:`~repro.runtimes.state.StateBackend` ("dict", "cow") can be
selected — the same contract the distributed runtimes use.  Latencies
reported are wall-clock.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Any

from ...compiler.pipeline import CompiledProgram
from ...core.errors import RuntimeExecutionError
from ...core.refs import EntityRef
from ...faults import FaultPlan
from ...ir.events import Event, EventKind
from ..base import InvocationResult, Runtime
from ..executor import Instrumentation, OperatorExecutor
from ..state import make_state_backend


class LocalRuntime(Runtime):
    """Single-process, synchronous execution with HashMap state.

    ``fault_plan`` applies the message-level subset a clockless, queue-in
    -process runtime can host: delivery *reordering* — queued events are
    popped from a seeded-random position instead of FIFO, with the
    plan's first message profile's ``delay_p`` as the per-pop
    probability.  Drops, duplicates and delay spikes need a network or a
    durable log and are meaningless here; process faults are skipped.
    A correct program's results must be invariant under this reordering
    (every queued event carries its own continuation state) — that is
    exactly what the cross-runtime conformance matrix checks.
    """

    name = "local"

    def __init__(self, program: CompiledProgram,
                 *, check_state_serializable: bool = True,
                 instrumentation: Instrumentation | None = None,
                 state_backend: str = "dict",
                 fault_plan: FaultPlan | None = None):
        super().__init__(program)
        self.state = make_state_backend(state_backend)
        self.instrumentation = instrumentation
        self._executor = OperatorExecutor(
            program.entities,
            check_state_serializable=check_state_serializable,
            instrumentation=instrumentation)
        self._queue: deque[Event] = deque()
        self._replies: dict[int, Event] = {}
        self._request_ids = iter(range(1, 1 << 62))
        self._fault_rng: random.Random | None = None
        self._reorder_p = 0.0
        self.reordered_deliveries = 0
        #: Uniform runtime surface: Local hosts no injector (no clock,
        #: no substrates) — its fault support is the reorder shim above.
        self.faults = None
        if fault_plan is not None:
            fault_plan.validate()
            self._fault_rng = random.Random(fault_plan.seed)
            profiles = [event.profile for event in fault_plan.events
                        if event.kind == "messages"]
            if profiles:
                self._reorder_p = profiles[0].delay_p

    # ------------------------------------------------------------------
    def _pop_next(self) -> Event:
        if (self._fault_rng is not None and len(self._queue) > 1
                and self._fault_rng.random() < self._reorder_p):
            self.reordered_deliveries += 1
            index = self._fault_rng.randrange(len(self._queue))
            self._queue.rotate(-index)
            event = self._queue.popleft()
            self._queue.rotate(index)
            return event
        return self._queue.popleft()

    def _drive(self, request_id: int) -> Event:
        """Process events until *request_id*'s reply appears."""
        while request_id not in self._replies:
            if not self._queue:
                raise RuntimeExecutionError(
                    f"dataflow drained without a reply for request "
                    f"{request_id}")
            event = self._pop_next()
            if event.kind is EventKind.REPLY:
                if event.request_id is not None:
                    self._replies[event.request_id] = event
                continue
            if event.target.entity not in self.program.entities:
                raise RuntimeExecutionError(
                    f"event targets unknown operator {event.target.entity!r}")
            for outbound in self._executor.handle(event, self.state):
                self._queue.append(outbound)
        return self._replies.pop(request_id)

    def _submit(self, event: Event) -> InvocationResult:
        started = time.perf_counter()
        self._queue.append(event)
        reply = self._drive(event.request_id)
        latency_ms = (time.perf_counter() - started) * 1000.0
        return InvocationResult(value=reply.payload, error=reply.error,
                                latency_ms=latency_ms)

    # ------------------------------------------------------------------
    def create(self, entity: str | type, *args: Any) -> EntityRef:
        name = entity if isinstance(entity, str) else entity.__name__
        request_id = next(self._request_ids)
        event = Event(kind=EventKind.INVOKE,
                      target=EntityRef(name, None),
                      method="__init__", args=args,
                      request_id=request_id,
                      ingress_time=time.perf_counter())
        result = self._submit(event)
        ref = result.unwrap()
        if not isinstance(ref, EntityRef):  # pragma: no cover - defensive
            raise RuntimeExecutionError("constructor did not return a ref")
        return ref

    def invoke(self, ref: EntityRef, method: str, *args: Any,
               ) -> InvocationResult:
        request_id = next(self._request_ids)
        event = Event(kind=EventKind.INVOKE, target=ref, method=method,
                      args=args, request_id=request_id,
                      ingress_time=time.perf_counter())
        return self._submit(event)

    def entity_state(self, ref: EntityRef) -> dict[str, Any] | None:
        return self.state.get(ref.entity, ref.key)
