"""Runtime interface shared by the Local, StateFun-style, and StateFlow
backends.

"The choice of a runtime system is completely independent of the
application layer, which allows switching to different runtime systems
with no changes to the application code" (Section 1): every runtime
accepts a :class:`~repro.compiler.pipeline.CompiledProgram` and exposes
the same create/invoke surface.

The same independence holds one layer down: every runtime keeps its
committed operator state behind the shared
:class:`~repro.runtimes.state.StateBackend` contract (re-exported here),
so backends ("dict", "cow") plug into any runtime and the StateFlow
runtime can additionally shard them per worker with
:class:`~repro.runtimes.state.PartitionedStore`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from ..compiler.pipeline import CompiledProgram
from ..core.errors import InvocationError
from ..core.refs import EntityRef
from .state import StateBackend, make_state_backend

__all__ = ["InvocationResult", "Runtime", "StateBackend",
           "make_state_backend"]


@dataclass(slots=True)
class InvocationResult:
    """Outcome of one client request."""

    value: Any = None
    error: str | None = None
    #: End-to-end latency in *simulated* milliseconds (wall-clock for the
    #: Local runtime, virtual time for the simulated distributed ones).
    latency_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        """Return the value, raising if the invocation failed."""
        if self.error is not None:
            raise InvocationError(self.error, cause=self.error)
        return self.value


class Runtime(abc.ABC):
    """Common surface of every execution backend."""

    name: str = "abstract"

    def __init__(self, program: CompiledProgram):
        self.program = program
        self.dataflow = program.dataflow

    # -- client operations -------------------------------------------------
    @abc.abstractmethod
    def create(self, entity: str | type, *args: Any) -> EntityRef:
        """Instantiate an entity and return its partition-keyed ref."""

    @abc.abstractmethod
    def invoke(self, ref: EntityRef, method: str, *args: Any,
               ) -> InvocationResult:
        """Call ``ref.method(*args)`` through the dataflow and wait for
        the reply (drives the runtime until the reply arrives)."""

    def call(self, ref: EntityRef, method: str, *args: Any) -> Any:
        """Convenience: invoke and unwrap."""
        return self.invoke(ref, method, *args).unwrap()

    # -- introspection -------------------------------------------------------
    @abc.abstractmethod
    def entity_state(self, ref: EntityRef) -> dict[str, Any] | None:
        """Committed state of one entity (tests / debugging)."""

    def entity_names(self) -> list[str]:
        return list(self.program.entities)
