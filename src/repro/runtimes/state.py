"""Pluggable, partitionable operator-state backends.

Every runtime (Local, StateFun-style, StateFlow) stores committed
operator state behind the same :class:`StateBackend` contract:

- :class:`DictStateBackend` — a plain hash map whose snapshots are deep
  copies (the paper's "local HashMap data structure"; simple, but a
  snapshot costs O(total state));
- :class:`CowStateBackend` — copy-on-write version chaining: a snapshot
  freezes the mutable write head into an immutable layer and hands out a
  shared reference, so snapshot cost is O(1) regardless of how much
  state is committed.  Writes after a snapshot land in a fresh head,
  never touching frozen layers;
- :class:`PartitionedStore` — shards a backend per partition by
  ``stable_hash("entity|key") % partitions`` so each StateFlow worker
  truly owns its partitions: commit-phase writes touch only the owning
  partition and snapshots assemble from per-partition fragments.

``make_state_backend`` is the registry-backed factory used by runtime
configs, the CLI (``--state-backend``) and the benchmark harness.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol, runtime_checkable

from ..ir.dataflow import stable_hash

Key = tuple[str, Any]
State = dict[str, Any]


@runtime_checkable
class StateBackend(Protocol):
    """Contract for committed operator state.

    Extends the executor's read/write ``StateAccess`` surface with the
    bulk-commit and fault-tolerance operations the StateFlow coordinator
    drives: ``apply_writes`` installs a committed batch's write sets,
    ``snapshot``/``restore`` implement batch-boundary consistent
    snapshots, and ``keys`` enumerates resident entities.
    """

    def get(self, entity: str, key: Any) -> State | None: ...

    def put(self, entity: str, key: Any, state: State) -> None: ...

    def create(self, entity: str, key: Any, state: State) -> None: ...

    def exists(self, entity: str, key: Any) -> bool: ...

    def apply_writes(self, writes: dict[Key, State]) -> None: ...

    def snapshot(self) -> Any: ...

    def restore(self, snapshot: Any) -> None: ...

    def keys(self) -> list[Key]: ...

    def __len__(self) -> int: ...


class DictStateBackend:
    """Plain in-memory state: one dict, deep-copy snapshots.

    This is both the Local runtime's HashMap backend and StateFlow's
    baseline committed store.  Entries are deep-copied in and out —
    O(entry) on the hot path, same as the cow backend, so no caller can
    mutate committed state through an alias and backends stay
    semantically interchangeable.  Snapshot isolation still costs a full
    ``copy.deepcopy`` — O(total state) per snapshot, the cost
    :class:`CowStateBackend` removes.
    """

    def __init__(self, store: dict[Key, State] | None = None):
        self.store: dict[Key, State] = store if store is not None else {}

    # -- StateAccess protocol -------------------------------------------
    def get(self, entity: str, key: Any) -> State | None:
        state = self.store.get((entity, key))
        return copy.deepcopy(state) if state is not None else None

    def put(self, entity: str, key: Any, state: State) -> None:
        self.store[(entity, key)] = copy.deepcopy(state)

    def create(self, entity: str, key: Any, state: State) -> None:
        self.put(entity, key, state)

    def exists(self, entity: str, key: Any) -> bool:
        return (entity, key) in self.store

    # -- commit / snapshot support --------------------------------------
    def apply_writes(self, writes: dict[Key, State]) -> None:
        """Install a committed transaction's buffered writes."""
        for (entity, key), state in writes.items():
            self.put(entity, key, state)

    def snapshot(self) -> dict[Key, State]:
        """Deep copy of all state (the snapshot payload)."""
        return copy.deepcopy(self.store)

    def restore(self, snapshot: dict[Key, State]) -> None:
        self.store = copy.deepcopy(snapshot)

    def keys(self) -> list[Key]:
        return list(self.store)

    def __len__(self) -> int:
        return len(self.store)


def _merge_layers(layers: tuple[dict[Key, State], ...],
                  head: dict[Key, State] | None = None) -> dict[Key, State]:
    """The one encoding of the cow-chain read invariant: iterate layers
    oldest-first so newer entries shadow older ones, the mutable head
    last of all.  Entries are shared (aliased), never copied."""
    merged: dict[Key, State] = {}
    for layer in layers:
        merged.update(layer)
    if head:
        merged.update(head)
    return merged


@dataclass(slots=True, frozen=True)
class CowSnapshot:
    """A consistent cut of a :class:`CowStateBackend`: a chain of frozen
    layers, shared (not copied) with the live backend.  Newer layers
    shadow older ones."""

    layers: tuple[dict[Key, State], ...]

    def merged(self) -> dict[Key, State]:
        """Flatten the chain (newer layers win) WITHOUT copying states:
        the result aliases the frozen layers and must not be mutated or
        handed to consumers — use :meth:`materialize` for that."""
        return _merge_layers(self.layers)

    def materialize(self) -> dict[Key, State]:
        """Flatten the chain into one mapping (queries/inspection).

        States are deep-copied: the layers are shared with the live
        backend, so handing out aliases would let a consumer corrupt
        committed state and the recovery snapshot through them.
        """
        return {key: copy.deepcopy(state)
                for key, state in self.merged().items()}

    def __len__(self) -> int:
        return len(self.merged())


class CowStateBackend:
    """Copy-on-write committed state with version-chained snapshots.

    Layout: an ordered chain of immutable ``layers`` (oldest first) plus
    one mutable write ``head``.  Reads probe head-then-layers newest
    first; writes only ever touch the head.  ``snapshot`` freezes the
    head onto the chain and returns the chain itself — no per-entry
    copying, so snapshot cost is independent of total state size.

    Entry immutability is what makes layer sharing safe: ``put`` deep
    copies the incoming state and ``get`` deep copies the outgoing one,
    so no caller can mutate a frozen layer through an alias.  The chain
    is compacted (layers merged, entries still shared) once it grows
    past ``compact_after`` layers to bound read amplification.
    """

    def __init__(self, *, compact_after: int = 8):
        self._head: dict[Key, State] = {}
        self._layers: tuple[dict[Key, State], ...] = ()
        self._compact_after = compact_after
        self.snapshots_taken = 0
        self.layers_compacted = 0

    # -- StateAccess protocol -------------------------------------------
    def get(self, entity: str, key: Any) -> State | None:
        composite = (entity, key)
        state = self._head.get(composite)
        if state is None:
            for layer in reversed(self._layers):
                state = layer.get(composite)
                if state is not None:
                    break
        return copy.deepcopy(state) if state is not None else None

    def put(self, entity: str, key: Any, state: State) -> None:
        self._head[(entity, key)] = copy.deepcopy(state)

    def create(self, entity: str, key: Any, state: State) -> None:
        self.put(entity, key, state)

    def exists(self, entity: str, key: Any) -> bool:
        composite = (entity, key)
        return (composite in self._head
                or any(composite in layer for layer in self._layers))

    # -- commit / snapshot support --------------------------------------
    def apply_writes(self, writes: dict[Key, State]) -> None:
        for (entity, key), state in writes.items():
            self.put(entity, key, state)

    def snapshot(self) -> CowSnapshot:
        if self._head:
            self._layers = self._layers + (self._head,)
            self._head = {}
            self._maybe_compact()
        self.snapshots_taken += 1
        return CowSnapshot(layers=self._layers)

    def restore(self, snapshot: CowSnapshot) -> None:
        self._layers = tuple(snapshot.layers)
        self._head = {}

    def _maybe_compact(self) -> None:
        if len(self._layers) <= self._compact_after:
            return
        self._layers = (_merge_layers(self._layers),)
        self.layers_compacted += 1

    @property
    def layer_count(self) -> int:
        return len(self._layers)

    def keys(self) -> list[Key]:
        return list(_merge_layers(self._layers, self._head))

    def __len__(self) -> int:
        return len(_merge_layers(self._layers, self._head))


@dataclass(slots=True, frozen=True)
class PartitionedSnapshot:
    """Per-partition snapshot fragments, index-aligned with the
    :class:`PartitionedStore` that produced them."""

    parts: tuple[Any, ...]

    @property
    def partition_count(self) -> int:
        return len(self.parts)


class PartitionedStore:
    """Committed state sharded into per-worker partitions.

    Routing is ``stable_hash("entity|key") % partitions`` — the same
    function the StateFlow runtime uses to pick the worker executing a
    key, so worker *i* and partition *i* always agree: each worker holds
    (and is the only writer of) exactly its own partition backend.

    Snapshots are assembled from per-partition fragments (each backend
    snapshots independently) and ``restore`` fans the fragments back out
    to their partitions.
    """

    def __init__(self, partitions: int, backend: str | Callable[[], Any] = "dict"):
        if partitions < 1:
            raise ValueError("PartitionedStore needs at least one partition")
        factory = (backend if callable(backend)
                   else lambda: make_state_backend(backend))
        self._partitions: list[Any] = [factory() for _ in range(partitions)]

    # -- partition topology ---------------------------------------------
    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    def partition_of(self, entity: str, key: Any) -> int:
        return stable_hash(f"{entity}|{key}") % len(self._partitions)

    def partition(self, index: int) -> Any:
        """The backend owned by worker *index*."""
        return self._partitions[index]

    def partitions(self) -> Iterator[Any]:
        return iter(self._partitions)

    # -- StateAccess protocol (routes to the owning partition) ----------
    def _owner(self, entity: str, key: Any) -> Any:
        return self._partitions[self.partition_of(entity, key)]

    def get(self, entity: str, key: Any) -> State | None:
        return self._owner(entity, key).get(entity, key)

    def put(self, entity: str, key: Any, state: State) -> None:
        self._owner(entity, key).put(entity, key, state)

    def create(self, entity: str, key: Any, state: State) -> None:
        self._owner(entity, key).create(entity, key, state)

    def exists(self, entity: str, key: Any) -> bool:
        return self._owner(entity, key).exists(entity, key)

    def apply_writes(self, writes: dict[Key, State]) -> None:
        """Route a write set to its owning partitions (callers that
        already bucket per worker use ``partition(i).apply_writes``)."""
        buckets: dict[int, dict[Key, State]] = {}
        for (entity, key), state in writes.items():
            index = self.partition_of(entity, key)
            buckets.setdefault(index, {})[(entity, key)] = state
        for index, bucket in buckets.items():
            self._partitions[index].apply_writes(bucket)

    # -- snapshot assembly ----------------------------------------------
    def snapshot(self) -> PartitionedSnapshot:
        return PartitionedSnapshot(
            parts=tuple(backend.snapshot() for backend in self._partitions))

    def restore(self, snapshot: PartitionedSnapshot) -> None:
        if snapshot.partition_count != len(self._partitions):
            raise ValueError(
                f"snapshot has {snapshot.partition_count} partition "
                f"fragments, store has {len(self._partitions)} partitions")
        for backend, part in zip(self._partitions, snapshot.parts):
            backend.restore(part)

    def snapshot_partition(self, index: int) -> Any:
        return self._partitions[index].snapshot()

    def restore_partition(self, index: int, fragment: Any) -> None:
        self._partitions[index].restore(fragment)

    # -- aggregation -----------------------------------------------------
    def keys(self) -> list[Key]:
        """All resident keys, grouped by partition (not insertion
        order); order-sensitive consumers must sort."""
        return [key for backend in self._partitions for key in backend.keys()]

    def __len__(self) -> int:
        return sum(len(backend) for backend in self._partitions)


def materialize_snapshot(payload: Any,
                         entity: str | None = None) -> dict[Key, State]:
    """Flatten any backend-produced snapshot payload into one
    ``{(entity, key): state}`` mapping (query engine, inspection).

    Handles the dict backend's plain mapping, the cow backend's layer
    chain, and the partitioned store's per-partition fragments (which
    recurse into either of the former).  States are copies in every
    branch: consumers (e.g. query predicates) must not be able to
    corrupt the stored recovery snapshot through the result.  Pass
    *entity* to copy only that entity's rows instead of the whole store.
    """
    if isinstance(payload, PartitionedSnapshot):
        merged: dict[Key, State] = {}
        for part in payload.parts:
            merged.update(materialize_snapshot(part, entity))
        return merged
    if isinstance(payload, CowSnapshot):
        aliased = payload.merged()
    else:
        aliased = payload
    return {key: copy.deepcopy(state) for key, state in aliased.items()
            if entity is None or key[0] == entity}


#: Registry of selectable backends (CLI/config surface).
BACKENDS: dict[str, Callable[[], Any]] = {
    "dict": DictStateBackend,
    "cow": CowStateBackend,
}


def make_state_backend(name: str) -> Any:
    """Instantiate a registered backend by name."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown state backend {name!r}; "
            f"choose from {sorted(BACKENDS)}") from None
