"""Pluggable, partitionable operator-state backends.

Every runtime (Local, StateFun-style, StateFlow) stores committed
operator state behind the same :class:`StateBackend` contract:

- :class:`DictStateBackend` — a plain hash map whose snapshots are deep
  copies (the paper's "local HashMap data structure"; simple, but a
  snapshot costs O(total state));
- :class:`CowStateBackend` — copy-on-write version chaining: a snapshot
  freezes the mutable write head into an immutable layer and hands out a
  shared reference, so snapshot cost is O(1) regardless of how much
  state is committed.  Writes after a snapshot land in a fresh head,
  never touching frozen layers;
- :class:`PartitionedStore` — shards a backend per *slot* (a fixed
  number of hash ranges: ``stable_hash("entity|key") % slots``) and maps
  slots to workers through a :class:`SlotAssignment`, so each StateFlow
  worker truly owns a set of slots: commit-phase writes touch only the
  owning worker's slots and snapshots assemble from per-slot fragments.

Every backend additionally supports *incremental capture*
(``capture_base``/``capture_delta``): the backend tracks which keys were
written since the last capture and hands out a :class:`StateDelta` of
just those entries instead of a full payload.  Cuts therefore cost
O(writes since the previous cut), not O(total state): the cow backend
reuses its O(1) head-freeze (a delta is the tuple of layers frozen since
the last capture, shared not copied), the dict backend diffs its dirty
set, and the partitioned store assembles per-slot fragments
(``None`` for clean slots, a delta for dirtied ones, a
:class:`FullFragment` for slots whose tracking was invalidated by a
restore or migration).  ``resolve_payload`` replays a base payload plus
a delta chain back into a full payload; ``compact_deltas`` collapses a
chain into one equivalent delta (the algebra the snapshot store's
bounded-depth compaction relies on).  Deletes travel as
:data:`TOMBSTONE` entries inside delta layers.

Every backend additionally supports *version-pinned read views*
(``pin_view``/``view``/``release_view``): a read-only window onto the
store's contents exactly as they were at pin time, immune to later
writes.  The pipelined epoch coordinator pins one view per committed
batch boundary so a batch's execution phase can overlap the previous
batch's commit phase: workers read through the pinned view while the
older batch's writes land in the live store.  The cow backend pins in
O(1) (freeze the write head, share the layer chain); the dict backend
keeps a per-view undo overlay, capturing a key's pre-image on its first
overwrite after the pin — O(active views) per write, O(1) per read.

The slot indirection is what makes the cluster *elastic*: rescaling
n -> m workers rebalances whole slots (minimal movement — a key only
moves when its slot does) and migrating a slot is a snapshot/restore of
one slot backend, which the cow backend captures in O(1).

``make_state_backend`` is the registry-backed factory used by runtime
configs, the CLI (``--state-backend``) and the benchmark harness.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol, runtime_checkable

from ..ir.dataflow import stable_hash

Key = tuple[str, Any]
State = dict[str, Any]
#: slot -> (old owner, new owner): the migration schedule of one rescale.
RescaleDelta = dict[int, tuple[int, int]]


class _Tombstone:
    """Marker for a deleted key inside delta layers and cow heads.
    Identity-compared (``state is TOMBSTONE``), so copies must preserve
    identity."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    def __reduce__(self):
        # Pickling must preserve identity across process boundaries: the
        # wire format ships deltas whose tombstones are identity-compared
        # on the receiving side (``state is TOMBSTONE``), and
        # ``_Tombstone()`` always returns the one instance.
        return (_Tombstone, ())

    def __repr__(self):  # pragma: no cover - debugging aid
        return "<deleted>"


#: The one tombstone instance (deletes inside deltas / cow heads).
TOMBSTONE = _Tombstone()


#: Types a state value can contain and still skip ``copy.deepcopy``:
#: immutable scalars, checked by exact type (subclasses may carry
#: mutable extras, so ``type(v) in`` — not ``isinstance``).
_SCALAR_TYPES = (str, int, float, bool, bytes, type(None))


def _flat_scalar(value: Any) -> bool:
    """True for values a shallow copy isolates fully: exact scalars and
    tuples of them (tuples are immutable, so sharing one is safe)."""
    if type(value) in _SCALAR_TYPES:
        return True
    return (type(value) is tuple
            and all(type(item) in _SCALAR_TYPES for item in value))


def fast_deepcopy(value: Any) -> Any:
    """``copy.deepcopy`` with a fast path for the shapes committed
    entity states overwhelmingly take: immutable scalars pass through,
    and a flat ``dict`` of scalars (or tuples of scalars) is isolated by
    a plain ``dict()`` copy — an order of magnitude cheaper than the
    generic deepcopy machinery.  Anything nested or exotic falls back to
    ``copy.deepcopy``, so isolation semantics are identical."""
    if type(value) is dict:
        for item in value.values():
            if not _flat_scalar(item):
                return copy.deepcopy(value)
        return dict(value)
    if _flat_scalar(value) or value is TOMBSTONE:
        return value
    return copy.deepcopy(value)


@dataclass(slots=True, frozen=True)
class StateDelta:
    """Writes since a capture point: a chain of layers (oldest first,
    newer entries shadow older ones).  Values are committed states, or
    :data:`TOMBSTONE` for deleted keys."""

    layers: tuple[dict[Key, Any], ...]

    def merged(self) -> dict[Key, Any]:
        """Flatten the chain (newer wins), tombstones preserved.
        Entries are shared with the layers — do not mutate."""
        merged: dict[Key, Any] = {}
        for layer in self.layers:
            merged.update(layer)
        return merged

    @property
    def is_empty(self) -> bool:
        return not any(self.layers)

    def key_count(self) -> int:
        """Entries across all layers (a key written in two layers counts
        twice — this is the shipped volume, not the distinct-key set)."""
        return sum(len(layer) for layer in self.layers)


@dataclass(slots=True, frozen=True)
class FullFragment:
    """A per-slot piece of an incremental cut that had to fall back to a
    full capture (the slot's delta tracking was invalidated by a restore
    or a migration install).  Resolution replaces the slot's base with
    ``payload`` instead of applying a delta."""

    payload: Any


@dataclass(slots=True, frozen=True)
class PartitionedDelta:
    """One incremental cut of a :class:`PartitionedStore`: per-slot
    fragments, index-aligned with the store's slots.  ``None`` marks a
    slot untouched since the previous cut."""

    parts: tuple[Any, ...]  # None | StateDelta | FullFragment per slot

    @property
    def partition_count(self) -> int:
        return len(self.parts)


@dataclass(slots=True, frozen=True)
class SlotDelta:
    """A migration fragment shipping only one slot's writes since the
    last durable cut; the destination composes it with the slot's base
    resolved from the snapshot store."""

    slot: int
    delta: StateDelta


def compact_deltas(deltas: "list[StateDelta] | tuple[StateDelta, ...]",
                   ) -> StateDelta:
    """Collapse a delta chain into one equivalent delta:
    ``apply(base, d1..dn) == apply(base, compact(d1..dn))`` for every
    base.  Tombstones are preserved (a delete must still shadow an older
    base entry after compaction)."""
    merged: dict[Key, Any] = {}
    for delta in deltas:
        for layer in delta.layers:
            merged.update(layer)
    return StateDelta(layers=(merged,) if merged else ())


def duplicate_delta(payload: Any) -> Any:
    """Model a duplicated in-flight delta fragment (fault injection):
    the same layers delivered twice.  Replay is idempotent — entries are
    absolute states — so resolution of the duplicated payload must equal
    the original (the torn-snapshot chaos tests assert exactly that)."""
    if isinstance(payload, StateDelta):
        return StateDelta(layers=payload.layers + payload.layers)
    if isinstance(payload, PartitionedDelta):
        return PartitionedDelta(parts=tuple(
            duplicate_delta(part) if isinstance(part, StateDelta) else part
            for part in payload.parts))
    return payload


def resolve_payload(base: Any, deltas: "list[Any]") -> Any:
    """Replay a chain of deltas (oldest first) over a base payload,
    producing a payload of the base's own kind (a plain mapping, a
    :class:`CowSnapshot`, or a :class:`PartitionedSnapshot`).  The
    result shares entries with its inputs; callers hand it to
    ``restore`` (which copies where the backend requires it)."""
    for delta in deltas:
        base = _apply_one_delta(base, delta)
    return base


def _apply_one_delta(base: Any, delta: Any) -> Any:
    if delta is None:
        return base
    if isinstance(delta, FullFragment):
        return delta.payload
    if isinstance(delta, PartitionedDelta):
        if not isinstance(base, PartitionedSnapshot) \
                or len(base.parts) != len(delta.parts):
            raise ValueError(
                "partitioned delta does not align with its base payload")
        return PartitionedSnapshot(parts=tuple(
            _apply_one_delta(part, part_delta)
            for part, part_delta in zip(base.parts, delta.parts)))
    if not isinstance(delta, StateDelta):
        raise ValueError(f"not a delta payload: {type(delta).__name__}")
    if isinstance(base, CowSnapshot):
        # O(layers): the delta's frozen layers chain directly onto the
        # base's — no entries are touched.
        return CowSnapshot(layers=base.layers + delta.layers)
    merged = dict(base)
    for layer in delta.layers:
        for key, state in layer.items():
            if state is TOMBSTONE:
                merged.pop(key, None)
            else:
                merged[key] = state
    return merged


def apply_flat_writes(payload: Any, writes: dict[Key, State]) -> Any:
    """Replay one changelog record (a flat ``{key: post-state}`` write
    set) over a payload — the repair path when a cut's delta fragment
    was torn in flight.  Idempotent: records carry absolute states."""
    if not writes:
        return payload
    if isinstance(payload, PartitionedSnapshot):
        slots = len(payload.parts)
        buckets: dict[int, dict[Key, State]] = {}
        for (entity, key), state in writes.items():
            index = stable_hash(f"{entity}|{key}") % slots
            buckets.setdefault(index, {})[(entity, key)] = state
        return PartitionedSnapshot(parts=tuple(
            apply_flat_writes(part, buckets[index])
            if index in buckets else part
            for index, part in enumerate(payload.parts)))
    if isinstance(payload, CowSnapshot):
        return CowSnapshot(layers=payload.layers + (dict(writes),))
    merged = dict(payload)
    merged.update(writes)
    return merged


def payload_keys(payload: Any) -> int:
    """Cheap entry count of any snapshot/delta payload (recovery cost
    modelling — no values are serialized)."""
    if payload is None:
        return 0
    if isinstance(payload, FullFragment):
        return payload_keys(payload.payload)
    if isinstance(payload, (PartitionedSnapshot, PartitionedDelta)):
        return sum(payload_keys(part) for part in payload.parts)
    if isinstance(payload, StateDelta):
        return payload.key_count()
    if isinstance(payload, CowSnapshot):
        return len(payload.merged())
    return len(payload)


def payload_footprint(payload: Any) -> tuple[int, int]:
    """``(keys, bytes)`` a payload would cost to persist durably —
    the metric the recovery bench gates on.  Bytes are estimated from
    ``repr`` of every entry, which is deterministic across runs of the
    same seed (no object addresses in committed state)."""
    if payload is None:
        return (0, 0)
    if isinstance(payload, FullFragment):
        return payload_footprint(payload.payload)
    if isinstance(payload, (PartitionedSnapshot, PartitionedDelta)):
        keys = total = 0
        for part in payload.parts:
            part_keys, part_bytes = payload_footprint(part)
            keys += part_keys
            total += part_bytes
        return (keys, total)
    if isinstance(payload, StateDelta):
        keys = total = 0
        for layer in payload.layers:
            for key, state in layer.items():
                keys += 1
                total += len(repr(key)) + (len(repr(state))
                                           if state is not TOMBSTONE else 1)
        return (keys, total)
    mapping = payload.merged() if isinstance(payload, CowSnapshot) \
        else payload
    keys = len(mapping)
    total = sum(len(repr(key)) + len(repr(state))
                for key, state in mapping.items())
    return (keys, total)


def _apply_delta_entries(backend: Any, delta: "StateDelta") -> None:
    """Install a delta into a live backend: put entries, delete
    tombstoned keys (layer order preserved — newer layers win)."""
    for layer in delta.layers:
        for (entity, key), state in layer.items():
            if state is TOMBSTONE:
                backend.delete(entity, key)
            else:
                backend.put(entity, key, state)


@runtime_checkable
class StateBackend(Protocol):
    """Contract for committed operator state.

    Extends the executor's read/write ``StateAccess`` surface with the
    bulk-commit and fault-tolerance operations the StateFlow coordinator
    drives: ``apply_writes`` installs a committed batch's write sets,
    ``snapshot``/``restore`` implement batch-boundary consistent
    snapshots, and ``keys`` enumerates resident entities.
    """

    def get(self, entity: str, key: Any) -> State | None: ...

    def put(self, entity: str, key: Any, state: State) -> None: ...

    def create(self, entity: str, key: Any, state: State) -> None: ...

    def exists(self, entity: str, key: Any) -> bool: ...

    def delete(self, entity: str, key: Any) -> None: ...

    def apply_writes(self, writes: dict[Key, State]) -> None: ...

    def snapshot(self) -> Any: ...

    def restore(self, snapshot: Any) -> None: ...

    def capture_base(self) -> Any: ...

    def capture_delta(self) -> Any: ...

    def apply_delta(self, delta: Any) -> None: ...

    def keys(self) -> list[Key]: ...

    def __len__(self) -> int: ...

    def pin_view(self, version: int) -> None: ...

    def view(self, version: int) -> Any: ...

    def release_view(self, version: int) -> None: ...


class DictReadView:
    """A version-pinned read view over a :class:`DictStateBackend`.

    The backend records a key's *pre-image* into ``overlay`` the first
    time the key is overwritten after the pin (``None`` marks a key that
    was absent), so the view always answers with the pinned contents:
    overlay first, live store for untouched keys.  Cheap by
    construction — nothing is copied until (and unless) a pinned key is
    actually overwritten, and then only a reference to the replaced
    entry is kept.
    """

    __slots__ = ("_backend", "overlay")

    def __init__(self, backend: "DictStateBackend"):
        self._backend = backend
        self.overlay: dict[Key, State | None] = {}

    def get(self, entity: str, key: Any) -> State | None:
        composite = (entity, key)
        if composite in self.overlay:
            state = self.overlay[composite]
            return fast_deepcopy(state) if state is not None else None
        return self._backend.get(entity, key)

    def exists(self, entity: str, key: Any) -> bool:
        composite = (entity, key)
        if composite in self.overlay:
            return self.overlay[composite] is not None
        return self._backend.exists(entity, key)


class DictStateBackend:
    """Plain in-memory state: one dict, deep-copy snapshots.

    This is both the Local runtime's HashMap backend and StateFlow's
    baseline committed store.  Entries are deep-copied in and out —
    O(entry) on the hot path, same as the cow backend, so no caller can
    mutate committed state through an alias and backends stay
    semantically interchangeable.  Snapshot isolation still costs a full
    ``copy.deepcopy`` — O(total state) per snapshot, the cost
    :class:`CowStateBackend` removes.
    """

    def __init__(self, store: dict[Key, State] | None = None):
        self.store: dict[Key, State] = store if store is not None else {}
        #: Active version-pinned read views (see :class:`DictReadView`).
        self._views: dict[int, DictReadView] = {}
        #: Keys written/deleted since the last incremental capture;
        #: ``None`` = tracking invalidated (a restore rewound the store,
        #: so "since the last capture" no longer describes a delta over
        #: any durable base) — the next capture must be full.
        self._dirty: set[Key] | None = set()

    # -- StateAccess protocol -------------------------------------------
    def get(self, entity: str, key: Any) -> State | None:
        state = self.store.get((entity, key))
        return fast_deepcopy(state) if state is not None else None

    def put(self, entity: str, key: Any, state: State) -> None:
        composite = (entity, key)
        if self._views:
            # Pre-image capture: the replaced entry is about to leave the
            # store, so aliasing it into the overlays is safe (entries
            # are never mutated in place, only swapped whole).
            previous = self.store.get(composite)
            for view in self._views.values():
                if composite not in view.overlay:
                    view.overlay[composite] = previous
        self.store[composite] = fast_deepcopy(state)
        if self._dirty is not None:
            self._dirty.add(composite)

    def create(self, entity: str, key: Any, state: State) -> None:
        self.put(entity, key, state)

    def exists(self, entity: str, key: Any) -> bool:
        return (entity, key) in self.store

    def delete(self, entity: str, key: Any) -> None:
        composite = (entity, key)
        if self._views and composite in self.store:
            previous = self.store[composite]
            for view in self._views.values():
                if composite not in view.overlay:
                    view.overlay[composite] = previous
        self.store.pop(composite, None)
        if self._dirty is not None:
            self._dirty.add(composite)

    # -- commit / snapshot support --------------------------------------
    def apply_writes(self, writes: dict[Key, State]) -> None:
        """Install a committed transaction's buffered writes."""
        for (entity, key), state in writes.items():
            self.put(entity, key, state)

    def snapshot(self) -> dict[Key, State]:
        """Deep copy of all state (the snapshot payload)."""
        return {key: fast_deepcopy(state)
                for key, state in self.store.items()}

    def restore(self, snapshot: dict[Key, State]) -> None:
        self.store = {key: fast_deepcopy(state)
                      for key, state in snapshot.items()}
        # A restore is a rewind: any pinned view predates it and is dead,
        # and the dirty set no longer diffs against any durable capture.
        self._views.clear()
        self._dirty = None

    # -- incremental capture ---------------------------------------------
    def capture_base(self) -> dict[Key, State]:
        """Full payload that (re)establishes the delta baseline."""
        payload = self.snapshot()
        self._dirty = set()
        return payload

    def capture_delta(self) -> StateDelta | None:
        """Writes since the last capture (``None`` if tracking was
        invalidated and the caller must take a full fragment)."""
        delta = self.peek_delta()
        if delta is not None:
            self._dirty = set()
        return delta

    def peek_delta(self) -> StateDelta | None:
        """Like :meth:`capture_delta` but non-destructive — the baseline
        stays where it was (slot migration ships the peek while the
        durable cut cadence keeps owning the baseline)."""
        if self._dirty is None:
            return None
        layer: dict[Key, Any] = {}
        for composite in self._dirty:
            if composite in self.store:
                layer[composite] = fast_deepcopy(self.store[composite])
            else:
                layer[composite] = TOMBSTONE
        return StateDelta(layers=(layer,) if layer else ())

    def apply_delta(self, delta: StateDelta) -> None:
        _apply_delta_entries(self, delta)

    # -- version-pinned read views --------------------------------------
    def pin_view(self, version: int) -> None:
        """Pin the current contents as read-only *version*."""
        self._views.setdefault(version, DictReadView(self))

    def view(self, version: int) -> DictReadView | None:
        return self._views.get(version)

    def release_view(self, version: int) -> None:
        self._views.pop(version, None)

    def keys(self) -> list[Key]:
        return list(self.store)

    def __len__(self) -> int:
        return len(self.store)


def _merge_layers(layers: tuple[dict[Key, State], ...],
                  head: dict[Key, State] | None = None) -> dict[Key, State]:
    """The one encoding of the cow-chain read invariant: iterate layers
    oldest-first so newer entries shadow older ones, the mutable head
    last of all.  Entries are shared (aliased), never copied."""
    merged: dict[Key, State] = {}
    for layer in layers:
        merged.update(layer)
    if head:
        merged.update(head)
    return merged


def _strip_tombstones(mapping: dict[Key, Any]) -> dict[Key, State]:
    """Resident entries only (deleted keys carried as tombstones in the
    layer chain are not content)."""
    return {key: state for key, state in mapping.items()
            if state is not TOMBSTONE}


@dataclass(slots=True, frozen=True)
class CowSnapshot:
    """A consistent cut of a :class:`CowStateBackend`: a chain of frozen
    layers, shared (not copied) with the live backend.  Newer layers
    shadow older ones."""

    layers: tuple[dict[Key, State], ...]

    def merged(self) -> dict[Key, State]:
        """Flatten the chain (newer layers win, tombstoned keys gone)
        WITHOUT copying states: the result aliases the frozen layers and
        must not be mutated or handed to consumers — use
        :meth:`materialize` for that."""
        return _strip_tombstones(_merge_layers(self.layers))

    def materialize(self) -> dict[Key, State]:
        """Flatten the chain into one mapping (queries/inspection).

        States are deep-copied: the layers are shared with the live
        backend, so handing out aliases would let a consumer corrupt
        committed state and the recovery snapshot through them.
        """
        return {key: fast_deepcopy(state)
                for key, state in self.merged().items()}

    def __len__(self) -> int:
        return len(self.merged())


class CowReadView:
    """A version-pinned read view over a :class:`CowStateBackend`: the
    frozen layer chain as of the pin, shared (not copied) with the live
    backend.  Later writes land in a fresh head and newer layers, so the
    view stays immutable for free."""

    __slots__ = ("_layers",)

    def __init__(self, layers: tuple[dict[Key, State], ...]):
        self._layers = layers

    def get(self, entity: str, key: Any) -> State | None:
        composite = (entity, key)
        for layer in reversed(self._layers):
            if composite in layer:
                state = layer[composite]
                return (fast_deepcopy(state)
                        if state is not TOMBSTONE else None)
        return None

    def exists(self, entity: str, key: Any) -> bool:
        composite = (entity, key)
        for layer in reversed(self._layers):
            if composite in layer:
                return layer[composite] is not TOMBSTONE
        return False


class CowStateBackend:
    """Copy-on-write committed state with version-chained snapshots.

    Layout: an ordered chain of immutable ``layers`` (oldest first) plus
    one mutable write ``head``.  Reads probe head-then-layers newest
    first; writes only ever touch the head.  ``snapshot`` freezes the
    head onto the chain and returns the chain itself — no per-entry
    copying, so snapshot cost is independent of total state size.

    Entry immutability is what makes layer sharing safe: ``put`` deep
    copies the incoming state and ``get`` deep copies the outgoing one,
    so no caller can mutate a frozen layer through an alias.  The chain
    is compacted (layers merged, entries still shared) once it grows
    past ``compact_after`` layers to bound read amplification.
    """

    #: Frozen-layer references kept for delta tracking are dropped (and
    #: tracking invalidated) past this bound: a run that never captures
    #: deltas (full snapshot mode) must not pin every layer forever.
    MAX_TRACKED_LAYERS = 256

    def __init__(self, *, compact_after: int = 8):
        self._head: dict[Key, State] = {}
        self._layers: tuple[dict[Key, State], ...] = ()
        self._compact_after = compact_after
        self.snapshots_taken = 0
        self.layers_compacted = 0
        #: Active version-pinned read views (see :class:`CowReadView`).
        self._views: dict[int, CowReadView] = {}
        #: Layers frozen since the last incremental capture (aliases of
        #: the chain's dicts — O(1) per freeze).  ``None`` = tracking
        #: invalidated by a restore; the next capture must be full.
        self._since_capture: list[dict[Key, Any]] | None = []

    # -- StateAccess protocol -------------------------------------------
    def get(self, entity: str, key: Any) -> State | None:
        composite = (entity, key)
        if composite in self._head:
            state = self._head[composite]
        else:
            state = None
            for layer in reversed(self._layers):
                if composite in layer:
                    state = layer[composite]
                    break
        if state is None or state is TOMBSTONE:
            return None
        return fast_deepcopy(state)

    def put(self, entity: str, key: Any, state: State) -> None:
        self._head[(entity, key)] = fast_deepcopy(state)

    def create(self, entity: str, key: Any, state: State) -> None:
        self.put(entity, key, state)

    def exists(self, entity: str, key: Any) -> bool:
        composite = (entity, key)
        if composite in self._head:
            return self._head[composite] is not TOMBSTONE
        for layer in reversed(self._layers):
            if composite in layer:
                return layer[composite] is not TOMBSTONE
        return False

    def delete(self, entity: str, key: Any) -> None:
        """Delete by tombstone: the marker lands in the head and shadows
        every older layer, so frozen chains stay immutable."""
        self._head[(entity, key)] = TOMBSTONE

    # -- commit / snapshot support --------------------------------------
    def apply_writes(self, writes: dict[Key, State]) -> None:
        for (entity, key), state in writes.items():
            self.put(entity, key, state)

    def _freeze_head(self) -> None:
        """Freeze the mutable head onto the chain (O(1), no copying) and
        remember it for delta tracking."""
        if not self._head:
            return
        if self._since_capture is not None:
            self._since_capture.append(self._head)
            if len(self._since_capture) > self.MAX_TRACKED_LAYERS:
                self._since_capture = None
        self._layers = self._layers + (self._head,)
        self._head = {}
        self._maybe_compact()

    def snapshot(self) -> CowSnapshot:
        self._freeze_head()
        self.snapshots_taken += 1
        return CowSnapshot(layers=self._layers)

    def restore(self, snapshot: CowSnapshot) -> None:
        self._layers = tuple(snapshot.layers)
        self._head = {}
        self._views.clear()
        self._since_capture = None

    # -- incremental capture ---------------------------------------------
    def capture_base(self) -> CowSnapshot:
        """Full payload that (re)establishes the delta baseline."""
        payload = self.snapshot()
        self._since_capture = []
        return payload

    def capture_delta(self) -> StateDelta | None:
        """Layers frozen since the last capture — the O(1) head-freeze
        reused as an incremental cut (layers are shared, not copied).
        ``None`` if tracking was invalidated by a restore."""
        if self._since_capture is None:
            return None
        self._freeze_head()
        if self._since_capture is None:
            return None  # the freeze overflowed the tracking bound
        delta = StateDelta(layers=tuple(self._since_capture))
        self._since_capture = []
        return delta

    def peek_delta(self) -> StateDelta | None:
        """Non-destructive :meth:`capture_delta` (slot migration): the
        head is frozen (semantically neutral) but the baseline stays."""
        if self._since_capture is None:
            return None
        self._freeze_head()
        if self._since_capture is None:
            return None
        return StateDelta(layers=tuple(self._since_capture))

    def apply_delta(self, delta: StateDelta) -> None:
        _apply_delta_entries(self, delta)

    # -- version-pinned read views --------------------------------------
    def pin_view(self, version: int) -> None:
        """Pin the current contents as read-only *version*: freeze the
        write head onto the chain (O(1) — no entries are copied) and
        share the chain with the view.

        Pinning every batch boundary (the pipelined coordinator does)
        grows the layer chain only for backends that were actually
        written since the last freeze; compaction then bounds read
        amplification at O(keys in this backend) every
        ``compact_after`` freezes.  The freeze cannot be deferred to a
        view's first reader: the pin captures the quiescent batch
        boundary, and by the time a reader arrives the next batch's
        commit is already mutating the head."""
        if version in self._views:
            return
        self._freeze_head()
        self._views[version] = CowReadView(self._layers)

    def view(self, version: int) -> CowReadView | None:
        return self._views.get(version)

    def release_view(self, version: int) -> None:
        self._views.pop(version, None)

    def _maybe_compact(self) -> None:
        if len(self._layers) <= self._compact_after:
            return
        # Tombstones can drop here: nothing older remains beneath the
        # merged layer for them to shadow.  (Frozen chains shared with
        # snapshots/views keep their own tuples — untouched.)
        self._layers = (_strip_tombstones(_merge_layers(self._layers)),)
        self.layers_compacted += 1

    @property
    def layer_count(self) -> int:
        return len(self._layers)

    def keys(self) -> list[Key]:
        return list(_strip_tombstones(
            _merge_layers(self._layers, self._head)))

    def __len__(self) -> int:
        return len(_strip_tombstones(
            _merge_layers(self._layers, self._head)))


@dataclass(slots=True, frozen=True)
class PartitionedSnapshot:
    """Per-slot snapshot fragments, index-aligned with the
    :class:`PartitionedStore` that produced them.  Fragments are keyed
    by slot, not by worker, so a snapshot taken under one worker count
    restores cleanly under any other — the property that lets recovery
    and elastic rescaling compose."""

    parts: tuple[Any, ...]

    @property
    def partition_count(self) -> int:
        return len(self.parts)


class SlotAssignment:
    """The routing table: which worker owns which hash slot.

    ``slots`` is fixed for the lifetime of the store; ``owners[slot]``
    is the owning worker index and changes only through
    :meth:`plan`/:meth:`apply` (one rescale = one new routing epoch).
    The default layout deals slots round-robin, so initial loads differ
    by at most one slot.

    :meth:`plan` computes a *minimal-movement* rebalance: only slots
    that must change hands (their owner is being removed, or it is above
    its new quota) are reassigned, so rescaling n -> n+1 workers moves
    at most ``ceil(slots / (n+1))`` slots and every unmoved slot keeps
    its owner.
    """

    def __init__(self, workers: int, slots: int | None = None):
        if workers < 1:
            raise ValueError("SlotAssignment needs at least one worker")
        slots = workers if slots is None else slots
        if slots < workers:
            raise ValueError(
                f"{workers} workers need at least as many slots, got {slots}")
        self.slots = slots
        self.workers = workers
        self.owners: list[int] = [slot % workers for slot in range(slots)]
        #: Routing epoch: bumped by every :meth:`apply` (and restore), so
        #: consumers can fence messages routed under an older table.
        self.epoch = 0

    # -- routing --------------------------------------------------------
    def slot_of(self, entity: str, key: Any) -> int:
        return stable_hash(f"{entity}|{key}") % self.slots

    def worker_of(self, entity: str, key: Any) -> int:
        return self.owners[self.slot_of(entity, key)]

    def slots_of(self, worker: int) -> list[int]:
        return [slot for slot, owner in enumerate(self.owners)
                if owner == worker]

    def loads(self) -> list[int]:
        """Slots owned per worker (index-aligned with worker indices)."""
        counts = [0] * self.workers
        for owner in self.owners:
            counts[owner] += 1
        return counts

    # -- rescaling ------------------------------------------------------
    def _quota(self, workers: int) -> list[int]:
        base, extra = divmod(self.slots, workers)
        return [base + 1 if index < extra else base
                for index in range(workers)]

    def plan(self, new_workers: int) -> RescaleDelta:
        """The minimal-movement migration schedule for ``new_workers``.

        Slots are surrendered in index order: first every slot whose
        owner is being removed, then slots from owners above their new
        quota; they are granted to under-quota workers in worker order.
        Fully deterministic — same assignment, same plan.
        """
        if new_workers < 1:
            raise ValueError("cannot rescale below one worker")
        if new_workers > self.slots:
            raise ValueError(
                f"cannot rescale to {new_workers} workers with only "
                f"{self.slots} slots")
        quota = self._quota(new_workers)
        load = [0] * max(self.workers, new_workers)
        for owner in self.owners:
            load[owner] += 1
        surrendered: list[int] = []
        for slot, owner in enumerate(self.owners):
            if owner >= new_workers:
                surrendered.append(slot)
                load[owner] -= 1
        for slot, owner in enumerate(self.owners):
            if owner < new_workers and load[owner] > quota[owner]:
                surrendered.append(slot)
                load[owner] -= 1
        delta: RescaleDelta = {}
        grants = iter(surrendered)
        for worker in range(new_workers):
            while load[worker] < quota[worker]:
                slot = next(grants)
                delta[slot] = (self.owners[slot], worker)
                load[worker] += 1
        return dict(sorted(delta.items()))

    def apply(self, new_workers: int, delta: RescaleDelta) -> None:
        """Commit a planned rescale: flip the moved slots' owners and
        open a new routing epoch."""
        for slot, (_, new_owner) in delta.items():
            self.owners[slot] = new_owner
        self.workers = new_workers
        self.epoch += 1

    # -- snapshot support ------------------------------------------------
    def freeze(self) -> tuple[int, tuple[int, ...]]:
        """Immutable form for inclusion in a consistent snapshot."""
        return (self.workers, tuple(self.owners))

    def restore(self, frozen: tuple[int, tuple[int, ...]]) -> None:
        workers, owners = frozen
        if len(owners) != self.slots:
            raise ValueError(
                f"frozen assignment has {len(owners)} slots, table has "
                f"{self.slots}")
        self.workers = workers
        self.owners = list(owners)
        self.epoch += 1


class WorkerSlice:
    """One worker's live view of a :class:`PartitionedStore`: the slots
    the assignment currently maps to it.

    The slice implements the ``StateAccess`` surface the worker's
    executor and commit path need.  Ownership is consulted per access,
    so after a rescale the same slice object automatically covers the
    worker's new slots.  Writes route by *slot* (not ownership), so a
    commit-phase delivery delayed across a rescale still lands in the
    right slot backend.
    """

    def __init__(self, store: "PartitionedStore", index: int):
        self._store = store
        self.index = index

    def _owned(self, entity: str, key: Any) -> bool:
        return self._store.assignment.worker_of(entity, key) == self.index

    # -- StateAccess protocol -------------------------------------------
    def get(self, entity: str, key: Any) -> State | None:
        if not self._owned(entity, key):
            return None
        return self._store.get(entity, key)

    def put(self, entity: str, key: Any, state: State) -> None:
        self._store.put(entity, key, state)

    def create(self, entity: str, key: Any, state: State) -> None:
        self._store.create(entity, key, state)

    def exists(self, entity: str, key: Any) -> bool:
        return self._owned(entity, key) and self._store.exists(entity, key)

    def delete(self, entity: str, key: Any) -> None:
        self._store.delete(entity, key)

    def apply_writes(self, writes: dict[Key, State]) -> None:
        self._store.apply_writes(writes)

    # -- migration hand-off ---------------------------------------------
    def capture_slot(self, slot: int, mode: str = "full") -> Any:
        return self._store.snapshot_slot(slot, mode)

    def install_slot(self, slot: int, fragment: Any) -> None:
        self._store.install_slot(slot, fragment)

    def slot_backend(self, slot: int) -> Any:
        return self._store.slot_backend(slot)

    # -- aggregation -----------------------------------------------------
    def owned_slots(self) -> list[int]:
        return self._store.assignment.slots_of(self.index)

    def keys(self) -> list[Key]:
        return [key for slot in self.owned_slots()
                for key in self._store.slot_backend(slot).keys()]

    def __len__(self) -> int:
        return sum(len(self._store.slot_backend(slot))
                   for slot in self.owned_slots())


class PartitionedReadView:
    """A version-pinned read view over a :class:`PartitionedStore`:
    routes each read to the owning slot's pinned view.  Routing uses the
    live assignment — safe because the pipelined coordinator drains all
    views before a rescale can change the table."""

    __slots__ = ("_store", "_version")

    def __init__(self, store: "PartitionedStore", version: int):
        self._store = store
        self._version = version

    def _slot_view(self, entity: str, key: Any) -> Any:
        slot = self._store.assignment.slot_of(entity, key)
        return self._store.slot_backend(slot).view(self._version)

    def get(self, entity: str, key: Any) -> State | None:
        view = self._slot_view(entity, key)
        return view.get(entity, key) if view is not None else None

    def exists(self, entity: str, key: Any) -> bool:
        view = self._slot_view(entity, key)
        return view.exists(entity, key) if view is not None else False


class PartitionedStore:
    """Committed state sharded into hash slots owned by workers.

    Routing is two-step: ``stable_hash("entity|key") % slots`` picks the
    slot, the :class:`SlotAssignment` maps the slot to its owning
    worker — the same table the StateFlow runtime uses to pick the
    worker executing a key, so execution placement and state ownership
    always agree.  With the default ``slots == workers`` the layout
    degenerates to the classic one-partition-per-worker scheme.

    Snapshots are assembled from per-slot fragments (each slot backend
    snapshots independently) and ``restore`` fans the fragments back
    out.  Rescaling reuses exactly that machinery per moved slot:
    ``snapshot_slot`` at the old owner, ``install_slot`` at the new one.
    """

    def __init__(self, workers: int, backend: str | Callable[[], Any] = "dict",
                 *, slots: int | None = None):
        if workers < 1:
            raise ValueError("PartitionedStore needs at least one partition")
        factory = (backend if callable(backend)
                   else lambda: make_state_backend(backend))
        self._factory = factory
        self.assignment = SlotAssignment(workers, slots=slots)
        self._slots: list[Any] = [factory()
                                  for _ in range(self.assignment.slots)]
        #: Active version-pinned read views, one per pinned version.
        self._views: dict[int, PartitionedReadView] = {}

    # -- partition topology ---------------------------------------------
    @property
    def partition_count(self) -> int:
        return self.assignment.workers

    @property
    def slot_count(self) -> int:
        return self.assignment.slots

    def partition_of(self, entity: str, key: Any) -> int:
        """The worker owning *key* under the current assignment."""
        return self.assignment.worker_of(entity, key)

    def slot_of(self, entity: str, key: Any) -> int:
        return self.assignment.slot_of(entity, key)

    def partition(self, index: int) -> WorkerSlice:
        """Worker *index*'s live slice of the store."""
        return WorkerSlice(self, index)

    def partitions(self) -> Iterator[WorkerSlice]:
        return (self.partition(index)
                for index in range(self.assignment.workers))

    # -- StateAccess protocol (routes to the owning slot) ----------------
    def _backend(self, entity: str, key: Any) -> Any:
        return self._slots[self.assignment.slot_of(entity, key)]

    def get(self, entity: str, key: Any) -> State | None:
        return self._backend(entity, key).get(entity, key)

    def put(self, entity: str, key: Any, state: State) -> None:
        self._backend(entity, key).put(entity, key, state)

    def create(self, entity: str, key: Any, state: State) -> None:
        self._backend(entity, key).create(entity, key, state)

    def exists(self, entity: str, key: Any) -> bool:
        return self._backend(entity, key).exists(entity, key)

    def delete(self, entity: str, key: Any) -> None:
        self._backend(entity, key).delete(entity, key)

    def apply_writes(self, writes: dict[Key, State]) -> None:
        """Route a write set to its owning slots (callers that already
        bucket per worker use ``partition(i).apply_writes``)."""
        buckets: dict[int, dict[Key, State]] = {}
        for (entity, key), state in writes.items():
            index = self.assignment.slot_of(entity, key)
            buckets.setdefault(index, {})[(entity, key)] = state
        for index, bucket in buckets.items():
            self._slots[index].apply_writes(bucket)

    # -- version-pinned read views --------------------------------------
    def pin_view(self, version: int) -> None:
        """Pin every slot's current contents as read-only *version*."""
        if version in self._views:
            return
        for backend in self._slots:
            backend.pin_view(version)
        self._views[version] = PartitionedReadView(self, version)

    def view(self, version: int) -> PartitionedReadView | None:
        return self._views.get(version)

    def release_view(self, version: int) -> None:
        if self._views.pop(version, None) is None:
            return
        for backend in self._slots:
            backend.release_view(version)

    # -- snapshot assembly ----------------------------------------------
    def snapshot(self) -> PartitionedSnapshot:
        return PartitionedSnapshot(
            parts=tuple(backend.snapshot() for backend in self._slots))

    def restore(self, snapshot: PartitionedSnapshot) -> None:
        if snapshot.partition_count != len(self._slots):
            raise ValueError(
                f"snapshot has {snapshot.partition_count} partition "
                f"fragments, store has {len(self._slots)} partitions")
        for backend, part in zip(self._slots, snapshot.parts):
            backend.restore(part)
        self._views.clear()

    # -- incremental capture ---------------------------------------------
    def capture_base(self) -> PartitionedSnapshot:
        """Full per-slot payload that (re)establishes every slot's delta
        baseline."""
        return PartitionedSnapshot(
            parts=tuple(backend.capture_base() for backend in self._slots))

    def capture_delta(self) -> PartitionedDelta:
        """One incremental cut: per-slot fragments — ``None`` for clean
        slots (the dirty-set diff), a :class:`StateDelta` for dirtied
        ones, a :class:`FullFragment` for slots whose tracking a restore
        or migration invalidated.  Never fails as a whole: invalid slots
        degrade to full fragments inside the same cut."""
        parts: list[Any] = []
        for backend in self._slots:
            delta = backend.capture_delta()
            if delta is None:
                parts.append(FullFragment(backend.capture_base()))
            elif delta.is_empty:
                parts.append(None)
            else:
                parts.append(delta)
        return PartitionedDelta(parts=tuple(parts))

    def apply_delta(self, delta: PartitionedDelta | StateDelta) -> None:
        if isinstance(delta, StateDelta):
            _apply_delta_entries(self, delta)
            return
        for backend, part in zip(self._slots, delta.parts):
            if part is None:
                continue
            if isinstance(part, FullFragment):
                backend.restore(part.payload)
            else:
                backend.apply_delta(part)

    def peek_slot_delta(self, slot: int) -> StateDelta | None:
        """One slot's writes since the last durable cut, baseline left
        in place (slot migration's base+delta shipping)."""
        return self._slots[slot].peek_delta()

    def snapshot_partition(self, index: int) -> Any:
        return self._slots[index].snapshot()

    def restore_partition(self, index: int, fragment: Any) -> None:
        self._slots[index].restore(fragment)

    # -- slot migration ---------------------------------------------------
    def slot_backend(self, slot: int) -> Any:
        return self._slots[slot]

    def slot_size(self, slot: int) -> int:
        return len(self._slots[slot])

    def snapshot_slot(self, slot: int, mode: str = "full") -> Any:
        """Capture one slot for migration (O(1) on the cow backend).

        ``mode="delta"`` ships only the slot's writes since the last
        durable cut as a :class:`SlotDelta` (the destination composes
        them with the base it resolves from the snapshot store); falls
        back to a full capture when tracking was invalidated."""
        if mode == "delta":
            delta = self._slots[slot].peek_delta()
            if delta is not None:
                return SlotDelta(slot=slot, delta=delta)
        return self._slots[slot].snapshot()

    def install_slot(self, slot: int, fragment: Any) -> None:
        """Install a migrated slot: a fresh backend restored from the
        fragment replaces the slot's previous backend.  Idempotent for
        a fragment captured under the rescale barrier (slot contents
        cannot change between capture and install), so an aborted
        migration can simply be retried."""
        backend = self._factory()
        backend.restore(_normalize_payload_for(backend, fragment))
        self._slots[slot] = backend

    # -- rescaling --------------------------------------------------------
    def plan_rescale(self, new_workers: int) -> RescaleDelta:
        return self.assignment.plan(new_workers)

    def commit_rescale(self, new_workers: int, delta: RescaleDelta) -> None:
        self.assignment.apply(new_workers, delta)

    def rescale(self, new_workers: int) -> RescaleDelta:
        """Synchronous rescale (tests, single-process callers): migrate
        every moved slot through the snapshot machinery, then commit.
        The distributed runtime drives the same three steps through
        coordinator/worker messages instead."""
        delta = self.plan_rescale(new_workers)
        for slot in delta:
            self.install_slot(slot, self.snapshot_slot(slot))
        self.commit_rescale(new_workers, delta)
        return delta

    def split(self) -> RescaleDelta:
        """Grow by one worker (hash-range split)."""
        return self.rescale(self.assignment.workers + 1)

    def merge(self) -> RescaleDelta:
        """Shrink by one worker, merging its ranges into the survivors."""
        return self.rescale(self.assignment.workers - 1)

    # -- assignment snapshot ----------------------------------------------
    def freeze_assignment(self) -> tuple[int, tuple[int, ...]]:
        return self.assignment.freeze()

    def restore_assignment(self, frozen: tuple[int, tuple[int, ...]]) -> None:
        self.assignment.restore(frozen)

    # -- aggregation -----------------------------------------------------
    def keys(self) -> list[Key]:
        """All resident keys, grouped by slot (not insertion order);
        order-sensitive consumers must sort."""
        return [key for backend in self._slots for key in backend.keys()]

    def __len__(self) -> int:
        return sum(len(backend) for backend in self._slots)


def _normalize_payload_for(backend: Any, payload: Any) -> Any:
    """Coerce a restore payload into the shape *backend* expects.  Slot
    migration can hand a plain mapping (a base+delta composition) to a
    cow factory, or a cow chain to a dict factory — the two cases the
    symmetric snapshot()/restore() pairing never produces."""
    if isinstance(backend, CowStateBackend) and isinstance(payload, dict):
        return CowSnapshot(layers=(dict(payload),) if payload else ())
    if isinstance(backend, DictStateBackend) \
            and isinstance(payload, CowSnapshot):
        return payload.merged()
    return payload


def materialize_snapshot(payload: Any,
                         entity: str | None = None) -> dict[Key, State]:
    """Flatten any backend-produced snapshot payload into one
    ``{(entity, key): state}`` mapping (query engine, inspection).

    Handles the dict backend's plain mapping, the cow backend's layer
    chain, and the partitioned store's per-partition fragments (which
    recurse into either of the former).  States are copies in every
    branch: consumers (e.g. query predicates) must not be able to
    corrupt the stored recovery snapshot through the result.  Pass
    *entity* to copy only that entity's rows instead of the whole store.
    """
    if isinstance(payload, PartitionedSnapshot):
        merged: dict[Key, State] = {}
        for part in payload.parts:
            merged.update(materialize_snapshot(part, entity))
        return merged
    if isinstance(payload, CowSnapshot):
        aliased = payload.merged()
    else:
        aliased = payload
    return {key: fast_deepcopy(state) for key, state in aliased.items()
            if entity is None or key[0] == entity}


#: Registry of selectable backends (CLI/config surface).
BACKENDS: dict[str, Callable[[], Any]] = {
    "dict": DictStateBackend,
    "cow": CowStateBackend,
}


def make_state_backend(name: str) -> Any:
    """Instantiate a registered backend by name."""
    try:
        return BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown state backend {name!r}; "
            f"choose from {sorted(BACKENDS)}") from None
