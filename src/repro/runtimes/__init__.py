"""Execution backends for the stateful dataflow IR."""

from .base import InvocationResult, Runtime
from .executor import (
    Instrumentation,
    MapStateAccess,
    OperatorExecutor,
)
from .local import LocalRuntime

__all__ = [
    "Instrumentation",
    "InvocationResult",
    "LocalRuntime",
    "MapStateAccess",
    "OperatorExecutor",
    "Runtime",
]
