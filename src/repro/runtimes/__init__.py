"""Execution backends for the stateful dataflow IR."""

from .base import InvocationResult, Runtime
from .executor import (
    Instrumentation,
    MapStateAccess,
    OperatorExecutor,
)
from .local import LocalRuntime
from .state import (
    BACKENDS,
    CowSnapshot,
    CowStateBackend,
    DictStateBackend,
    PartitionedSnapshot,
    PartitionedStore,
    SlotAssignment,
    StateBackend,
    WorkerSlice,
    make_state_backend,
    materialize_snapshot,
)

__all__ = [
    "BACKENDS",
    "CowSnapshot",
    "CowStateBackend",
    "DictStateBackend",
    "Instrumentation",
    "InvocationResult",
    "LocalRuntime",
    "MapStateAccess",
    "OperatorExecutor",
    "PartitionedSnapshot",
    "PartitionedStore",
    "Runtime",
    "SlotAssignment",
    "StateBackend",
    "WorkerSlice",
    "make_state_backend",
    "materialize_snapshot",
]
