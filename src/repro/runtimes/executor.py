"""Engine-independent operator logic.

This is the behaviour of one dataflow operator from Figure 2: reconstruct
the entity from operator state, execute state-machine blocks until the
invocation either returns (REPLY / RESUME to the caller) or performs a
remote call (INVOKE / CREATE to another operator), and flush the entity's
state back.  Every runtime (Local, StateFun-style, StateFlow) wraps this
executor with its own messaging, partitioning, and consistency machinery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from ..compiler.blocks import (
    BranchTerminator,
    ConstructTerminator,
    InvokeTerminator,
    JumpTerminator,
    ReturnTerminator,
)
from ..compiler.codegen import CompiledEntity, CompiledMethod
from ..core.errors import (
    EntityNotFoundError,
    InvocationError,
    RuntimeExecutionError,
)
from ..core.refs import EntityRef
from ..core.serialization import check_serializable, dumps
from ..ir.events import Event, EventKind, ExecutionState, Frame
from .state import DictStateBackend


class StateAccess(Protocol):
    """How the executor touches operator state.  Implementations range
    from a plain dict (Local) to Aria's snapshot-read/buffered-write view
    (StateFlow transactions)."""

    def get(self, entity: str, key: Any) -> dict[str, Any] | None: ...

    def put(self, entity: str, key: Any, state: dict[str, Any]) -> None: ...

    def create(self, entity: str, key: Any, state: dict[str, Any]) -> None: ...


#: Plain in-memory state: the Local runtime's HashMap backend.  Kept as
#: an alias so existing imports keep working; the implementation lives in
#: the shared state-backend subsystem.
MapStateAccess = DictStateBackend


@dataclass(slots=True)
class Instrumentation:
    """Duration accumulator for the overhead-breakdown experiment
    (paper Section 4, "System overhead").

    ``clock`` is the time source the executor reads around each measured
    region; it defaults to the wall clock but is injectable, so tests
    can drive the breakdown with a deterministic counter instead of
    asserting on load-sensitive ``perf_counter`` ratios.
    """

    components: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    clock: Callable[[], float] = time.perf_counter

    def add(self, component: str, seconds: float) -> None:
        self.components[component] = self.components.get(component, 0.0) + seconds
        self.counts[component] = self.counts.get(component, 0) + 1

    def total(self) -> float:
        return sum(self.components.values())

    def share(self, component: str) -> float | None:
        """Measured share of the total, or ``None`` when the component
        was never measured (or nothing was) — an absent measurement is
        unknown, not free, and conflating the two let a breakdown
        claim 0 % for work it simply never timed."""
        total = self.total()
        if component not in self.components or total == 0:
            return None
        return self.components[component] / total


class OperatorExecutor:
    """Executes events against compiled entities.

    ``handle`` is a pure step function: one inbound event in, a list of
    outbound events out.  It never blocks — a remote call suspends the
    frame and emits an INVOKE, exactly as Section 2.3 requires ("a
    streaming dataflow should never stop and wait").
    """

    def __init__(self, entities: dict[str, CompiledEntity],
                 *, check_state_serializable: bool = True,
                 instrumentation: Instrumentation | None = None):
        self._entities = entities
        self._check_serializable = check_state_serializable
        self._instr = instrumentation
        #: RESUMEs dropped because their call stack already unwound —
        #: expected under at-least-once redelivery (fault injection),
        #: a routing bug if it ever moves in a fault-free run.
        self.stale_resumes = 0

    # ------------------------------------------------------------------
    def entity(self, name: str) -> CompiledEntity:
        try:
            return self._entities[name]
        except KeyError:
            raise RuntimeExecutionError(
                f"no compiled entity {name!r}") from None

    def handle(self, event: Event, state: StateAccess) -> list[Event]:
        """Process one event, returning the outbound events it causes."""
        try:
            if event.kind is EventKind.INVOKE:
                return self._handle_invoke(event, state)
            if event.kind is EventKind.RESUME:
                return self._handle_resume(event, state)
            if event.kind is EventKind.CREATE:
                return self._handle_create(event, state)
        except RuntimeExecutionError as exc:
            return [self._error_reply(event, exc)]
        raise RuntimeExecutionError(
            f"operator cannot handle event kind {event.kind!r}")

    # ------------------------------------------------------------------
    def _handle_invoke(self, event: Event, state: StateAccess) -> list[Event]:
        assert event.method is not None
        compiled = self.entity(event.target.entity)
        method = compiled.method(event.method)
        execution = event.execution or ExecutionState()
        frame = Frame(entity=event.target.entity, key=event.target.key,
                      method=event.method, node=method.entry,
                      store=method.initial_store(event.args))
        execution.push(frame)
        return self._run(event, execution, state)

    def _handle_resume(self, event: Event, state: StateAccess) -> list[Event]:
        execution = event.execution
        if execution is None or execution.depth == 0:
            # Stale duplicate of a continuation whose call stack already
            # unwound (an at-least-once channel redelivered it after the
            # original completed).  Dropping it is the dedup.
            self.stale_resumes += 1
            return []
        frame = execution.top
        if frame.result_var is not None:
            frame.store[frame.result_var] = event.payload
            frame.result_var = None
        return self._run(event, execution, state)

    def _handle_create(self, event: Event, state: StateAccess) -> list[Event]:
        """Materialise a constructed entity, then resume the creator."""
        entity_name = event.target.entity
        key = event.target.key
        state.create(entity_name, key, dict(event.payload))
        ref = EntityRef(entity=entity_name, key=key)
        execution = event.execution
        if execution is None or execution.depth == 0:
            # Client-initiated creation: reply with the new ref.
            return [Event(kind=EventKind.REPLY,
                          target=EntityRef("__client__", event.request_id),
                          payload=ref, request_id=event.request_id,
                          txn=event.txn, ingress_time=event.ingress_time)]
        caller = execution.top
        return [Event(kind=EventKind.RESUME,
                      target=EntityRef(caller.entity, caller.key),
                      payload=ref, execution=execution,
                      request_id=event.request_id, txn=event.txn,
                      ingress_time=event.ingress_time)]

    # ------------------------------------------------------------------
    def _run(self, event: Event, execution: ExecutionState,
             state: StateAccess) -> list[Event]:
        """Drive the top frame until it leaves this operator."""
        frame = execution.top
        compiled = self.entity(frame.entity)
        method = compiled.method(frame.method)
        is_constructor = frame.method == "__init__"

        started = self._instr.clock() if self._instr else 0.0
        if is_constructor:
            entity_state: dict[str, Any] | None = {}
            instance = compiled.blank_instance()
        else:
            entity_state = state.get(frame.entity, frame.key)
            if entity_state is None:
                raise EntityNotFoundError(
                    f"no entity {frame.entity}/{frame.key!r}")
            instance = compiled.make_instance(entity_state)
        if self._instr:
            self._instr.add("object_construction",
                            self._instr.clock() - started)

        while True:
            outcome = self._execute_block(method, frame, instance)
            node = method.machine.node(frame.node)
            terminator = node.terminator

            if outcome.returned:
                # Early `return` inside local control flow pre-empts the
                # block's static terminator.
                return self._finish_return(event, execution, state, compiled,
                                           instance, frame, outcome,
                                           is_constructor)
            if isinstance(terminator, JumpTerminator):
                frame.store = outcome.store
                frame.node = terminator.target
                continue
            if isinstance(terminator, BranchTerminator):
                frame.store = outcome.store
                frame.node = (terminator.true_target if outcome.condition
                              else terminator.false_target)
                continue
            if isinstance(terminator, ReturnTerminator):
                return self._finish_return(event, execution, state, compiled,
                                           instance, frame, outcome,
                                           is_constructor)
            if isinstance(terminator, InvokeTerminator):
                return self._suspend_invoke(event, execution, state, compiled,
                                            instance, frame, outcome,
                                            terminator)
            if isinstance(terminator, ConstructTerminator):
                return self._suspend_construct(event, execution, state,
                                               compiled, instance, frame,
                                               outcome, terminator)
            raise RuntimeExecutionError(
                f"unknown terminator {terminator!r}")  # pragma: no cover

    def _execute_block(self, method: CompiledMethod, frame: Frame,
                       instance: Any):
        started = self._instr.clock() if self._instr else 0.0
        outcome = method.execute_block(frame.node, instance, frame.store)
        if self._instr:
            self._instr.add("function_execution",
                            self._instr.clock() - started)
        return outcome

    def _flush_state(self, compiled: CompiledEntity, instance: Any,
                     frame: Frame, state: StateAccess,
                     *, create: bool = False) -> None:
        started = self._instr.clock() if self._instr else 0.0
        new_state = compiled.extract_state(instance)
        if self._check_serializable:
            check_serializable(new_state)
        serde_duration = 0.0
        if self._instr:
            # The overhead experiment attributes the wire/storage codec
            # cost separately; it grows with the entity's state size.
            serde_started = self._instr.clock()
            dumps(new_state)
            serde_duration = self._instr.clock() - serde_started
            self._instr.add("state_serde", serde_duration)
        if create:
            state.create(frame.entity, compiled.key_of_state(new_state),
                         new_state)
        else:
            state.put(frame.entity, frame.key, new_state)
        if self._instr:
            self._instr.add("state_storage",
                            self._instr.clock() - started - serde_duration)

    # -- terminator handlers -------------------------------------------------
    def _finish_return(self, event: Event, execution: ExecutionState,
                       state: StateAccess, compiled: CompiledEntity,
                       instance: Any, frame: Frame, outcome,
                       is_constructor: bool) -> list[Event]:
        value: Any = outcome.return_value
        if is_constructor:
            new_state = compiled.extract_state(instance)
            if self._check_serializable:
                check_serializable(new_state)
            key = compiled.key_of_state(new_state)
            state.create(frame.entity, key, new_state)
            value = EntityRef(entity=frame.entity, key=key)
        else:
            self._flush_state(compiled, instance, frame, state)

        # State-machine bookkeeping (the "split instrumentation" cost of
        # the overhead experiment) is just the frame pop; reply/resume
        # event assembly happens for unsplit functions too and counts as
        # runtime messaging.
        started = self._instr.clock() if self._instr else 0.0
        execution.pop()
        if self._instr:
            self._instr.add("split_instrumentation",
                            self._instr.clock() - started)
        if execution.depth == 0:
            return [Event(kind=EventKind.REPLY,
                          target=EntityRef("__client__", event.request_id),
                          payload=value, request_id=event.request_id,
                          txn=event.txn, ingress_time=event.ingress_time)]
        caller = execution.top
        return [Event(kind=EventKind.RESUME,
                      target=EntityRef(caller.entity, caller.key),
                      payload=value, execution=execution,
                      request_id=event.request_id, txn=event.txn,
                      ingress_time=event.ingress_time)]

    def _suspend_invoke(self, event: Event, execution: ExecutionState,
                        state: StateAccess, compiled: CompiledEntity,
                        instance: Any, frame: Frame, outcome,
                        terminator: InvokeTerminator) -> list[Event]:
        self._flush_state(compiled, instance, frame, state)
        started = self._instr.clock() if self._instr else 0.0
        frame.store = outcome.store
        frame.node = terminator.continuation
        frame.result_var = terminator.result_var
        if terminator.is_self_call:
            target = EntityRef(entity=frame.entity, key=frame.key)
        else:
            target = outcome.call_target
            if not isinstance(target, EntityRef):
                raise InvocationError(
                    f"remote call receiver {terminator.receiver!r} did not "
                    f"hold an EntityRef (got {type(target).__name__})")
        args = tuple(outcome.call_args or ())
        invoke = Event(kind=EventKind.INVOKE, target=target,
                       method=terminator.method, args=args,
                       execution=execution, request_id=event.request_id,
                       txn=event.txn, ingress_time=event.ingress_time)
        if self._instr:
            self._instr.add("split_instrumentation",
                            self._instr.clock() - started)
        return [invoke]

    def _suspend_construct(self, event: Event, execution: ExecutionState,
                           state: StateAccess, compiled: CompiledEntity,
                           instance: Any, frame: Frame, outcome,
                           terminator: ConstructTerminator) -> list[Event]:
        self._flush_state(compiled, instance, frame, state)
        frame.store = outcome.store
        frame.node = terminator.continuation
        frame.result_var = terminator.result_var
        # Run the callee's __init__ locally (validated to be remote-free)
        # to derive the new entity's key, then ship its state to the
        # owning partition.
        callee = self.entity(terminator.entity_type)
        init = callee.method("__init__")
        init_frame = Frame(entity=terminator.entity_type, key=None,
                           method="__init__", node=init.entry,
                           store=init.initial_store(
                               tuple(outcome.call_args or ())))
        new_instance = callee.blank_instance()
        while True:
            init_outcome = init.execute_block(init_frame.node, new_instance,
                                              init_frame.store)
            node = init.machine.node(init_frame.node)
            if init_outcome.returned:
                break
            if isinstance(node.terminator, JumpTerminator):
                init_frame.store = init_outcome.store
                init_frame.node = node.terminator.target
                continue
            if isinstance(node.terminator, BranchTerminator):
                init_frame.store = init_outcome.store
                init_frame.node = (node.terminator.true_target
                                   if init_outcome.condition
                                   else node.terminator.false_target)
                continue
            if isinstance(node.terminator, ReturnTerminator):
                break
            raise RuntimeExecutionError(
                "constructors must not perform remote calls")
        new_state = callee.extract_state(new_instance)
        if self._check_serializable:
            check_serializable(new_state)
        key = callee.key_of_state(new_state)
        create = Event(kind=EventKind.CREATE,
                       target=EntityRef(terminator.entity_type, key),
                       payload=new_state, execution=execution,
                       request_id=event.request_id, txn=event.txn,
                       ingress_time=event.ingress_time)
        return [create]

    # ------------------------------------------------------------------
    def _error_reply(self, event: Event, exc: RuntimeExecutionError) -> Event:
        return Event(kind=EventKind.REPLY,
                     target=EntityRef("__client__", event.request_id),
                     payload=None, error=str(exc),
                     request_id=event.request_id, txn=event.txn,
                     ingress_time=event.ingress_time)


def run_constructor(compiled: CompiledEntity,
                    args: tuple) -> tuple[Any, dict[str, Any]]:
    """Execute an entity's ``__init__`` to completion locally and return
    ``(key, state)``.  Used for bulk pre-loading benchmark datasets
    without driving the full protocol for every row (constructors are
    validated to be remote-free, so this is always safe)."""
    init = compiled.method("__init__")
    instance = compiled.blank_instance()
    store = init.initial_store(args)
    node_id = init.entry
    while True:
        outcome = init.execute_block(node_id, instance, store)
        if outcome.returned:
            break
        terminator = init.machine.node(node_id).terminator
        if isinstance(terminator, JumpTerminator):
            store = outcome.store
            node_id = terminator.target
            continue
        if isinstance(terminator, BranchTerminator):
            store = outcome.store
            node_id = (terminator.true_target if outcome.condition
                       else terminator.false_target)
            continue
        if isinstance(terminator, ReturnTerminator):
            break
        raise RuntimeExecutionError(
            "constructors must not perform remote calls")
    state = compiled.extract_state(instance)
    return compiled.key_of_state(state), state
