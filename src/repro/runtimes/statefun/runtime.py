"""Simulated Apache Flink StateFun deployment (paper Section 3).

Architecture reproduced from the paper's description of its StateFun
integration and deployment (Section 4):

- a Kafka source pushes events to the ingress router (keyBy) inside the
  Flink cluster — which got *half* of the system CPUs;
- every function invocation round-trips over HTTP to a remote, stateless
  Python function runtime — the other half of the CPUs ("all functions
  need to go to an external Python runtime, the cost of reads and writes
  are the same due to the network costs");
- continuations of split functions and calls to other entities re-enter
  the dataflow **through Kafka** ("we use Kafka to re-insert an event to
  the streaming dataflow, thereby avoiding cyclic dataflows");
- Flink's network-buffer batching (buffer timeout) delays each internal
  hop: at low rates events wait out the timeout, at high rates buffers
  fill and flush early — the dominant latency term of Figure 3 and the
  reason StateFun's latency is flat across workloads and distributions;
- no locking and no transactions: concurrent events to the same key
  interleave freely (the paper notes the resulting race on split
  functions), and ``@transactional`` gives no atomicity here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ...compiler.pipeline import CompiledProgram
from ...core.errors import RuntimeExecutionError, UnsupportedFeatureError
from ...core.refs import EntityRef
from ...faults import FaultInjector, FaultPlan
from ...ir.events import Event, EventKind
from ...substrates.kafka import KafkaBroker, KafkaConfig, KafkaRecord
from ...substrates.network import Network, NetworkConfig
from ...substrates.simulation import (
    CpuPool,
    MetricRecorder,
    ScheduledEvent,
    Simulation,
)
from ..base import InvocationResult, Runtime
from ..executor import OperatorExecutor, run_constructor
from ..state import make_state_backend
from ..stateflow.runtime import default_kafka_config

INGRESS_TOPIC = "statefun-ingress"
EGRESS_TOPIC = "statefun-egress"
LOOPBACK_TOPIC = "statefun-loopback"


class BatchingChannel:
    """Flink-style network buffer: items flush when the buffer fills or
    the buffer timeout elapses since the first buffered item."""

    def __init__(self, sim: Simulation, timeout_ms: float, capacity: int,
                 on_flush: Callable[[list], None]):
        self.sim = sim
        self.timeout_ms = timeout_ms
        self.capacity = capacity
        self._on_flush = on_flush
        self._buffer: list = []
        self._timer: ScheduledEvent | None = None
        self.flushes = 0

    def push(self, item: Any) -> None:
        self._buffer.append(item)
        if len(self._buffer) >= self.capacity:
            self.flush()
        elif self._timer is None or self._timer.cancelled:
            self._timer = self.sim.schedule(self.timeout_ms, self.flush)

    def flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._buffer:
            return
        items, self._buffer = self._buffer, []
        self.flushes += 1
        self._on_flush(items)

    def __len__(self) -> int:
        return len(self._buffer)


@dataclass(slots=True)
class StatefunConfig:
    """Tunables of the simulated StateFun deployment."""

    #: "we gave half of the resources to the Flink cluster and the other
    #: to the remote functions" — of the 6 system CPUs.
    flink_cores: int = 3
    function_cores: int = 3
    router_service_ms: float = 0.04
    state_service_ms: float = 0.06
    #: Remote-function CPU per invocation (handler execution, state
    #: (de)serialisation of the shipped request).
    function_service_ms: float = 1.0
    buffer_timeout_ms: float = 25.0
    buffer_capacity: int = 64
    #: Raise on @transactional methods instead of running them without
    #: guarantees (the paper simply did not benchmark T on Statefun).
    strict_transactions: bool = False
    #: Flink-side operator state backend ("dict" or "cow") — shares the
    #: StateBackend contract with the other runtimes.
    state_backend: str = "dict"
    ingress_partitions: int = 4
    kafka: KafkaConfig = field(default_factory=default_kafka_config)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    #: Deterministic fault schedule.  StateFun has no coordinator, no
    #: recovery and no named workers, so only a plan's message-level
    #: faults apply; process events are counted as skipped.  Drops are
    #: *not* recoverable here — that asymmetry against StateFlow is the
    #: paper's fault-tolerance claim made visible.
    fault_plan: FaultPlan | None = None
    sync_wait_ms: float = 60_000.0


class StatefunRuntime(Runtime):
    """Simulated Flink StateFun deployment (see module docstring)."""

    name = "statefun"

    def __init__(self, program: CompiledProgram,
                 *, sim: Simulation | None = None,
                 config: StatefunConfig | None = None):
        super().__init__(program)
        self.config = config or StatefunConfig()
        self.sim = sim or Simulation()
        self.network = Network(self.sim, self.config.network)
        self.broker = KafkaBroker(self.sim, self.config.kafka)
        self.state = make_state_backend(self.config.state_backend)
        self.metrics = MetricRecorder()
        self.flink_cpu = CpuPool(self.sim, self.config.flink_cores,
                                 name="flink")
        self.function_cpu = CpuPool(self.sim, self.config.function_cores,
                                    name="remote-functions")
        self._executor = OperatorExecutor(program.entities,
                                          check_state_serializable=False)
        self.task_channel = BatchingChannel(
            self.sim, self.config.buffer_timeout_ms,
            self.config.buffer_capacity, self._process_batch)
        self.sink_channel = BatchingChannel(
            self.sim, self.config.buffer_timeout_ms,
            self.config.buffer_capacity, self._sink_batch)

        self.broker.create_topic(INGRESS_TOPIC,
                                 self.config.ingress_partitions)
        self.broker.create_topic(LOOPBACK_TOPIC,
                                 self.config.ingress_partitions)
        self.broker.create_topic(EGRESS_TOPIC, 1)
        self.broker.subscribe("statefun-flink", INGRESS_TOPIC,
                              self._on_source_record)
        self.broker.subscribe("statefun-flink", LOOPBACK_TOPIC)
        self.broker.subscribe("statefun-client", EGRESS_TOPIC,
                              self._on_egress_record)

        self._request_ids = iter(range(1, 1 << 62))
        self._sync_replies: dict[int, Event] = {}
        self._reply_callbacks: dict[int, Callable[[Event], None]] = {}
        self.invocations = 0
        self.reply_tap: Callable[[Event], None] | None = None
        self.faults: FaultInjector | None = None
        if self.config.fault_plan is not None:
            self.faults = FaultInjector(
                self.config.fault_plan, sim=self.sim, network=self.network,
                broker=self.broker,
                duplicable_topics=(INGRESS_TOPIC, EGRESS_TOPIC)).install()

    # -- dataflow stages ---------------------------------------------------
    def _on_source_record(self, record: KafkaRecord) -> None:
        """Ingress router: keyBy on the entity key (Figure 2)."""
        event: Event = record.value
        self.flink_cpu.submit(self.config.router_service_ms,
                              lambda: self.task_channel.push(event))

    def _process_batch(self, events: list[Event]) -> None:
        for event in events:
            self._process_event(event)

    def _process_event(self, event: Event) -> None:
        """Stateful operator task: read state, RPC to the remote function
        runtime, apply state effects, route outputs."""

        result: dict[str, list[Event]] = {}

        def with_state_read() -> None:
            def run_remote(done: Callable[[], None]) -> None:
                def execute() -> None:
                    self.invocations += 1
                    result["outbound"] = self._executor.handle(event,
                                                               self.state)
                    done()

                self.function_cpu.submit(self.config.function_service_ms,
                                         execute)

            def on_response() -> None:
                self.flink_cpu.submit(
                    self.config.state_service_ms,
                    lambda: self._route_outbound(result["outbound"]))

            self.network.rpc(run_remote, on_response)

        self.flink_cpu.submit(self.config.state_service_ms, with_state_read)

    def _route_outbound(self, events: list[Event]) -> None:
        """Egress router: replies leave to the client sink; everything
        else loops back into the dataflow through Kafka."""
        for event in events:
            if event.kind is EventKind.REPLY:
                self.sink_channel.push(event)
            else:
                self.broker.produce(
                    LOOPBACK_TOPIC,
                    key=f"{event.target.entity}|{event.target.key}",
                    value=event)

    def _sink_batch(self, replies: list[Event]) -> None:
        for reply in replies:
            self.broker.produce(EGRESS_TOPIC, key=reply.request_id,
                                value=reply)

    def _on_egress_record(self, record: KafkaRecord) -> None:
        reply: Event = record.value
        request_id = reply.request_id
        if reply.ingress_time is not None:
            self.metrics.record(self.sim.now - reply.ingress_time,
                                self.sim.now, label=reply.error or "")
        if self.reply_tap is not None:
            self.reply_tap(reply)
        callback = self._reply_callbacks.pop(request_id, None)
        if callback is not None:
            callback(reply)
        else:
            self._sync_replies[request_id] = reply

    # -- client API ------------------------------------------------------
    def _check_transactional(self, entity: str, method: str) -> None:
        descriptor = self.program.entities[entity].descriptor
        spec = descriptor.methods.get(method)
        if spec and spec.is_transactional and self.config.strict_transactions:
            raise UnsupportedFeatureError(
                f"{entity}.{method} is @transactional; Statefun offers no "
                f"support for transactions (paper Section 4)")

    def submit(self, ref: EntityRef, method: str, args: tuple,
               on_reply: Callable[[Event], None] | None = None) -> int:
        self._check_transactional(ref.entity, method)
        request_id = next(self._request_ids)
        event = Event(kind=EventKind.INVOKE, target=ref, method=method,
                      args=tuple(args), request_id=request_id,
                      ingress_time=self.sim.now)
        if on_reply is not None:
            self._reply_callbacks[request_id] = on_reply
        self.broker.produce(INGRESS_TOPIC,
                            key=f"{ref.entity}|{ref.key}", value=event)
        return request_id

    def _await_reply(self, request_id: int) -> Event:
        deadline = self.sim.now + self.config.sync_wait_ms
        arrived = self.sim.run_until(
            lambda: request_id in self._sync_replies, max_time=deadline)
        if not arrived:
            raise RuntimeExecutionError(
                f"no reply for request {request_id} within "
                f"{self.config.sync_wait_ms} ms of simulated time")
        return self._sync_replies.pop(request_id)

    def create(self, entity: str | type, *args: Any) -> EntityRef:
        name = entity if isinstance(entity, str) else entity.__name__
        request_id = self.submit(EntityRef(name, None), "__init__", args)
        reply = self._await_reply(request_id)
        return InvocationResult(value=reply.payload,
                                error=reply.error).unwrap()

    def invoke(self, ref: EntityRef, method: str, *args: Any,
               ) -> InvocationResult:
        started = self.sim.now
        request_id = self.submit(ref, method, args)
        reply = self._await_reply(request_id)
        return InvocationResult(value=reply.payload, error=reply.error,
                                latency_ms=self.sim.now - started)

    def preload(self, entity: str | type, rows: list[tuple]) -> list[EntityRef]:
        """Bulk-create entities directly in operator state (bench
        dataset loading)."""
        name = entity if isinstance(entity, str) else entity.__name__
        compiled = self.program.entities[name]
        refs = []
        for args in rows:
            key, state = run_constructor(compiled, tuple(args))
            self.state.put(name, key, state)
            refs.append(EntityRef(name, key))
        return refs

    def entity_state(self, ref: EntityRef) -> dict[str, Any] | None:
        return self.state.get(ref.entity, ref.key)
