"""Simulated Apache Flink StateFun runtime."""

from .runtime import BatchingChannel, StatefunConfig, StatefunRuntime

__all__ = ["BatchingChannel", "StatefunConfig", "StatefunRuntime"]
