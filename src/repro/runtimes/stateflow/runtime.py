"""StateFlow: the paper's transactional dataflow prototype, simulated.

Deployment (Section 4): one single-core coordinator plus workers on the
remaining system cores (default 5).  Requests enter through a replayable
Kafka source; function-to-function communication uses direct inter-worker
channels (cyclic dataflow); every function — including its remote-call
state effects — executes as an ACID transaction under the Aria-style
deterministic protocol; consistent snapshots + source replay provide
exactly-once fault tolerance.

``channel_mode="kafka"`` degrades function-to-function communication to
Kafka loop-backs (what StateFun must do) — the ABL-COMM ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ...compiler.pipeline import CompiledProgram
from ...control import AutoscaleController, AutoscalePolicy
from ...core.errors import RuntimeExecutionError
from ...core.refs import EntityRef
from ...faults import FaultInjector, FaultPlan
from ...ir.events import Event, EventKind
from ...rescale import RescalePlan
from ...substrates.kafka import KafkaBroker, KafkaConfig, KafkaRecord
from ...substrates.network import LatencyModel, Network, NetworkConfig
from ...substrates.simulation import MetricRecorder, Simulation
from ...substrates.spawner import Spawner, make_spawner
from ...views import ViewManager
from ..base import InvocationResult, Runtime
from ..executor import OperatorExecutor, run_constructor
from ..state import PartitionedStore, SlotDelta, resolve_payload
from .coordinator import Coordinator, CoordinatorConfig, CoordinatorHooks
from .worker import Worker

INGRESS_TOPIC = "stateflow-ingress"
EGRESS_TOPIC = "stateflow-egress"
LOOPBACK_TOPIC = "stateflow-loopback"


def default_kafka_config() -> KafkaConfig:
    """Kafka latency profile shared by both simulated systems."""
    return KafkaConfig(
        produce_latency=LatencyModel(median_ms=5.0, sigma=0.35),
        fetch_latency=LatencyModel(median_ms=5.0, sigma=0.35))


@dataclass(slots=True)
class StateflowConfig:
    """Tunables of the simulated StateFlow deployment."""

    workers: int = 5
    #: Execution substrate (``--spawner``): "simulator" = deterministic
    #: virtual-time in-process workers (the default — every chaos,
    #: replay and equivalence test runs here); "process" = real OS
    #: processes on the wall clock, talking batched binary frames over
    #: pipes (the substrate whose bench numbers measure hardware).  A
    #: :class:`~repro.substrates.spawner.Spawner` instance also works.
    spawner: str | Spawner = "simulator"
    #: Worker CPU per event (block execution + messaging bundling).
    exec_service_ms: float = 0.3
    #: Worker CPU per committed key write.
    state_op_ms: float = 0.05
    #: "direct" = inter-worker channels; "kafka" = loop back through the
    #: broker on every hop (ablation ABL-COMM).
    channel_mode: str = "direct"
    #: Committed-state backend per worker partition: "dict" (deep-copy
    #: snapshots) or "cow" (copy-on-write version-chained snapshots).
    state_backend: str = "dict"
    #: Hash slots of the committed store (the granularity of elastic
    #: rescaling).  Fixed for the run; must be >= the largest worker
    #: count the run will rescale to.
    state_slots: int = 64
    #: Bounded epoch pipeline (``--pipeline-depth`` on the CLI): batches
    #: in flight at once — 1 = strictly serial batches, the default (2)
    #: overlaps a batch's execution with its predecessor's commit.
    #: ``None`` keeps whatever ``coordinator.pipeline_depth`` says; a
    #: value overrides it.
    pipeline_depth: int | None = None
    #: Snapshot mode (``--snapshot-mode``): "full" = every cut carries
    #: the whole committed state; "incremental" = cuts capture only the
    #: slots dirtied since the previous cut, chained to periodic full
    #: bases, with a per-commit changelog backing recovery (see
    #: :mod:`repro.runtimes.stateflow.snapshots`).  ``None`` keeps
    #: whatever ``coordinator.snapshot_mode`` says.
    snapshot_mode: str | None = None
    #: Commit changelog toggle (``--changelog``): ``None`` keeps
    #: ``coordinator.changelog_enabled``.
    changelog: bool | None = None
    #: Durability directory (``--durable``): when set, snapshots and
    #: the changelog live in file-backed stores under this path (see
    #: :mod:`repro.storage`) and a real process death recovers from
    #: disk on the next start.  ``None`` keeps the in-memory stores.
    durability_dir: str | None = None
    check_state_serializable: bool = False
    ingress_partitions: int = 4
    egress_partitions: int = 4
    coordinator: CoordinatorConfig = field(default_factory=CoordinatorConfig)
    kafka: KafkaConfig = field(default_factory=default_kafka_config)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    #: Deterministic fault schedule (chaos testing); ``None`` = a
    #: fault-free run.  See :mod:`repro.faults`.
    fault_plan: FaultPlan | None = None
    #: Declarative elastic-rescale schedule; ``None`` = a fixed-size
    #: cluster.  See :mod:`repro.rescale`.
    rescale_plan: RescalePlan | None = None
    #: Closed-loop autoscaling (``--autoscale``): attach an
    #: :class:`~repro.control.AutoscaleController` that samples windowed
    #: load off the coordinator's commit path and issues its own
    #: ``request_rescale`` calls.  See :mod:`repro.control`.
    autoscale: bool = False
    #: Policy knobs for the controller; supplying a policy implies
    #: ``autoscale`` (``None`` = the defaults when enabled).
    autoscale_policy: "AutoscalePolicy | None" = None
    sync_wait_ms: float = 120_000.0


class StateflowRuntime(Runtime):
    """Simulated StateFlow deployment (see module docstring)."""

    name = "stateflow"

    def __init__(self, program: CompiledProgram,
                 *, sim: Simulation | None = None,
                 config: StateflowConfig | None = None):
        super().__init__(program)
        self.config = config or StateflowConfig()
        coordinator_overrides: dict[str, Any] = {}
        if self.config.pipeline_depth is not None:
            coordinator_overrides["pipeline_depth"] = max(
                1, self.config.pipeline_depth)
        if self.config.snapshot_mode is not None:
            coordinator_overrides["snapshot_mode"] = self.config.snapshot_mode
        if self.config.changelog is not None:
            coordinator_overrides["changelog_enabled"] = self.config.changelog
        if self.config.durability_dir is not None:
            coordinator_overrides["durability_dir"] = \
                self.config.durability_dir
        if coordinator_overrides:
            # Fresh config objects, not in-place writes: the caller may
            # share a StateflowConfig or CoordinatorConfig across
            # runtimes.
            self.config = replace(
                self.config,
                coordinator=replace(self.config.coordinator,
                                    **coordinator_overrides))
        self.spawner = make_spawner(self.config.spawner)
        if self.config.fault_plan is not None and self.spawner.wallclock:
            raise RuntimeExecutionError(
                "fault plans drive simulator internals (virtual-time "
                "schedules, message hooks) and are not supported on the "
                "process spawner; crash real workers directly via "
                "fail_worker() instead")
        self.sim = sim or self.spawner.make_kernel()
        self.network = Network(self.sim, self.config.network)
        self.broker = KafkaBroker(self.sim, self.config.kafka)
        #: Committed state sharded into hash slots dealt round-robin over
        #: the workers; routing (slot -> owner) and worker placement use
        #: the same table, so a worker always executes the keys whose
        #: slots it owns.  Rescaling rebalances the table and migrates
        #: the moved slots.
        self.committed = PartitionedStore(
            self.config.workers, backend=self.config.state_backend,
            slots=max(self.config.state_slots, self.config.workers))
        self.metrics = MetricRecorder()
        self._executor = OperatorExecutor(
            program.entities,
            check_state_serializable=self.config.check_state_serializable)
        #: Every worker ever created (index-stable); retired workers stay
        #: in place, dead, until a later rescale revives them.
        self.workers = [self._make_worker(index)
                        for index in range(self.config.workers)]
        hooks = CoordinatorHooks(
            dispatch=self._dispatch_to_worker,
            apply_writes=self._apply_writes,
            emit_reply=self._emit_reply,
            worker_of=self.worker_of,
            source_positions=lambda: self.broker.positions("stateflow-coord"),
            source_seek=self._seek_source,
            restore_workers=self._restore_workers,
            is_single_key=self._is_single_key,
            execute_single_key=self._execute_single_key,
            set_worker_count=self._set_worker_count,
            migrate_slot=self._migrate_slot)
        #: The closed-loop capacity controller, when enabled (a supplied
        #: policy implies enablement).  One controller per runtime: its
        #: windowed sampler state and decision log live outside the
        #: coordinator, so they survive coordinator crash/failover and
        #: the re-armed control tick resumes with its streak history.
        self.autoscaler: AutoscaleController | None = None
        if self.config.autoscale or self.config.autoscale_policy is not None:
            self.autoscaler = AutoscaleController(
                self.config.autoscale_policy)
        self.coordinator = Coordinator(self.sim, self.committed, hooks,
                                       self.config.coordinator,
                                       autoscaler=self.autoscaler)
        #: Incremental materialized views (see :mod:`repro.views`):
        #: maintained off the commit path from each closed batch's write
        #: footprint; registered through
        #: :meth:`~repro.query.engine.QueryEngine.register_view`.  Push
        #: subscriptions fan view updates out over the network substrate
        #: — one send per subscriber, never blocking the Aria commit —
        #: so they work identically on the simulator and the
        #: wallclock/process substrates.
        self.views = ViewManager(
            self.committed, clock=lambda: self.sim.now,
            head=lambda: self.coordinator._last_closed)
        self.views.transport = lambda deliver: self.network.send(
            deliver, src="coordinator", dst="view-subscribers")
        self.coordinator.views = self.views
        if self.config.rescale_plan is not None:
            for step in self.config.rescale_plan.validate().steps:
                self.sim.schedule_at(
                    max(step.at_ms, self.sim.now),
                    lambda workers=step.workers:
                    self.coordinator.request_rescale(workers))

        self.broker.create_topic(INGRESS_TOPIC,
                                 self.config.ingress_partitions)
        self.broker.create_topic(EGRESS_TOPIC, self.config.egress_partitions)
        if self.config.channel_mode == "kafka":
            self.broker.create_topic(LOOPBACK_TOPIC,
                                     self.config.ingress_partitions)
            self.broker.subscribe("stateflow-workers", LOOPBACK_TOPIC,
                                  self._on_loopback_record)
        self.broker.subscribe("stateflow-coord", INGRESS_TOPIC,
                              self._on_ingress_record)
        self.broker.subscribe("stateflow-client", EGRESS_TOPIC,
                              self._on_egress_record)

        self._request_ids = iter(range(1, 1 << 62))
        self._sync_replies: dict[int, Event] = {}
        self._delivered: set[int] = set()
        self.duplicate_client_replies = 0
        self._reply_callbacks: dict[int, Callable[[Event], None]] = {}
        self._started = False
        #: Slot-migration shipping ledger: how many slots travelled as
        #: base+delta fragments vs full copies, and the delta volume.
        self.migration_delta_slots = 0
        self.migration_full_slots = 0
        self.migration_delta_keys = 0
        #: Observer called with every deduplicated client reply (chaos
        #: harness trace capture); ``None`` = no tap.
        self.reply_tap: Callable[[Event], None] | None = None
        self.faults: FaultInjector | None = None
        if self.config.fault_plan is not None:
            self.faults = FaultInjector(
                self.config.fault_plan, sim=self.sim, network=self.network,
                broker=self.broker, workers=self.workers,
                coordinator=self.coordinator,
                rescaler=self.request_rescale,
                duplicable_topics=(INGRESS_TOPIC, EGRESS_TOPIC)).install()

    def _make_worker(self, index: int) -> Worker:
        return self.spawner.make_worker(self, index)

    # -- partitioning ------------------------------------------------------
    def worker_of(self, entity: str, key: Any) -> int:
        """Worker placement == slot ownership (one shared routing
        table, see :class:`~repro.runtimes.state.SlotAssignment`)."""
        return self.committed.partition_of(entity, key)

    @property
    def worker_count(self) -> int:
        """Active workers under the current routing table."""
        return self.committed.assignment.workers

    # -- elasticity --------------------------------------------------------
    def request_rescale(self, workers: int) -> None:
        """Ask the coordinator to rescale to *workers* at the next batch
        boundary (the programmatic face of ``rescale_plan``)."""
        self.coordinator.request_rescale(workers)

    def _set_worker_count(self, count: int) -> None:
        """Size the active worker set: create or revive workers below
        *count*, retire the rest.  Worker objects are never removed —
        indices stay stable so routing tables and fault plans can name
        them across rescales."""
        while len(self.workers) < count:
            self.workers.append(self._make_worker(len(self.workers)))
        for index, worker in enumerate(self.workers):
            if index < count:
                worker.revive()
            elif not worker.retired:
                worker.retire()

    def _migrate_slot(self, slot: int, src: int, dst: int,
                      on_done: Callable[[], None],
                      *, allow_delta: bool = True) -> None:
        """Ship one slot over the network: coordinator asks the old
        owner to capture, the fragment travels worker-to-worker on the
        direct channels, the new owner installs and acks.  Every hop is
        subject to fault injection; incarnation tokens fence deliveries
        that outlive a recovery.

        Under ``snapshot_mode="incremental"`` the source captures only
        the slot's writes since the last durable cut (a ``SlotDelta``)
        and the destination composes them with the slot's base resolved
        from the snapshot store — only the delta crosses the
        worker-to-worker channel.  Composition is idempotent (absolute
        states), so a cut landing mid-flight is harmless; if the chain
        became unresolvable mid-flight (a torn cut), the migration
        restarts as a full-fragment ship."""
        src_worker, dst_worker = self.workers[src], self.workers[dst]
        src_token = src_worker.incarnation
        dst_token = dst_worker.incarnation
        incremental = (allow_delta
                       and self.config.coordinator.snapshot_mode
                       == "incremental"
                       and self.coordinator.snapshots.resolve_slot(slot)
                       is not None)
        mode = "delta" if incremental else "full"

        def ship(fragment: Any) -> None:
            def install() -> None:
                payload = fragment
                if isinstance(payload, SlotDelta):
                    # Destination side: fetch the slot's base from the
                    # durable snapshot store and replay the shipped
                    # delta over it.
                    base = self.coordinator.snapshots.resolve_slot(slot)
                    if base is None:
                        self._migrate_slot(slot, src, dst, on_done,
                                           allow_delta=False)
                        return
                    self.migration_delta_slots += 1
                    self.migration_delta_keys += payload.delta.key_count()
                    payload = resolve_payload(base, [payload.delta])
                else:
                    self.migration_full_slots += 1
                dst_worker.install_slot(
                    slot, payload,
                    lambda: self.network.send(
                        on_done, src=f"worker-{dst}", dst="coordinator"),
                    incarnation=dst_token)

            self.network.send(install,
                              src=f"worker-{src}", dst=f"worker-{dst}")

        self.network.send(
            lambda: src_worker.capture_slot(slot, ship,
                                            incarnation=src_token,
                                            mode=mode),
            src="coordinator", dst=f"worker-{src}")

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Start the coordinator (call after any bulk pre-loading so the
        initial snapshot covers the loaded data)."""
        if not self._started:
            self._started = True
            self.spawner.on_start(self)
            self.coordinator.start()

    def preload(self, entity: str | type, rows: list[tuple]) -> list[EntityRef]:
        """Bulk-create entities directly in the committed store (bench
        dataset loading).  Must be called before :meth:`start`."""
        if self._started:
            raise RuntimeExecutionError(
                "preload() must run before the coordinator starts so the "
                "initial snapshot covers the data")
        name = entity if isinstance(entity, str) else entity.__name__
        compiled = self.program.entities[name]
        refs = []
        for args in rows:
            key, state = run_constructor(compiled, tuple(args))
            self.committed.put(name, key, state)
            refs.append(EntityRef(name, key))
        return refs

    # -- message routing ---------------------------------------------------
    def _dispatch_to_worker(self, event: Event,
                            src: str = "coordinator") -> None:
        index = self.worker_of(event.target.entity, event.target.key)
        worker = self.workers[index]
        self.network.send(lambda: worker.deliver(event),
                          src=src, dst=f"worker-{index}")

    def _on_worker_out(self, event: Event, sender: int) -> None:
        src = f"worker-{sender}"
        if event.kind is EventKind.REPLY:
            self.network.send(lambda: self.coordinator.on_txn_report(event),
                              src=src, dst="coordinator")
            return
        if self.config.channel_mode == "kafka":
            self.broker.produce(LOOPBACK_TOPIC,
                                key=f"{event.target.entity}|{event.target.key}",
                                value=event)
            return
        self._dispatch_to_worker(event, src=src)

    def _on_loopback_record(self, record: KafkaRecord) -> None:
        self._dispatch_to_worker(record.value, src="kafka-loopback")

    def _is_single_key(self, entity: str, method: str) -> bool:
        """Single-key = unsplit state machine and not a constructor: the
        invocation touches only its target key's partition."""
        if method == "__init__":
            return False
        compiled = self.program.entities.get(entity)
        if compiled is None or method not in compiled.methods:
            return False
        return not compiled.methods[method].machine.is_split

    def _execute_single_key(self, worker_index: int, events: list,
                            on_done: Callable[[list], None]) -> None:
        worker = self.workers[worker_index]
        name = f"worker-{worker_index}"
        incarnation = worker.incarnation
        self.network.send(lambda: worker.execute_single_key(
            events, lambda replies: self.network.send(
                lambda: on_done(replies), src=name, dst="coordinator"),
            incarnation=incarnation),
            src="coordinator", dst=name)

    def _apply_writes(self, worker_index: int, writes: dict,
                      on_done: Callable[[], None]) -> None:
        worker = self.workers[worker_index]
        name = f"worker-{worker_index}"
        incarnation = worker.incarnation
        self.network.send(lambda: worker.apply_writes(
            writes, lambda: self.network.send(
                on_done, src=name, dst="coordinator"),
            incarnation=incarnation),
            src="coordinator", dst=name)

    def _restore_workers(self) -> None:
        for worker in self.workers:
            worker.restart()

    def _seek_source(self, offsets: dict) -> None:
        self.broker.pause("stateflow-coord")
        for (topic, partition), offset in offsets.items():
            self.broker.seek("stateflow-coord", topic, partition, offset)
        self.broker.resume("stateflow-coord")

    # -- ingress / egress ---------------------------------------------------
    def _is_transactional(self, entity: str, method: str | None) -> bool:
        descriptor = self.program.entities[entity].descriptor
        spec = descriptor.methods.get(method or "")
        return bool(spec and spec.is_transactional)

    def _on_ingress_record(self, record: KafkaRecord) -> None:
        event: Event = record.value
        self.coordinator.on_request(
            event, is_transactional_method=self._is_transactional(
                event.target.entity, event.method))

    def _emit_reply(self, reply: Event) -> None:
        self.broker.produce(EGRESS_TOPIC, key=reply.request_id, value=reply)

    def _on_egress_record(self, record: KafkaRecord) -> None:
        reply: Event = record.value
        request_id = reply.request_id
        if request_id in self._delivered:
            self.duplicate_client_replies += 1
            return
        self._delivered.add(request_id)
        if reply.ingress_time is not None:
            self.metrics.record(self.sim.now - reply.ingress_time,
                                self.sim.now, label=reply.error or "")
        if self.reply_tap is not None:
            self.reply_tap(reply)
        callback = self._reply_callbacks.pop(request_id, None)
        if callback is not None:
            callback(reply)
        else:
            self._sync_replies[request_id] = reply

    # -- client API ------------------------------------------------------
    def submit(self, ref: EntityRef, method: str, args: tuple,
               on_reply: Callable[[Event], None] | None = None) -> int:
        """Asynchronous client request (bench driver entry point)."""
        self.start()
        request_id = next(self._request_ids)
        event = Event(kind=EventKind.INVOKE, target=ref, method=method,
                      args=tuple(args), request_id=request_id,
                      ingress_time=self.sim.now)
        if on_reply is not None:
            self._reply_callbacks[request_id] = on_reply
        self.broker.produce(INGRESS_TOPIC,
                            key=f"{ref.entity}|{ref.key}", value=event)
        return request_id

    def _await_reply(self, request_id: int) -> Event:
        deadline = self.sim.now + self.config.sync_wait_ms
        arrived = self.sim.run_until(
            lambda: request_id in self._sync_replies, max_time=deadline)
        if not arrived:
            raise RuntimeExecutionError(
                f"no reply for request {request_id} within "
                f"{self.config.sync_wait_ms} ms of simulated time")
        return self._sync_replies.pop(request_id)

    def create(self, entity: str | type, *args: Any) -> EntityRef:
        name = entity if isinstance(entity, str) else entity.__name__
        request_id = self.submit(EntityRef(name, None), "__init__", args)
        reply = self._await_reply(request_id)
        result = InvocationResult(value=reply.payload, error=reply.error)
        return result.unwrap()

    def invoke(self, ref: EntityRef, method: str, *args: Any,
               ) -> InvocationResult:
        started = self.sim.now
        request_id = self.submit(ref, method, args)
        reply = self._await_reply(request_id)
        return InvocationResult(value=reply.payload, error=reply.error,
                                latency_ms=self.sim.now - started)

    def entity_state(self, ref: EntityRef) -> dict[str, Any] | None:
        return self.committed.get(ref.entity, ref.key)

    # -- failure injection ---------------------------------------------------
    def fail_worker(self, index: int, at_ms: float | None = None) -> None:
        """Kill a worker (state lost, events dropped) at simulated time
        *at_ms* (now if omitted).  Recovery restores it from the last
        snapshot automatically."""
        worker = self.workers[index]
        if at_ms is None:
            worker.kill()
        else:
            self.sim.schedule_at(at_ms, worker.kill)

    def fail_coordinator(self, at_ms: float | None = None,
                         *, failover_after_ms: float = 50.0) -> None:
        """Fail-stop the coordinator at *at_ms* (now if omitted); a
        standby takes over ``failover_after_ms`` later and recovers from
        the latest snapshot."""

        def crash() -> None:
            self.coordinator.crash()
            self.sim.schedule(failover_after_ms, self.coordinator.failover)

        if at_ms is None:
            crash()
        else:
            self.sim.schedule_at(at_ms, crash)

    def close(self) -> None:
        self.coordinator.stop()
        self.spawner.on_close(self)
