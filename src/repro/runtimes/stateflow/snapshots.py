"""Consistent snapshots and recovery bookkeeping (paper Section 3).

"For fault-tolerance StateFlow implements the consistent snapshots
protocol [13, 15] ... alongside a replayable source as an ingress,
allowing StateFlow to rollback messages and restore the snapshot upon
failure."

StateFlow's deterministic batches give natural epoch boundaries: between
two batches no transaction is in flight, so a cut taken there is globally
consistent (the alignment that Chandy–Lamport markers establish in a
general dataflow).  A snapshot therefore captures, atomically at a batch
boundary:

- every worker's committed operator state,
- the replayable source's (Kafka) consumer offsets,
- the coordinator's queue of admitted-but-uncommitted requests (they
  were already consumed from the source, so offset rewind alone would
  lose them — they are the "channel state" of the classic protocol).
  Under pipelined epochs this includes the transactions of
  still-*executing* batches: their effects are uncommitted at the cut,
  so they fold back into pending and replay re-forms them — a snapshot
  never contains a half-committed batch,
- the set of request ids already answered (egress dedup),
- protocol counters (batch sequence, transaction arrival sequence).

Recovery restores the latest complete snapshot and seeks the source back
to its offsets; replayed requests re-execute and the egress dedup set
suppresses duplicate replies — exactly-once end to end.

The operator-state payload is whatever the committed store's backend
produced: a deep-copied dict for the ``dict`` backend, a shared chain of
frozen layers for the ``cow`` backend, or — with the partitioned store —
a :class:`~repro.runtimes.state.PartitionedSnapshot` of per-slot
fragments (one incremental payload per hash slot).  ``restore`` is
symmetric: the store fans fragments back out to their slots.  Keying
fragments by slot rather than by worker makes snapshots independent of
the cluster size, so recovery composes with elastic rescaling; the
frozen :class:`~repro.runtimes.state.SlotAssignment` rides along in the
snapshot so replay routes exactly as the original execution did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class Snapshot:
    """One complete, consistent snapshot."""

    snapshot_id: int
    taken_at_ms: float
    #: Backend-produced operator-state payload: a plain
    #: {(entity, key): state} dict, a CowSnapshot layer chain, or a
    #: PartitionedSnapshot of per-partition fragments (see module doc).
    state: Any
    #: Kafka positions of the ingress consumer group:
    #: {(topic, partition): offset}.
    source_offsets: dict[tuple[str, int], int]
    #: Request ids whose replies were emitted before this snapshot.
    replied: set[int]
    #: Monotonic counters to restore protocol determinism.
    batch_seq: int
    arrival_seq: int
    #: Requests consumed from the source but not yet committed at the
    #: snapshot boundary (restored into the coordinator's queue).
    pending: list[Any] = field(default_factory=list)
    #: Request ids ever admitted from the source (ingress dedup: an
    #: at-least-once producer can append the same request twice; replayed
    #: requests after recovery must re-admit, so the set is snapshotted
    #: with everything else).
    admitted: set[int] = field(default_factory=set)
    #: Frozen slot assignment ``(workers, owners)`` at the cut — part of
    #: the consistent state because a recovery that lands after an
    #: elastic rescale must replay under the snapshot's routing table,
    #: not whatever table is current.  ``None`` when the committed store
    #: is not partitioned.
    assignment: Any = None


class SnapshotStore:
    """Durable (simulated) home of completed snapshots."""

    def __init__(self, *, keep: int = 4):
        self._snapshots: list[Snapshot] = []
        self._keep = keep
        self._next_id = 0

    def take(self, *, taken_at_ms: float, state: Any,
             source_offsets: dict, replied: set[int],
             batch_seq: int, arrival_seq: int,
             pending: list[Any] | None = None,
             admitted: set[int] | None = None,
             assignment: Any = None) -> Snapshot:
        snapshot = Snapshot(
            snapshot_id=self._next_id, taken_at_ms=taken_at_ms,
            state=state, source_offsets=dict(source_offsets),
            replied=set(replied), batch_seq=batch_seq,
            arrival_seq=arrival_seq, pending=list(pending or []),
            admitted=set(admitted or ()), assignment=assignment)
        self._next_id += 1
        self._snapshots.append(snapshot)
        if len(self._snapshots) > self._keep:
            self._snapshots.pop(0)
        return snapshot

    def latest(self) -> Snapshot | None:
        return self._snapshots[-1] if self._snapshots else None

    def __len__(self) -> int:
        return len(self._snapshots)
