"""Consistent snapshots and recovery bookkeeping (paper Section 3).

"For fault-tolerance StateFlow implements the consistent snapshots
protocol [13, 15] ... alongside a replayable source as an ingress,
allowing StateFlow to rollback messages and restore the snapshot upon
failure."

StateFlow's deterministic batches give natural epoch boundaries: between
two batches no transaction is in flight, so a cut taken there is globally
consistent (the alignment that Chandy–Lamport markers establish in a
general dataflow).  A snapshot therefore captures, atomically at a batch
boundary:

- every worker's committed operator state,
- the replayable source's (Kafka) consumer offsets,
- the coordinator's queue of admitted-but-uncommitted requests (they
  were already consumed from the source, so offset rewind alone would
  lose them — they are the "channel state" of the classic protocol).
  Under pipelined epochs this includes the transactions of
  still-*executing* batches: their effects are uncommitted at the cut,
  so they fold back into pending and replay re-forms them — a snapshot
  never contains a half-committed batch,
- the set of request ids already answered (egress dedup),
- protocol counters (batch sequence, transaction arrival sequence).

Recovery restores the latest complete snapshot and seeks the source back
to its offsets; replayed requests re-execute and the egress dedup set
suppresses duplicate replies — exactly-once end to end.

The operator-state payload is whatever the committed store's backend
produced: a deep-copied dict for the ``dict`` backend, a shared chain of
frozen layers for the ``cow`` backend, or — with the partitioned store —
a :class:`~repro.runtimes.state.PartitionedSnapshot` of per-slot
fragments (one incremental payload per hash slot).  ``restore`` is
symmetric: the store fans fragments back out to their slots.  Keying
fragments by slot rather than by worker makes snapshots independent of
the cluster size, so recovery composes with elastic rescaling; the
frozen :class:`~repro.runtimes.state.SlotAssignment` rides along in the
snapshot so replay routes exactly as the original execution did.

Incremental snapshots & the commit changelog
--------------------------------------------

With ``mode="incremental"`` the store no longer expects every cut to
carry the whole committed state.  Cuts alternate between

- **base** cuts (``kind="base"``): a full payload, taken for the first
  cut and then every ``base_every`` cuts — the bounded-depth compaction
  that keeps recovery from replaying unbounded delta chains; and
- **delta** cuts (``kind="delta"``): only the slots dirtied since the
  previous cut (the backend's ``capture_delta``), chained to their
  predecessor through ``parent_id``.

Recovery resolves a cut by walking its chain back to the base and
replaying the deltas forward (:func:`~repro.runtimes.state
.resolve_payload`).  A second durable structure backs this up: the
:class:`ChangelogStore`, an append-only log of every committed batch's
write footprint (key → post-commit state).  When a delta fragment was
torn in flight (the ``torn_snapshot`` chaos event), the chain cannot
resolve — the recovery path then *repairs* the cut by resolving the
nearest intact ancestor and replaying the changelog suffix between the
two cuts' log positions, and only if that suffix is incomplete too does
it fall back to the last complete chain (an older cut, replayed from
the source as usual).  Changelog replay is idempotent: records carry
absolute post-states, so duplicated delivery cannot diverge.

Pruning is chain-aware: a base (or intermediate delta) that still
anchors a retained cut's resolution chain is never pruned, even when it
falls outside the ``keep`` window — pruning it would turn every
dependent delta cut into garbage.  :meth:`SnapshotStore.prune` refuses
explicitly; the automatic window trim simply stops at the anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..state import (apply_flat_writes, duplicate_delta, payload_footprint,
                     resolve_payload)


class SnapshotChainError(RuntimeError):
    """A cut's delta chain cannot be resolved (torn or pruned link)."""


class SnapshotPruneError(RuntimeError):
    """Refused: the snapshot still anchors a live delta chain."""


@dataclass(slots=True)
class Snapshot:
    """One complete, consistent snapshot."""

    snapshot_id: int
    taken_at_ms: float
    #: Backend-produced operator-state payload: a plain
    #: {(entity, key): state} dict, a CowSnapshot layer chain, or a
    #: PartitionedSnapshot of per-partition fragments (see module doc).
    state: Any
    #: Kafka positions of the ingress consumer group:
    #: {(topic, partition): offset}.
    source_offsets: dict[tuple[str, int], int]
    #: Request ids whose replies were emitted before this snapshot.
    replied: set[int]
    #: Monotonic counters to restore protocol determinism.
    batch_seq: int
    arrival_seq: int
    #: Requests consumed from the source but not yet committed at the
    #: snapshot boundary (restored into the coordinator's queue).
    pending: list[Any] = field(default_factory=list)
    #: Committed transactional replies still buffered for the next
    #: epoch flush at the cut.  They are channel state exactly like
    #: ``pending``: their requests are already admitted (so replay drops
    #: them at the ingress) and their effects are in ``state``, so a
    #: crash that loses the buffer would lose the replies forever —
    #: the recovery-equivalence battery caught precisely that.
    epoch_buffer: list[Any] = field(default_factory=list)
    #: Request ids ever admitted from the source (ingress dedup: an
    #: at-least-once producer can append the same request twice; replayed
    #: requests after recovery must re-admit, so the set is snapshotted
    #: with everything else).
    admitted: set[int] = field(default_factory=set)
    #: Frozen slot assignment ``(workers, owners)`` at the cut — part of
    #: the consistent state because a recovery that lands after an
    #: elastic rescale must replay under the snapshot's routing table,
    #: not whatever table is current.  ``None`` when the committed store
    #: is not partitioned.
    assignment: Any = None
    #: ``"full"`` (classic whole-state cut), ``"base"`` (full cut that
    #: anchors an incremental chain) or ``"delta"`` (dirtied slots only,
    #: chained to ``parent_id``).
    kind: str = "full"
    #: The cut this delta chains from (its immediate predecessor);
    #: ``None`` for full/base cuts.
    parent_id: int | None = None
    #: Position of the commit changelog at the cut (seq of the last
    #: record the cut's state includes; -1 = none).
    changelog_seq: int = -1
    #: Fault injection: the cut's delta fragment was dropped in flight —
    #: the payload is unusable and resolution must repair or fall back.
    torn: bool = False
    #: Durable-view sidecar: the versioned export of every registered
    #: view plan's operator state at the cut (see
    #: :meth:`~repro.views.manager.ViewManager.export_sidecar`), so
    #: recovery and cold starts resume views incrementally instead of
    #: rescanning state.  ``None`` when no views were registered.
    #: Cut files written before format v2 lack this slot entirely —
    #: readers go through ``getattr(snapshot, "views_state", None)``.
    views_state: Any = None


@dataclass(slots=True)
class CutRecord:
    """Bench-facing ledger entry: what one cut actually captured."""

    snapshot_id: int
    kind: str
    keys: int
    bytes: int
    taken_at_ms: float


@dataclass(slots=True)
class ChangelogRecord:
    """One committed batch's write footprint: key → post-commit state.
    Absolute states make replay idempotent under duplicate delivery."""

    seq: int
    batch_id: int
    writes: dict[tuple[str, Any], dict[str, Any]]
    #: Simulated time the batch closed — the timestamp axis of as-of
    #: (time-travel) queries.  Batch ids and append times are both
    #: monotone in ``seq``.
    at_ms: float = 0.0


class ChangelogStore:
    """Durable (simulated) append-only log of per-batch commit deltas.

    The coordinator appends one record per committed batch (incremental
    mode); recovery replays a suffix of it to repair cuts whose delta
    fragments were torn in flight.  ``rewind_to`` drops the suffix a
    recovery rolled back (those records describe a timeline replay is
    about to re-create under new batch ids); ``truncate_through``
    compacts the prefix no retained cut can ever need again."""

    def __init__(self):
        self._records: list[ChangelogRecord] = []
        self._by_batch: set[int] = set()
        self._next_seq = 0
        self.appended = 0
        self.duplicate_appends = 0
        self.truncated = 0
        self.bytes_appended = 0
        #: Records (and their bytes) dropped by :meth:`rewind_to` — the
        #: rolled-back timeline.  Net surviving volume is
        #: ``appended - rewound`` / ``bytes_appended - bytes_rewound``;
        #: the recovery bench reports the net so a run with fail-overs
        #: does not overstate what the log actually retains.
        self.rewound = 0
        self.bytes_rewound = 0

    @property
    def head_seq(self) -> int:
        """Seq of the newest record (-1 when the log is empty/rewound)."""
        return self._next_seq - 1

    def __len__(self) -> int:
        return len(self._records)

    @staticmethod
    def _record_bytes(record: ChangelogRecord) -> int:
        return sum(len(repr(key)) + len(repr(state))
                   for key, state in record.writes.items())

    def append(self, batch_id: int,
               writes: dict[tuple[str, Any], dict[str, Any]], *,
               at_ms: float = 0.0) -> int:
        """Append one batch's commit delta; duplicate appends of the
        same batch (a redelivered close) are dropped, not re-sequenced."""
        if batch_id in self._by_batch:
            self.duplicate_appends += 1
            return self.head_seq
        record = ChangelogRecord(seq=self._next_seq, batch_id=batch_id,
                                 writes=dict(writes), at_ms=at_ms)
        self._next_seq += 1
        self._records.append(record)
        self._by_batch.add(batch_id)
        self.appended += 1
        self.bytes_appended += self._record_bytes(record)
        return record.seq

    def records_between(self, after_seq: int,
                        up_to_seq: int) -> list[ChangelogRecord] | None:
        """The contiguous suffix ``(after_seq, up_to_seq]`` — ``None``
        when any record in the span is missing (truncated or never
        appended), in which case repair must fall back."""
        span = [record for record in self._records
                if after_seq < record.seq <= up_to_seq]
        if len(span) != max(up_to_seq - after_seq, 0):
            return None
        return span

    def rewind_to(self, seq: int) -> None:
        """Recovery rolled the run back to a cut at position *seq*:
        drop the now-orphaned suffix and resume sequencing from there.
        The dropped records move from the ``appended`` side of the
        ledger to ``rewound``/``bytes_rewound`` — they were written, but
        they no longer exist on the surviving timeline."""
        if seq >= self.head_seq:
            return
        kept, dropped = [], []
        for record in self._records:
            (kept if record.seq <= seq else dropped).append(record)
        self._records = kept
        self._by_batch = {record.batch_id for record in kept}
        self._next_seq = seq + 1
        self.rewound += len(dropped)
        self.bytes_rewound += sum(self._record_bytes(record)
                                  for record in dropped)

    def suffix_as_of(self, after_seq: int, *, batch: int | None = None,
                     at_ms: float | None = None
                     ) -> list[ChangelogRecord] | None:
        """The contiguous run of records after *after_seq* up to an
        as-of boundary — ``batch_id <= batch`` or append time
        ``<= at_ms`` (batch ids and times are both monotone in seq, so
        the boundary is a prefix).  ``None`` when the span has a gap
        (rewound or truncated records): the caller must anchor on an
        older cut or give up."""
        span: list[ChangelogRecord] = []
        for record in self._records:
            if record.seq <= after_seq:
                continue
            if batch is not None and record.batch_id > batch:
                break
            if at_ms is not None and record.at_ms > at_ms:
                break
            span.append(record)
        if span and span[-1].seq - after_seq != len(span):
            return None
        return span

    def truncate_through(self, seq: int) -> None:
        """Compaction: drop records no retained cut can need (their seq
        is at or below every retained cut's floor position)."""
        before = len(self._records)
        self._records = [record for record in self._records
                         if record.seq > seq]
        self.truncated += before - len(self._records)


class SnapshotStore:
    """Durable (simulated) home of completed snapshots.

    ``mode="full"`` is the classic behaviour: every cut carries the
    whole state.  ``mode="incremental"`` alternates base and delta cuts
    (see the module docstring); :meth:`next_kind` tells the coordinator
    what to capture, :meth:`resolve` replays a chain, and
    :meth:`latest_recoverable` picks the newest cut that can actually be
    restored (repairing torn chains through the changelog when one is
    supplied)."""

    def __init__(self, *, keep: int = 4, mode: str = "full",
                 base_every: int = 4,
                 track_footprints: bool | None = None):
        if mode not in ("full", "incremental"):
            raise ValueError(f"unknown snapshot mode {mode!r}")
        self._snapshots: list[Snapshot] = []
        self._keep = keep
        self._next_id = 0
        self.mode = mode
        self.base_every = max(base_every, 1)
        self._cuts_since_base = 0
        #: Measure each cut's (keys, bytes) into the ledger.  Costs
        #: O(payload) repr work per cut, so full-mode runs skip it by
        #: default (their ledger rows would all read "everything"
        #: anyway); the recovery bench turns it on explicitly for both
        #: sides of its sweep.
        self.track_footprints = (mode == "incremental"
                                 if track_footprints is None
                                 else track_footprints)
        #: Fault injection: the next delta cut's payload is torn
        #: ("drop") or duplicated in flight ("duplicate").
        self._torn_armed: str | None = None
        #: Ledger of what each cut captured (bench metrics); survives
        #: pruning like any other durable metadata.
        self.cut_log: list[CutRecord] = []
        self.snapshots_torn = 0
        self.changelog_repairs = 0
        self.chain_fallbacks = 0

    # -- cut planning ---------------------------------------------------
    def next_kind(self) -> str:
        """What the next cut must capture: ``full`` outside incremental
        mode; a ``base`` for the first cut and then every
        ``base_every`` cuts (bounded chain depth); ``delta`` otherwise."""
        if self.mode != "incremental":
            return "full"
        if not self._snapshots or self._cuts_since_base >= self.base_every:
            return "base"
        return "delta"

    def reset_chain(self) -> None:
        """Force the next cut to re-anchor as a base.  Recovery calls
        this: the restored backends' delta tracking is invalidated
        anyway, and chaining a post-restore cut to a possibly-torn
        pre-crash parent would leave every later delta cut unresolvable
        until the natural next base — each further crash would keep
        rewinding to the old pre-torn cut."""
        self._cuts_since_base = self.base_every

    def arm_torn(self, variant: str = "drop") -> None:
        """Chaos hook: tear (or duplicate) the next delta cut's payload
        in flight.  Base/full cuts are never torn — the fault models a
        lost *delta fragment*, the new failure surface this mode adds."""
        if variant not in ("drop", "duplicate"):
            raise ValueError(f"unknown torn variant {variant!r}")
        self._torn_armed = variant

    def take(self, *, taken_at_ms: float, state: Any,
             source_offsets: dict, replied: set[int],
             batch_seq: int, arrival_seq: int,
             pending: list[Any] | None = None,
             admitted: set[int] | None = None,
             assignment: Any = None, kind: str = "full",
             changelog_seq: int = -1,
             epoch_buffer: list[Any] | None = None,
             views_state: Any = None) -> Snapshot:
        parent_id = (self._snapshots[-1].snapshot_id
                     if kind == "delta" and self._snapshots else None)
        torn = False
        if kind == "delta" and self._torn_armed is not None:
            variant, self._torn_armed = self._torn_armed, None
            self.snapshots_torn += 1
            if variant == "drop":
                state, torn = None, True
            else:
                state = duplicate_delta(state)
        snapshot = Snapshot(
            snapshot_id=self._next_id, taken_at_ms=taken_at_ms,
            state=state, source_offsets=dict(source_offsets),
            replied=set(replied), batch_seq=batch_seq,
            arrival_seq=arrival_seq, pending=list(pending or []),
            admitted=set(admitted or ()), assignment=assignment,
            kind=kind, parent_id=parent_id, changelog_seq=changelog_seq,
            torn=torn, epoch_buffer=list(epoch_buffer or []),
            views_state=views_state)
        self._next_id += 1
        self._snapshots.append(snapshot)
        self._cuts_since_base = (self._cuts_since_base + 1
                                 if kind == "delta" else 1)
        keys, size = (payload_footprint(state)
                      if self.track_footprints else (0, 0))
        self.cut_log.append(CutRecord(
            snapshot_id=snapshot.snapshot_id, kind=kind, keys=keys,
            bytes=size, taken_at_ms=taken_at_ms))
        self._auto_prune()
        return snapshot

    # -- pruning --------------------------------------------------------
    def _dependents(self, snapshot_id: int) -> list[int]:
        """Retained cuts whose resolution chain passes through
        *snapshot_id* (the anchors that forbid pruning it)."""
        by_id = {s.snapshot_id: s for s in self._snapshots}
        dependents = []
        for snapshot in self._snapshots:
            cursor = snapshot
            while cursor.kind == "delta" and cursor.parent_id is not None:
                if cursor.parent_id == snapshot_id:
                    dependents.append(snapshot.snapshot_id)
                    break
                cursor = by_id.get(cursor.parent_id)
                if cursor is None:
                    break
        return dependents

    def _auto_prune(self) -> None:
        """Trim the retention window: keep the newest ``keep`` cuts plus
        every ancestor their resolution chains pass through (the latent
        full-mode pruning policy would have freed a base out from under
        its deltas).  An old chain no retained cut references is
        reclaimed whole; the window overshoot while a chain is live is
        bounded by ``base_every``."""
        if len(self._snapshots) <= self._keep:
            return
        by_id = {s.snapshot_id: s for s in self._snapshots}
        needed = set()
        for snapshot in self._snapshots[-self._keep:]:
            cursor = snapshot
            needed.add(cursor.snapshot_id)
            while cursor.kind == "delta" and cursor.parent_id in by_id:
                cursor = by_id[cursor.parent_id]
                needed.add(cursor.snapshot_id)
        self._snapshots = [s for s in self._snapshots
                           if s.snapshot_id in needed]

    def prune(self, snapshot_id: int) -> None:
        """Explicitly drop one snapshot; refused while any retained cut
        resolves through it."""
        dependents = self._dependents(snapshot_id)
        if dependents:
            raise SnapshotPruneError(
                f"snapshot {snapshot_id} still anchors the delta chain "
                f"of {dependents}; pruning it would break recovery")
        self._snapshots = [s for s in self._snapshots
                           if s.snapshot_id != snapshot_id]

    # -- resolution & recovery ------------------------------------------
    def latest(self) -> Snapshot | None:
        return self._snapshots[-1] if self._snapshots else None

    def retained(self) -> list[Snapshot]:
        """Every snapshot still in the retention window, oldest first —
        the candidate set as-of queries walk when picking an anchor."""
        return list(self._snapshots)

    def resolve(self, snapshot: Snapshot) -> Any:
        """Replay *snapshot*'s delta chain over its base: the full state
        payload a ``restore`` accepts.  Raises
        :class:`SnapshotChainError` on a torn or broken chain."""
        by_id = {s.snapshot_id: s for s in self._snapshots}
        chain: list[Snapshot] = []
        cursor = snapshot
        while cursor.kind == "delta":
            if cursor.torn:
                raise SnapshotChainError(
                    f"snapshot {cursor.snapshot_id}'s delta fragment was "
                    f"torn in flight")
            chain.append(cursor)
            if cursor.parent_id is None or cursor.parent_id not in by_id:
                raise SnapshotChainError(
                    f"snapshot {cursor.snapshot_id}'s parent "
                    f"{cursor.parent_id} is gone")
            cursor = by_id[cursor.parent_id]
        return resolve_payload(cursor.state,
                               [link.state for link in reversed(chain)])

    def resolve_slot(self, slot: int) -> Any | None:
        """The latest cut's content of one slot (slot-migration base),
        or ``None`` when no resolvable chain covers it."""
        latest = self.latest()
        if latest is None:
            return None
        by_id = {s.snapshot_id: s for s in self._snapshots}
        chain: list[Any] = []
        cursor = latest
        while cursor.kind == "delta":
            if cursor.torn or cursor.state is None:
                return None
            parts = getattr(cursor.state, "parts", None)
            if parts is None or slot >= len(parts):
                return None
            chain.append(parts[slot])
            if cursor.parent_id is None or cursor.parent_id not in by_id:
                return None
            cursor = by_id[cursor.parent_id]
        parts = getattr(cursor.state, "parts", None)
        if parts is None or slot >= len(parts):
            return None
        return resolve_payload(parts[slot], list(reversed(chain)))

    def resolve_recoverable(self, snapshot: Snapshot,
                            changelog: ChangelogStore | None = None) -> Any:
        """Resolve one cut the way recovery would: replay its delta
        chain, and on a torn/broken chain repair it through the
        changelog (nearest intact ancestor + replayed commit records).
        Raises :class:`SnapshotChainError` when neither works."""
        try:
            return self.resolve(snapshot)
        except SnapshotChainError:
            if changelog is not None:
                repaired = self._repair(snapshot, changelog)
                if repaired is not None:
                    self.changelog_repairs += 1
                    return repaired
            raise

    def latest_recoverable(
            self, changelog: ChangelogStore | None = None,
    ) -> tuple[Snapshot, Any]:
        """The newest cut recovery can actually restore, with its
        resolved state payload.  A torn chain is first repaired through
        the changelog (nearest intact ancestor + replayed commit
        records); failing that, recovery falls back to the next older
        cut — the "last complete chain" the watchdog guarantee names."""
        for snapshot in reversed(self._snapshots):
            try:
                return snapshot, self.resolve_recoverable(snapshot,
                                                          changelog)
            except SnapshotChainError:
                self.chain_fallbacks += 1
        raise SnapshotChainError("no recoverable snapshot retained")

    def _repair(self, snapshot: Snapshot,
                changelog: ChangelogStore) -> Any | None:
        """Rebuild a torn cut's state: resolve the nearest intact
        ancestor, then replay the changelog records between the two
        cuts' log positions.  ``None`` when no ancestor resolves or the
        record suffix is incomplete."""
        by_id = {s.snapshot_id: s for s in self._snapshots}
        cursor = snapshot
        while cursor.kind == "delta" and cursor.parent_id in by_id:
            cursor = by_id[cursor.parent_id]
            try:
                payload = self.resolve(cursor)
            except SnapshotChainError:
                continue
            records = changelog.records_between(cursor.changelog_seq,
                                                snapshot.changelog_seq)
            if records is None:
                return None
            for record in records:
                payload = apply_flat_writes(payload, record.writes)
            return payload
        return None

    # -- compaction support ---------------------------------------------
    def floor_changelog_seq(self) -> int:
        """The lowest changelog position any retained cut could anchor a
        repair from — records at or below it are dead weight."""
        if not self._snapshots:
            return -1
        return min(s.changelog_seq for s in self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)
