"""The StateFlow coordinator: sequencing, Aria batches, snapshots,
recovery (paper Section 3 — "StateFlow requires a single core
coordinator, and the rest are used for its workers").

Responsibilities:

- admit client requests from the replayable (Kafka) source and sequence
  them into deterministic transaction batches;
- drive Aria's execution phase (dispatch), commit barrier, conflict
  detection and write installation — as a bounded *epoch pipeline*:
  while batch N runs its commit phase, up to ``pipeline_depth - 1``
  younger batches are already sealed and executing against pinned
  committed-snapshot views (see "Pipelined epochs" below);
- retry aborted transactions (conflict, or stale cross-batch reads)
  with their original priority;
- gate transactional outputs on epoch boundaries (exactly-once output
  visibility, paper Section 5) and deduplicate replies;
- take batch-boundary consistent snapshots and run recovery: restore the
  latest snapshot, rewind the source, replay;
- drive elastic rescales (the RESCALE barrier): between two batches it
  migrates the minimal set of hash slots to their new owners through the
  snapshot machinery, commits the new routing table, snapshots the new
  topology, and resumes batching (see :meth:`Coordinator.request_rescale`).

Pipelined epochs
----------------

Aria's phases admit a classic pipelining optimisation (Lu et al., VLDB
2020): a batch's execution phase only reads the committed snapshot at
its batch start, so batch N+1 can be sealed and dispatched as soon as
batch N enters its commit phase, overlapping N+1's worker-side execution
with N's conflict detection, write installation, single-key phase and
fallback.  The invariants that keep this serializable and deterministic:

- **Ordered commit core.**  Conflict detection, write application, the
  single-key phase and the sequential fallback run for at most one batch
  at a time, in batch-id order (:attr:`Coordinator._commit_batch`).
- **Pinned snapshot views.**  A batch sealed while older batches are
  still in flight records ``base`` — the last *closed* batch id — in its
  transaction contexts; workers read through the committed store's
  version-pinned view of that boundary (O(1) to pin on the cow backend),
  so older batches' writes landing mid-execution stay invisible.
- **Cross-batch conflict detection.**  At its commit barrier a batch
  checks its read sets against the write footprints of every batch that
  committed after its snapshot (``stale_keys`` in :func:`aria.decide`);
  stale readers abort and re-execute (sequential fallback) or re-enter
  the next sealable batch with their original priority.
- **Whole-pipeline drains.**  Recovery and coordinator crashes abandon
  *all* in-flight batches and release every pinned view; the rescale
  barrier waits for the pipeline to empty; snapshot cuts happen at batch
  close with still-executing batches folded back into the pending
  channel state — a snapshot never contains a half-committed batch.

``pipeline_depth = 1`` restores strictly-serial one-batch-at-a-time
scheduling: no pinned views, no cross-batch footprints, no overlap.
(The idle-seal optimisation — see ``idle_seal_fraction`` — applies at
every depth, so batch-formation *timing* still differs from the
pre-pipeline coordinator.)

Commit-phase writes are bucketed per owning worker (``hooks.worker_of``)
so each worker installs only its own partition's writes; snapshots are
assembled from per-partition fragments by the partitioned committed
store (``committed.snapshot()`` collects one fragment per partition) and
recovery fans the fragments back out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ...core.refs import EntityRef
from ...ir.events import Event, EventKind, TxnContext
from ...substrates.simulation import CpuPool, Simulation
from ..state import StateBackend, payload_keys
from .aria import AriaStats, BatchMember, decide
from .snapshots import ChangelogStore, SnapshotStore


@dataclass(slots=True)
class TxnRecord:
    """One client request as a (retryable) transaction."""

    arrival_seq: int
    target: EntityRef
    method: str
    args: tuple
    request_id: int
    ingress_time: float
    is_transactional_method: bool
    attempt: int = 0
    ctx: TxnContext | None = None
    result: Any = None
    error: str | None = None
    done: bool = False

    def fresh_event(self) -> Event:
        return Event(kind=EventKind.INVOKE, target=self.target,
                     method=self.method, args=self.args,
                     request_id=self.request_id, txn=self.ctx,
                     ingress_time=self.ingress_time)

    def fresh_copy(self) -> "TxnRecord":
        """A clean re-executable copy (ctx/results are per-attempt)."""
        return TxnRecord(arrival_seq=self.arrival_seq, target=self.target,
                         method=self.method, args=self.args,
                         request_id=self.request_id,
                         ingress_time=self.ingress_time,
                         is_transactional_method=self.is_transactional_method,
                         attempt=self.attempt)


#: Fallback transactions get TIDs above this base so reports are
#: distinguishable from execution-phase reports of the same batch.
FALLBACK_TID_BASE = 1_000_000


@dataclass(slots=True, eq=False)
class _Batch:
    batch_id: int
    #: Multi-key transactions (snapshot execution + conflict detection).
    txns: dict[int, TxnRecord]
    outstanding: set[int]
    started_at: float
    last_progress: float = 0.0
    #: Single-key transactions: executed serially per owning worker after
    #: the multi-key commit — our "extension of Aria" (they can never
    #: conflict across partitions, so they skip reservations entirely).
    single: list[TxnRecord] = field(default_factory=list)
    #: Pipelined epochs: the committed-store version (last closed batch
    #: id) this batch's execution phase reads through; ``None`` = live
    #: state (the pipeline was empty at seal time).
    base: int | None = None
    #: Execution phase complete (every dispatch reported back); the
    #: batch is waiting for — or holds — the ordered commit region.
    execution_done: bool = False
    execution_done_at: float = 0.0
    #: Keys written by this batch's commit (multi-key committed writes,
    #: fallback writes, single-key targets): the write footprint younger
    #: overlapping batches check their read sets against.
    footprint: set = field(default_factory=set)

    def all_records(self) -> list[TxnRecord]:
        return list(self.txns.values()) + list(self.single)


@dataclass(slots=True)
class RescaleRecord:
    """One completed rescale — the audit trail the bench harness turns
    into migration-pause metrics."""

    started_at_ms: float
    committed_at_ms: float
    from_workers: int
    to_workers: int
    slots_moved: int
    keys_moved: int

    @property
    def pause_ms(self) -> float:
        """How long batching was barred for this rescale."""
        return self.committed_at_ms - self.started_at_ms


@dataclass(slots=True)
class CoordinatorHooks:
    """Runtime-provided effects (network sends, Kafka control)."""

    dispatch: Callable[[Event], None]
    apply_writes: Callable[[int, dict, Callable[[], None]], None]
    emit_reply: Callable[[Event], None]
    worker_of: Callable[[str, Any], int]
    source_positions: Callable[[], dict]
    source_seek: Callable[[dict], None]
    restore_workers: Callable[[], None]
    #: True when (entity, method) touches only its own key (unsplit, not
    #: a constructor) and may take the single-key path.
    is_single_key: Callable[[str, str], bool] = lambda entity, method: False
    #: Run a list of single-key events serially at one worker; the
    #: callback receives the reply events.
    execute_single_key: Callable[
        [int, list[Event], Callable[[list[Event]], None]], None] = None  # type: ignore[assignment]
    #: Elasticity: size the active worker set (create/revive workers
    #: below *count*, retire the rest).
    set_worker_count: Callable[[int], None] = lambda count: None
    #: Ship one slot from its old owner to its new one over the network
    #: substrate (capture -> transfer -> install), acking via callback.
    migrate_slot: Callable[
        [int, int, int, Callable[[], None]], None] = None  # type: ignore[assignment]


@dataclass(slots=True)
class CoordinatorConfig:
    batch_interval_ms: float = 10.0
    max_batch_size: int = 512
    epoch_interval_ms: float = 40.0
    snapshot_interval_ms: float = 500.0
    failure_detect_ms: float = 400.0
    recovery_pause_ms: float = 25.0
    max_txn_attempts: int = 10
    conflict_check_ms_per_txn: float = 0.01
    dispatch_ms_per_txn: float = 0.02
    reordering: bool = True
    release_txn_outputs_at_epoch: bool = True
    #: "sequential" = Aria's Calvin-style fallback: conflict-aborted
    #: transactions re-execute serially (in TID order) against live state
    #: inside the same batch — no retry spiral under hot keys.
    #: "retry" = re-enqueue into the next batch (ablation baseline).
    fallback: str = "sequential"
    #: Bounded epoch pipeline: how many batches may be in flight at once
    #: (one in the ordered commit region, the rest executing against
    #: pinned snapshot views).  1 = the strictly serial pre-pipeline
    #: behaviour.
    pipeline_depth: int = 2
    #: Idle batch formation: when a request arrives and the pipeline has
    #: a free slot, seal on the next sub-interval boundary instead of
    #: waiting a full ``batch_interval_ms`` tick.  The fraction keeps
    #: near-simultaneous arrivals coalescing into one batch.
    idle_seal_fraction: float = 0.25
    #: "full" = every cut carries the whole committed state (classic).
    #: "incremental" = cuts capture only the slots dirtied since the
    #: previous cut, chained to a periodic full base (see
    #: :mod:`.snapshots`); recovery resolves base + delta chain, with
    #: the commit changelog repairing torn chains.
    snapshot_mode: str = "full"
    #: Incremental mode: a full base cut every N cuts (bounds the delta
    #: chain recovery must replay).
    snapshot_base_every: int = 4
    #: Incremental mode: append each committed batch's write footprint
    #: to the durable changelog (enables torn-chain repair; off = torn
    #: cuts always fall back to the last complete chain).
    changelog_enabled: bool = True
    #: Measure every cut's (keys, bytes) into the snapshot store's
    #: ledger — O(payload) per cut, so ``None`` defaults to "only in
    #: incremental mode" and the recovery bench enables it explicitly
    #: for its full-mode baseline.
    snapshot_footprints: bool | None = None
    #: Simulated CPU cost of installing restored state, per key (models
    #: recovery time growing with state size; 0 keeps the legacy fixed
    #: recovery pause).
    restore_cost_ms_per_key: float = 0.0
    #: Put real files under the durability path: when set, the snapshot
    #: and changelog stores are the file-backed ones from
    #: :mod:`repro.storage` (segment-file changelog, per-cut snapshot
    #: files, fsync-on-append) rooted at this directory, and a cold
    #: start — a *real* process death — recovers from disk.  ``None``
    #: keeps the in-memory stores (durability survives simulated
    #: crashes only).  Persistence is a pure side effect: traces are
    #: byte-identical either way.
    durability_dir: str | None = None


class Coordinator:
    """Single-core coordinator of the StateFlow dataflow."""

    def __init__(self, sim: Simulation, committed: StateBackend,
                 hooks: CoordinatorHooks,
                 config: CoordinatorConfig | None = None,
                 autoscaler: Any = None):
        self.sim = sim
        self.committed = committed
        self.hooks = hooks
        self.config = config or CoordinatorConfig()
        #: Closed-loop capacity controller (an
        #: :class:`~repro.control.AutoscaleController`), or ``None`` for
        #: operator-driven clusters.  When attached, the commit path
        #: feeds per-slot/per-key loci into ``stats`` and a control tick
        #: turns the windowed load into autonomous ``request_rescale``
        #: calls.
        self.autoscaler = autoscaler
        #: Materialized-view maintenance (a :class:`~repro.views.
        #: ViewManager`), or ``None``.  Fed the write footprint of every
        #: closed batch — unconditionally, unlike the changelog: views
        #: work in full-snapshot mode too — and rebuilt on recovery so
        #: no view ever reflects an abandoned pipeline batch.
        self.views: Any = None
        self._slot_of = getattr(committed, "slot_of", None)
        self.cpu = CpuPool(sim, 1, name="coordinator")
        if self.config.durability_dir:
            # Imported lazily: the storage package depends on this
            # module's sibling (snapshots), and most deployments never
            # touch disk.
            from ...storage import FileChangelogStore, FileSnapshotStore
            self.snapshots = FileSnapshotStore(
                self.config.durability_dir,
                mode=self.config.snapshot_mode,
                base_every=self.config.snapshot_base_every,
                track_footprints=self.config.snapshot_footprints)
            self.changelog = FileChangelogStore(self.config.durability_dir)
        else:
            self.snapshots = SnapshotStore(
                mode=self.config.snapshot_mode,
                base_every=self.config.snapshot_base_every,
                track_footprints=self.config.snapshot_footprints)
            #: Durable commit changelog (incremental mode): one record
            #: per committed batch.  Like the snapshot store it survives
            #: crashes; recovery rewinds it to the restored cut's
            #: position.
            self.changelog = ChangelogStore()
        self.stats = AriaStats()
        self.pending: list[TxnRecord] = []
        #: The epoch pipeline: every sealed-but-not-closed batch, by id.
        #: The oldest is (or will be promoted to) the ordered commit
        #: region; younger ones are executing against pinned views.
        self.inflight: dict[int, _Batch] = {}
        self.replied: set[int] = set()
        #: Ingress dedup: request ids ever admitted from the source.  An
        #: at-least-once producer (or an injected Kafka duplication
        #: fault) can append one request at two offsets; admitting it
        #: twice would commit its effects twice.
        self.admitted: set[int] = set()
        self.duplicate_requests = 0
        self.duplicate_replies = 0
        self.recoveries = 0
        self.recovering = False
        #: Fail-stop state: a crashed coordinator ignores all traffic
        #: until :meth:`failover` brings the standby up.
        self.crashed = False
        self.failovers = 0
        #: ``(started_at_ms, resumed_at_ms)`` per completed (not
        #: superseded) recovery — an audit trail of the coordinator's
        #: own pauses.  Client-visible outage metrics live in the chaos
        #: bench harness, which measures disruption -> next reply.
        self.recovery_log: list[tuple[float, float]] = []
        self.failed_txns = 0
        self._epoch_buffer: list[Event] = []
        self._arrival_seq = 0
        self._batch_seq = 0
        self._snapshot_requested = False
        self._running = False
        #: Bumped by every recover()/crash(): fences the delayed
        #: ``resume`` closure of a recovery that was superseded.
        self._recovery_epoch = 0
        #: Bumped by every ``_start_ticks``: fences tick closures from a
        #: previous incarnation (pre-crash chains that would otherwise
        #: survive a short outage and double every tick rate).
        self._tick_epoch = 0
        #: Pipeline bookkeeping: the batch holding the ordered commit
        #: region; the last closed batch id (the current committed-store
        #: version); versions pinned on the store; closed batches' write
        #: footprints still needed by overlapping in-flight batches.
        self._commit_batch: _Batch | None = None
        self._last_closed = -1
        self._pinned: set[int] = set()
        self._footprints: dict[int, frozenset] = {}
        self._seal_scheduled = False
        #: Sequential-fallback machinery: queue of aborted transactions
        #: re-executing one at a time inside the current batch.
        self._fallback_queue: list[TxnRecord] = []
        self._fallback_current: TxnRecord | None = None
        self._fallback_tid = FALLBACK_TID_BASE
        #: Elastic-rescale machinery.  ``rescaling`` bars batch formation
        #: (the RESCALE barrier); requested targets queue FIFO and run
        #: one at a time at batch boundaries once the pipeline drains.
        self.rescaling = False
        self.rescales = 0
        self.rescale_aborts = 0
        self.slots_migrated = 0
        self.keys_migrated = 0
        self.rescale_log: list[RescaleRecord] = []
        self._rescale_requests: list[int] = []
        self._rescale_target: int | None = None
        self._rescale_progress_at = 0.0
        #: Bumped by every rescale begin/abort/crash: fences acks from a
        #: superseded migration attempt.
        self._rescale_epoch = 0

    # -- pipeline views -----------------------------------------------------
    @property
    def active(self) -> _Batch | None:
        """The oldest in-flight batch (the one whose stall the watchdog
        tracks).  With ``pipeline_depth`` 1 this is the only batch, i.e.
        exactly the pre-pipeline ``active`` attribute."""
        if not self.inflight:
            return None
        return self.inflight[min(self.inflight)]

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Take the initial snapshot and start the periodic ticks."""
        self._running = True
        self._take_snapshot()
        self._start_ticks()

    def _start_ticks(self) -> None:
        self._tick_epoch += 1
        self._schedule_tick(self.config.batch_interval_ms, self._tick_batch)
        self._schedule_tick(self.config.epoch_interval_ms, self._flush_epoch)
        self._schedule_tick(self.config.snapshot_interval_ms,
                            self._tick_snapshot)
        self._schedule_tick(self.config.failure_detect_ms / 2,
                            self._tick_watchdog)
        if self.autoscaler is not None:
            # Registered here, not in __init__, so the control loop is
            # re-armed by failover() exactly like every other tick — an
            # autoscaler survives the coordinator it advises.
            self._schedule_tick(self.autoscaler.policy.sample_interval_ms,
                                self._tick_autoscale)

    def stop(self) -> None:
        self._running = False

    # -- fail-stop & fail-over ------------------------------------------
    def crash(self) -> None:
        """Fail-stop: every piece of volatile state is lost and all
        traffic is ignored until :meth:`failover`.  Durable state — the
        snapshot store and the replayable source — survives."""
        if self.crashed:
            return
        self.crashed = True
        self._running = False  # in-flight tick closures die off
        self._recovery_epoch += 1  # a pre-crash resume must not land
        self._abandon_pipeline()
        self.pending.clear()
        self._epoch_buffer.clear()
        # Rescale intents are volatile sequencing state: an in-flight
        # migration is abandoned (installs already delivered are benign —
        # the barrier kept the slots quiescent, so the fragments equal
        # the live contents — and later ones are incarnation-fenced).
        self.rescaling = False
        self._rescale_epoch += 1
        self._rescale_requests.clear()
        self._rescale_target = None

    def failover(self) -> None:
        """A standby coordinator takes over: restore the latest durable
        snapshot (state, offsets, dedup sets, channel state) and resume
        ticking.  Replies already emitted stay deduplicated because the
        ``replied`` set is part of the snapshot."""
        if not self.crashed:
            return
        self.crashed = False
        self.failovers += 1
        self._running = True
        self.recover()
        self._start_ticks()

    def _abandon_pipeline(self) -> None:
        """Drop every in-flight batch and all pipeline metadata: pinned
        snapshot views, write footprints, the commit region, the
        fallback queue.  In-flight work is re-created by replay (the
        abandoned batches' requests are either in the restored pending
        channel state or re-consumed from the rewound source)."""
        self.inflight.clear()
        self._commit_batch = None
        self._fallback_queue = []
        self._fallback_current = None
        self._footprints.clear()
        release = getattr(self.committed, "release_view", None)
        if release is not None:
            for version in self._pinned:
                release(version)
        self._pinned.clear()

    def _schedule_tick(self, interval: float,
                       action: Callable[[], None]) -> None:
        epoch = self._tick_epoch

        def fire() -> None:
            if not self._running or epoch != self._tick_epoch:
                return  # this incarnation's chain was superseded
            action()
            self.sim.schedule(interval, fire)

        self.sim.schedule(interval, fire)

    # -- request admission -------------------------------------------------
    def on_request(self, event: Event,
                   *, is_transactional_method: bool) -> None:
        """A client request arrived from the replayable source."""
        if self.crashed:
            return  # a dead coordinator consumes nothing
        request_id = event.request_id if event.request_id is not None else -1
        if request_id in self.admitted:
            # At-least-once produce duplicated the request in the log;
            # admitting it again would double-commit its effects.
            self.duplicate_requests += 1
            return
        self.admitted.add(request_id)
        record = TxnRecord(
            arrival_seq=self._arrival_seq,
            target=event.target, method=event.method or "",
            args=event.args, request_id=event.request_id or -1,
            ingress_time=(event.ingress_time
                          if event.ingress_time is not None else self.sim.now),
            is_transactional_method=is_transactional_method)
        self._arrival_seq += 1
        self.pending.append(record)
        if self._can_seal() and not self._seal_scheduled:
            # Do not wait a full tick when the pipeline has a free slot:
            # seal on the next sub-interval boundary to bound formation
            # latency (the fraction lets near-simultaneous arrivals
            # still coalesce into one batch).
            self._seal_scheduled = True
            delay = (self.config.batch_interval_ms
                     * self.config.idle_seal_fraction)

            def fire_seal() -> None:
                self._seal_scheduled = False
                if self._can_seal():
                    self._start_batch()

            self.sim.schedule(delay, fire_seal)

    # -- batches --------------------------------------------------------
    def _can_seal(self) -> bool:
        """A new batch may be sealed: load is waiting, the pipeline has
        a free slot, and every in-flight batch has finished its
        execution phase (i.e. the newest batch has entered — or is
        queued for — the commit region).  Rescale intents drain the
        pipeline first."""
        return (self._running and not self.crashed and not self.recovering
                and not self.rescaling and not self._rescale_requests
                and bool(self.pending)
                and len(self.inflight) < max(self.config.pipeline_depth, 1)
                and all(batch.execution_done
                        for batch in self.inflight.values()))

    def _tick_batch(self) -> None:
        if self.recovering or self.rescaling:
            return
        if self._rescale_requests and not self.inflight:
            self._begin_rescale(self._rescale_requests.pop(0))
        elif self._can_seal():
            self._start_batch()

    def _start_batch(self) -> None:
        self.pending.sort(key=lambda t: t.arrival_seq)
        taken = self.pending[:self.config.max_batch_size]
        del self.pending[:len(taken)]
        # Batches sealed over a busy pipeline execute against the last
        # *closed* committed version (pinned when the previous batch was
        # promoted into the commit region); a batch sealed into an empty
        # pipeline reads live state — nothing can mutate it until the
        # batch's own commit.
        base = self._last_closed if self.inflight else None
        batch = _Batch(batch_id=self._batch_seq, txns={}, outstanding=set(),
                       started_at=self.sim.now, last_progress=self.sim.now,
                       base=base)
        self._batch_seq += 1
        for tid, txn in enumerate(taken):
            txn.ctx = TxnContext(tid=tid, batch_id=batch.batch_id,
                                 attempt=txn.attempt, base=base)
            txn.done = False
            txn.result = None
            txn.error = None
            if self.hooks.is_single_key(txn.target.entity, txn.method):
                batch.single.append(txn)
                self.stats.single_key += 1
                if (self.autoscaler is not None
                        and self.autoscaler.is_hot_key(
                            txn.target.entity, txn.target.key)):
                    self.stats.single_key_hot += 1
            else:
                batch.txns[tid] = txn
                batch.outstanding.add(tid)
        self.inflight[batch.batch_id] = batch
        self.stats.observe_seal(len(self.inflight))

        def dispatch_all() -> None:
            if self.inflight.get(batch.batch_id) is not batch:
                return  # recovery raced us
            if not batch.outstanding:
                # No multi-key work: the execution phase is trivially
                # complete; head straight for the commit region.
                self._execution_finished(batch)
                return
            for txn in batch.txns.values():
                self.hooks.dispatch(txn.fresh_event())

        self.cpu.submit(self.config.dispatch_ms_per_txn * len(taken),
                        dispatch_all)

    def on_txn_report(self, event: Event) -> None:
        """Root REPLY of a transaction's execution or fallback phase."""
        if self.crashed:
            return
        ctx = event.txn
        if ctx is None:
            return
        if ctx.tid >= FALLBACK_TID_BASE:
            batch = self._commit_batch
            if batch is None or ctx.batch_id != batch.batch_id:
                return  # stale fallback report from before a recovery
            batch.last_progress = self.sim.now
            self._on_fallback_report(event, ctx)
            return
        batch = self.inflight.get(ctx.batch_id)
        if batch is None:
            return  # stale report from before a recovery
        batch.last_progress = self.sim.now
        txn = batch.txns.get(ctx.tid)
        if txn is None or txn.done:
            return
        if txn.ctx is not ctx:
            # Cross-process execution: the report's context is a wire
            # copy carrying the read/write sets the worker accumulated —
            # graft it over the coordinator's original so conflict
            # detection and the commit phase see the footprints.  A
            # no-op on the simulator substrate (same object).
            txn.ctx = ctx
        txn.done = True
        txn.result = event.payload
        txn.error = event.error
        batch.outstanding.discard(ctx.tid)
        if not batch.outstanding:
            self._execution_finished(batch)

    # -- pipeline sequencing ------------------------------------------------
    def _execution_finished(self, batch: _Batch) -> None:
        """The batch's execution phase is complete: queue it for the
        ordered commit region (commit/apply/single-key/fallback stay
        strictly ordered by batch id) and let the next batch seal."""
        batch.execution_done = True
        batch.execution_done_at = self.sim.now
        self._maybe_promote()
        if self._can_seal():
            self._start_batch()

    def _maybe_promote(self) -> None:
        """Move the oldest in-flight batch into the commit region once
        its execution phase is done.  Promotion is the quiescent point
        between two batches' commits: the store holds exactly the last
        closed version, so pin it for batches sealed over this commit."""
        if self._commit_batch is not None or not self.inflight:
            return
        batch = self.inflight[min(self.inflight)]
        if not batch.execution_done:
            return
        if self.config.pipeline_depth > 1:
            self._pin_version(self._last_closed)
        self.stats.stall_ms += self.sim.now - batch.execution_done_at
        self._commit_batch = batch
        self._commit_phase(batch)

    def _pin_version(self, version: int) -> None:
        if version in self._pinned:
            return
        pin = getattr(self.committed, "pin_view", None)
        if pin is None:
            return
        pin(version)
        self._pinned.add(version)

    def _stale_keys_for(self, batch: _Batch) -> set:
        """Union of write footprints of every batch that committed
        between *batch*'s snapshot (``base``) and its commit barrier."""
        if batch.base is None:
            return set()
        stale: set = set()
        for closed_id in range(batch.base + 1, batch.batch_id):
            stale |= self._footprints.get(closed_id, frozenset())
        return stale

    # -- commit phase ------------------------------------------------------
    def _commit_phase(self, batch: _Batch) -> None:
        def run_detection() -> None:
            if self._commit_batch is not batch:
                return
            members = [
                BatchMember.from_context(txn.ctx, failed=txn.error is not None)
                for txn in batch.txns.values()
            ]
            report = decide(members, reordering=self.config.reordering,
                            stale_keys=self._stale_keys_for(batch))
            self.stats.observe(report)
            committed_tids = [tid for tid in sorted(report.commits)
                              if batch.txns[tid].error is None]
            buckets: dict[int, dict] = {}
            for tid in committed_tids:
                ctx = batch.txns[tid].ctx
                assert ctx is not None
                for (entity, key), value in ctx.write_set.items():
                    worker = self.hooks.worker_of(entity, key)
                    buckets.setdefault(worker, {})[(entity, key)] = value
                    batch.footprint.add((entity, key))
            if not buckets:
                self._finalize_batch(batch, report)
                return
            remaining = {"count": len(buckets)}

            def one_ack() -> None:
                remaining["count"] -= 1
                if remaining["count"] == 0 and self._commit_batch is batch:
                    self._finalize_batch(batch, report)

            for worker, writes in buckets.items():
                self.hooks.apply_writes(worker, writes, one_ack)

        cost = (self.config.conflict_check_ms_per_txn * len(batch.txns)
                + 0.05)
        self.cpu.submit(cost, run_detection)

    def _finalize_batch(self, batch: _Batch, report) -> None:
        aborted = set(report.aborts)
        fallback: list[TxnRecord] = []
        for tid, txn in batch.txns.items():
            if tid in aborted:
                txn.attempt += 1
                if self.config.fallback == "sequential":
                    fallback.append(txn)
                else:
                    self.stats.retries += 1
                    if txn.attempt >= self.config.max_txn_attempts:
                        self.failed_txns += 1
                        self._enqueue_reply(txn, error=(
                            f"transaction aborted after {txn.attempt} "
                            f"attempts ({report.aborts[tid].value})"))
                    else:
                        # Re-enters the next *sealable* batch: priority
                        # (arrival_seq) is preserved by the seal-time
                        # sort, so retried work still goes first.
                        self.pending.append(txn)
            else:
                self._observe_commit(txn.target.entity, txn.target.key)
                self._enqueue_reply(txn, error=txn.error)
        # Aria's fallback: re-execute the conflict-aborted transactions
        # serially, in TID order, against live state — after the
        # single-key phase has run.
        fallback.sort(key=lambda t: t.ctx.tid if t.ctx else 0)
        self._fallback_queue = fallback
        self._single_key_phase(batch)

    # -- single-key phase ---------------------------------------------------
    def _single_key_phase(self, batch: _Batch) -> None:
        """Execute the batch's single-key transactions serially per
        owning worker (parallel across workers), against live state."""
        if self._commit_batch is not batch or not batch.single:
            self._fallback_or_close(batch)
            return
        groups: dict[int, list[TxnRecord]] = {}
        for txn in sorted(batch.single,
                          key=lambda t: t.ctx.tid if t.ctx else 0):
            worker = self.hooks.worker_of(txn.target.entity, txn.target.key)
            groups.setdefault(worker, []).append(txn)
            # Single-key transactions may write their own key: part of
            # the batch's footprint for cross-batch stale detection.
            batch.footprint.add((txn.target.entity, txn.target.key))
        by_request = {txn.request_id: txn for txn in batch.single}
        remaining = {"count": len(groups)}

        def on_worker_done(replies: list[Event]) -> None:
            if self._commit_batch is not batch:
                return
            batch.last_progress = self.sim.now
            for reply in replies:
                txn = by_request.get(reply.request_id or -1)
                if txn is None or txn.done:
                    continue
                txn.done = True
                txn.result = reply.payload
                txn.error = reply.error
                self._observe_commit(txn.target.entity, txn.target.key)
                self._enqueue_reply(txn, error=txn.error)
            remaining["count"] -= 1
            if remaining["count"] == 0:
                self._fallback_or_close(batch)

        for worker, txns in groups.items():
            events = [txn.fresh_event() for txn in txns]
            self.hooks.execute_single_key(worker, events, on_worker_done)

    def _fallback_or_close(self, batch: _Batch) -> None:
        if self._commit_batch is not batch:
            return
        if self._fallback_queue:
            self._fallback_next(batch)
        else:
            self._close_batch()

    def _close_batch(self) -> None:
        batch = self._commit_batch
        self._commit_batch = None
        self._fallback_queue = []
        self._fallback_current = None
        if batch is not None:
            self.inflight.pop(batch.batch_id, None)
            self._last_closed = batch.batch_id
            self.stats.observe_close(self.sim.now - batch.started_at)
            self._observe_batch_writes(batch)
            if self.config.pipeline_depth > 1:
                self._footprints[batch.batch_id] = frozenset(batch.footprint)
            self._prune_pipeline_metadata()
        if self._snapshot_requested:
            self._take_snapshot()
        if self.recovering:
            return
        if self._rescale_requests and not self.inflight:
            # The drained-pipeline batch boundary is the RESCALE barrier:
            # no transaction is in flight, so slots are quiescent and
            # safe to migrate.
            self._begin_rescale(self._rescale_requests.pop(0))
            return
        self._maybe_promote()
        if self._can_seal():
            self._start_batch()

    def _observe_batch_writes(self, batch: _Batch) -> None:
        """Fan the batch's commit delta out to its two consumers: the
        durable changelog (incremental mode only) and view maintenance
        (whenever views are registered).  The post-commit states are
        read back once at batch close, after every write (multi-key,
        fallback, single-key) is installed, so the values are exactly
        what the batch left behind.  Keys a footprint names but that
        never materialized (an errored single-key transaction on an
        absent key) are skipped — the runtime has no deletes, so
        absence means "was never written"."""
        changelogging = (self.config.snapshot_mode == "incremental"
                         and self.config.changelog_enabled)
        viewing = self.views is not None and len(self.views)
        writes: dict = {}
        if batch.footprint and (changelogging or viewing):
            for entity, key in batch.footprint:
                state = self.committed.get(entity, key)
                if state is not None:
                    writes[(entity, key)] = state
        if changelogging and writes:
            self.changelog.append(batch.batch_id, writes,
                                  at_ms=self.sim.now)
        if viewing:
            # Even an empty footprint advances view freshness: a closed
            # read-only batch leaves views exactly as fresh as the
            # store.
            self.views.on_commit(batch.batch_id, writes,
                                 at_ms=self.sim.now)

    def _prune_pipeline_metadata(self) -> None:
        """Release pinned views and footprints no in-flight batch can
        reference any more.  A footprint for closed batch ``b`` matters
        only to batches whose snapshot predates it (``base < b``); a
        pinned version only to batches reading through it."""
        live_bases = {batch.base for batch in self.inflight.values()
                      if batch.base is not None}
        min_base = min(live_bases, default=None)
        for closed_id in list(self._footprints):
            if min_base is None or closed_id <= min_base:
                del self._footprints[closed_id]
        release = getattr(self.committed, "release_view", None)
        for version in list(self._pinned):
            if version not in live_bases:
                if release is not None:
                    release(version)
                self._pinned.discard(version)

    # -- sequential fallback -------------------------------------------------
    def _fallback_next(self, batch: _Batch) -> None:
        if self._commit_batch is not batch:
            return
        if not self._fallback_queue:
            self._close_batch()
            return
        txn = self._fallback_queue.pop(0)
        self._fallback_current = txn
        self._fallback_tid += 1
        self.stats.fallback_runs += 1
        # Fallback re-runs read live state (base=None): every earlier
        # write of this and all older batches is already installed.
        txn.ctx = TxnContext(tid=self._fallback_tid,
                             batch_id=batch.batch_id, attempt=txn.attempt)
        batch.last_progress = self.sim.now
        self.hooks.dispatch(txn.fresh_event())

    def _on_fallback_report(self, event: Event, ctx: TxnContext) -> None:
        batch = self._commit_batch
        txn = self._fallback_current
        if batch is None or txn is None or txn.ctx is None:
            return
        # Match by identity *fields*, not object identity: on the
        # process substrate the report's context is a wire copy of the
        # one dispatched (fallback tids are unique per coordinator
        # lifetime, so the triple is as precise as the identity check).
        if (txn.ctx.tid, txn.ctx.batch_id, txn.ctx.attempt) != (
                ctx.tid, ctx.batch_id, ctx.attempt):
            return
        txn.ctx = ctx
        txn.result = event.payload
        txn.error = event.error
        txn.done = True
        buckets: dict[int, dict] = {}
        if txn.error is None:
            for (entity, key), value in ctx.write_set.items():
                worker = self.hooks.worker_of(entity, key)
                buckets.setdefault(worker, {})[(entity, key)] = value
                batch.footprint.add((entity, key))
        if not buckets:
            self._observe_commit(txn.target.entity, txn.target.key)
            self._enqueue_reply(txn, error=txn.error)
            self._fallback_next(batch)
            return
        remaining = {"count": len(buckets)}

        def one_ack() -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0 and self._commit_batch is batch:
                self._observe_commit(txn.target.entity, txn.target.key)
                self._enqueue_reply(txn, error=txn.error)
                self._fallback_next(batch)

        for worker, writes in buckets.items():
            self.hooks.apply_writes(worker, writes, one_ack)

    # -- closed-loop autoscaling -------------------------------------------
    def _observe_commit(self, entity: str, key: Any) -> None:
        """Feed one committed transaction's locus to the autoscaler's
        windowed stats.  No-op (and allocation-free) without one."""
        if self.autoscaler is None:
            return
        slot = self._slot_of(entity, key) if self._slot_of is not None else 0
        self.stats.observe_locus(slot, (entity, key))

    def _queue_depth(self) -> int:
        """Coordinator backlog: pending txns plus txns inside in-flight
        batches (multi-key and single-key alike)."""
        return len(self.pending) + sum(
            len(batch.txns) + len(batch.single)
            for batch in self.inflight.values())

    def _tick_autoscale(self) -> None:
        """One control tick: window the cumulative stats, let the policy
        judge, and turn any decision into a ``request_rescale``.

        Skipped while recovering (a paused pipeline is not idleness);
        the next window simply stretches across the pause — the sampler
        differences cumulative counters, so rates stay correct.  While a
        rescale is queued or migrating the controller still samples (its
        hysteresis streaks keep accumulating) but is barred from
        deciding, so intents never pile up behind the barrier."""
        if self.crashed or self.recovering or self.autoscaler is None:
            return
        assignment = getattr(self.committed, "assignment", None)
        workers = assignment.workers if assignment is not None else 1
        slot_owner = (dict(enumerate(assignment.owners))
                      if assignment is not None else None)
        decision = self.autoscaler.observe(
            now_ms=self.sim.now, stats=self.stats,
            queue_depth=self._queue_depth(), workers=workers,
            busy=self.rescaling or bool(self._rescale_requests),
            slot_owner=slot_owner)
        if decision is not None:
            self.request_rescale(decision.to_workers)

    # -- elastic rescaling -------------------------------------------------
    def request_rescale(self, workers: int) -> None:
        """Queue a cluster resize; it runs once the pipeline drains at a
        batch boundary.

        Targets are clamped to ``[1, slots]`` (rescale intents arrive
        from declarative plans that cannot know the slot count).  A
        crashed coordinator consumes nothing — like any other volatile
        intent, a rescale step lost to a crash is not replayed."""
        if self.crashed:
            return
        assignment = getattr(self.committed, "assignment", None)
        ceiling = assignment.slots if assignment is not None else workers
        self._rescale_requests.append(max(1, min(workers, ceiling)))

    def _begin_rescale(self, target: int) -> None:
        """Execute one rescale under the drained-pipeline barrier:

        1. size the worker set up front (new owners must exist to
           receive migrations; old owners retire only after commit);
        2. migrate every moved slot old-owner -> new-owner through the
           snapshot machinery, over the (faultable) network substrate;
        3. when all installs acked, commit the new assignment (one
           routing-epoch flip), retire surplus workers, snapshot the new
           topology durably, and resume batching.

        Migration messages can be lost to injected faults or a worker
        crash; the rescale watchdog then aborts the attempt and runs
        ordinary recovery, which re-queues the target (see
        :meth:`_tick_watchdog`).  Aborting mid-migration is safe because
        the barrier keeps slots quiescent: every install is a no-op
        rewrite of identical contents, fenced by worker incarnations
        once recovery restarts the workers."""
        old = self.committed.assignment.workers
        if target == old:
            return
        self.rescaling = True
        self._rescale_target = target
        self._rescale_epoch += 1
        epoch = self._rescale_epoch
        self._rescale_progress_at = self.sim.now
        started = self.sim.now
        delta = self.committed.plan_rescale(target)
        keys_moved = sum(self.committed.slot_size(slot) for slot in delta)
        self.hooks.set_worker_count(max(old, target))
        # Acks are tracked per slot, not by count: the commit must mean
        # "every moved slot is installed", even if a transport ever
        # redelivered an ack.  (The direct channels model sequenced
        # transports — the injector suppresses network duplicates — and
        # an ack is only ever sent after its install executed, so the
        # commit cannot outrun an install.)
        outstanding = set(delta)

        def finish() -> None:
            self.committed.commit_rescale(target, delta)
            self.hooks.set_worker_count(target)
            self.rescales += 1
            self.slots_migrated += len(delta)
            self.keys_migrated += keys_moved
            self.rescale_log.append(RescaleRecord(
                started_at_ms=started, committed_at_ms=self.sim.now,
                from_workers=old, to_workers=target,
                slots_moved=len(delta), keys_moved=keys_moved))
            self.rescaling = False
            self._rescale_target = None
            # Durable cut of the new topology: a recovery from here on
            # replays under the post-rescale routing table.
            self._take_snapshot()
            if self._rescale_requests:
                self._begin_rescale(self._rescale_requests.pop(0))
            elif self._can_seal():
                self._start_batch()

        def one_ack(slot: int) -> None:
            if epoch != self._rescale_epoch or self.crashed:
                return  # a superseded attempt's ack
            if not self.rescaling:
                return  # this attempt already committed
            self._rescale_progress_at = self.sim.now
            outstanding.discard(slot)
            if not outstanding:
                finish()

        def launch() -> None:
            if epoch != self._rescale_epoch or self.crashed:
                return
            if not delta:
                finish()
                return
            for slot, (src, dst) in delta.items():
                self.hooks.migrate_slot(slot, src, dst,
                                        lambda s=slot: one_ack(s))

        self.cpu.submit(0.05 + 0.01 * max(len(delta), 1), launch)

    # -- replies ----------------------------------------------------------
    def _enqueue_reply(self, txn: TxnRecord, error: str | None) -> None:
        reply = Event(kind=EventKind.REPLY,
                      target=EntityRef("__client__", txn.request_id),
                      payload=txn.result, error=error,
                      request_id=txn.request_id,
                      ingress_time=txn.ingress_time)
        if (txn.is_transactional_method
                and self.config.release_txn_outputs_at_epoch):
            self._epoch_buffer.append(reply)
        else:
            self._emit(reply)

    def _emit(self, reply: Event) -> None:
        if reply.request_id in self.replied:
            self.duplicate_replies += 1
            return
        self.replied.add(reply.request_id)
        self.hooks.emit_reply(reply)

    def _flush_epoch(self) -> None:
        buffered, self._epoch_buffer = self._epoch_buffer, []
        for reply in buffered:
            self._emit(reply)

    # -- snapshots & recovery ----------------------------------------------
    def _tick_snapshot(self) -> None:
        self._snapshot_requested = True
        if not self.inflight and not self.recovering:
            self._take_snapshot()

    def _take_snapshot(self) -> None:
        """Cut a consistent snapshot at a batch boundary.

        Called only when no batch holds the commit region, so the
        committed store is exactly the last closed version — a snapshot
        never contains a half-committed batch.  Still-executing
        pipelined batches have no committed effects yet; their requests
        (like the pending queue, already consumed from the source) are
        folded back into the snapshot's channel state, so replay
        re-forms and re-executes them."""
        self._snapshot_requested = False
        uncommitted = list(self.pending)
        for batch_id in sorted(self.inflight):
            uncommitted.extend(self.inflight[batch_id].all_records())
        pending_copy = [txn.fresh_copy() for txn in
                        sorted(uncommitted, key=lambda t: t.arrival_seq)]
        freeze = getattr(self.committed, "freeze_assignment", None)
        kind, state = self._capture_state()
        self.snapshots.take(
            taken_at_ms=self.sim.now,
            state=state,
            source_offsets=self.hooks.source_positions(),
            replied=self.replied,
            batch_seq=self._batch_seq,
            arrival_seq=self._arrival_seq,
            pending=pending_copy,
            admitted=self.admitted,
            assignment=freeze() if freeze is not None else None,
            kind=kind,
            changelog_seq=self.changelog.head_seq,
            epoch_buffer=self._epoch_buffer,
            views_state=(self.views.export_sidecar()
                         if self.views is not None else None))
        # Changelog compaction rides the cut cadence: records below
        # every retained cut's position can never anchor a repair.
        self.changelog.truncate_through(self.snapshots.floor_changelog_seq())

    def _capture_state(self) -> tuple[str, Any]:
        """Capture the committed store for a cut, honoring the snapshot
        mode: a full payload, a chain-anchoring base (full payload that
        resets every backend's delta baseline), or the delta of slots
        dirtied since the previous cut.  Backends without incremental
        capture (plain unit-test stores) degrade to full cuts."""
        kind = self.snapshots.next_kind()
        if kind == "delta":
            capture = getattr(self.committed, "capture_delta", None)
            delta = capture() if capture is not None else None
            if delta is not None:
                return kind, delta
            kind = "base"  # tracking invalidated: anchor a fresh chain
        if kind == "base":
            capture = getattr(self.committed, "capture_base", None)
            if capture is not None:
                return kind, capture()
            kind = "full"
        return kind, self.committed.snapshot()

    def _tick_watchdog(self) -> None:
        if self.recovering:
            return
        if self.rescaling:
            # A migration can stall exactly like a batch (dead worker,
            # dropped transfer).  Abort the attempt and run ordinary
            # recovery — it restarts the workers, fences stale installs
            # via their incarnations, and re-queues the target.
            if (self.sim.now - self._rescale_progress_at
                    >= self.config.failure_detect_ms):
                self.rescale_aborts += 1
                self.recover()
            return
        oldest = self.active
        if oldest is None:
            return
        stalled_since = max(oldest.started_at, oldest.last_progress)
        if self.sim.now - stalled_since >= self.config.failure_detect_ms:
            self.recover()

    def recover(self) -> None:
        """Restore the latest recoverable snapshot and replay the
        source.  The whole epoch pipeline is abandoned — every in-flight
        batch, pinned view and footprint — not just the committing
        batch.

        In incremental mode "restore" means resolving the cut's delta
        chain over its base; a torn chain is repaired by replaying the
        commit changelog over the nearest intact ancestor, and failing
        that recovery falls back to the last complete chain (an older
        cut — the rewound source replays the difference)."""
        changelog = (self.changelog
                     if self.config.snapshot_mode == "incremental"
                     and self.config.changelog_enabled else None)
        snapshot, state_payload = \
            self.snapshots.latest_recoverable(changelog)
        assert snapshot is not None  # start() always takes one
        started_at = self.sim.now
        self.recovering = True
        self.recoveries += 1
        self._recovery_epoch += 1
        epoch = self._recovery_epoch
        self._abandon_pipeline()
        self.pending.clear()
        self._epoch_buffer.clear()
        # Abort any in-flight rescale and re-queue its target: the
        # migration re-runs from scratch against the restored state.
        self._rescale_epoch += 1
        self.rescaling = False
        if self._rescale_target is not None:
            self._rescale_requests.insert(0, self._rescale_target)
            self._rescale_target = None
        # Replay must route exactly as the original execution did, so
        # the routing table is restored before any worker restarts.
        if snapshot.assignment is not None:
            self.committed.restore_assignment(snapshot.assignment)
            self.hooks.set_worker_count(snapshot.assignment[0])
        self.hooks.restore_workers()
        self.committed.restore(state_payload)
        # Records past the restored cut describe the rolled-back
        # timeline; replay re-creates their effects under new batch ids.
        self.changelog.rewind_to(snapshot.changelog_seq)
        # The next cut must re-anchor: chaining it to a pre-crash
        # (possibly torn) parent would leave it unresolvable.
        self.snapshots.reset_chain()
        self.replied = set(snapshot.replied)
        self.admitted = set(snapshot.admitted)
        self.pending = [txn.fresh_copy() for txn in snapshot.pending]
        # Committed-but-unflushed replies are channel state: their
        # requests are admitted (replay drops them at the ingress) and
        # their effects are in the restored store, so losing the buffer
        # would lose the replies forever.  Re-buffer them; the epoch
        # flush re-emits and the egress dedup absorbs any the client
        # already saw before the crash.
        self._epoch_buffer = list(snapshot.epoch_buffer)
        # Batch ids stay monotonic across recoveries (never restored):
        # a stale in-flight report can therefore never collide with a
        # post-recovery batch.  The committed-store version label tracks
        # them: everything below the next batch id counts as closed.
        self._last_closed = self._batch_seq - 1
        if self.views is not None:
            # Views rewind with the store: nothing from the abandoned
            # pipeline may survive; replay re-feeds its effects under
            # new batch ids.  The cut's sidecar carries every plan's
            # operator memos as of exactly the restored store state
            # (the changelog was rewound to the same position), so
            # matching plans resume incrementally; plans the sidecar
            # does not cover rebuild from a scan.
            self.views.on_restore(
                self._last_closed, at_ms=self.sim.now,
                sidecar=getattr(snapshot, "views_state", None))
        self.hooks.source_seek(snapshot.source_offsets)

        def resume() -> None:
            if epoch != self._recovery_epoch or self.crashed:
                return  # superseded by a later recovery or a crash
            self.recovering = False
            self.recovery_log.append((started_at, self.sim.now))

        pause = self.config.recovery_pause_ms
        if self.config.restore_cost_ms_per_key:
            # Model restore work growing with the restored state: the
            # resolved payload carries the same keys in either snapshot
            # mode, so the cost — like everything else on the recovery
            # path — is mode-independent and traces stay byte-identical.
            pause += (self.config.restore_cost_ms_per_key
                      * payload_keys(state_payload))
        self.sim.schedule(pause, resume)
