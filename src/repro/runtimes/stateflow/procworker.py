"""Real-process StateFlow workers (the ``process`` spawner).

Each worker runs in its own forked OS process and talks to the
coordinator's process over a duplex ``multiprocessing`` pipe carrying
the batched binary frames of :mod:`repro.substrates.wire`.  On the
coordinator side, :class:`ProcessWorkerProxy` mirrors the full
:class:`~repro.runtimes.stateflow.worker.Worker` API, so the runtime's
dispatch/commit/migration hooks and the coordinator protocol are
identical across substrates — only what sits behind the method calls
changes.

State model
-----------

The child holds a **full-store replica**: a flat ``(entity, key) ->
state`` dict seeded from a committed-store snapshot and kept current by
broadcasting every committed write bucket to every live child.  The
parent's :class:`~repro.runtimes.state.PartitionedStore` stays the
single authority — snapshots, recovery restores and slot migration all
happen against it in the parent, exactly as in the simulator — so a
child crash loses nothing but in-flight work.

Replica reads can be stale relative to an in-flight older batch (the
child has no version-pinned views), which is exactly the hazard Aria's
deterministic conflict check already handles: any transaction whose
read set overlaps an in-flight older batch's writes is aborted as stale
and re-run in the fallback, so stale replica reads never commit.

Incarnation fencing carries over unchanged: every frame is stamped with
the worker incarnation it was addressed to, a recovery tears the child
down and respawns it under a bumped incarnation, and responses from the
old incarnation are dropped by the proxy.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from typing import Any, Callable

from ...compiler.codegen import CompiledEntity
from ...ir.events import Event
from ...substrates.wire import (
    Ack,
    ApplyWrites,
    Deliver,
    ExecuteSingleKey,
    Out,
    Seed,
    Shutdown,
    SingleKeyDone,
    decode_frame,
    encode_frame,
)
from ..executor import OperatorExecutor
from ..state import StateBackend, fast_deepcopy, materialize_snapshot
from .state_backend import AriaStateView

#: Fork, not spawn: the child inherits the compiled program (closures
#: and generated classes are not picklable) and starts in milliseconds.
_MP_CONTEXT = multiprocessing.get_context("fork")


class ReplicaStore:
    """The child's flat committed-state replica.

    Same read/write isolation convention as the parent backends: values
    are isolated with :func:`~repro.runtimes.state.fast_deepcopy` on the
    way in and out, so executor-side mutation of a returned dict can
    never corrupt the replica.
    """

    def __init__(self) -> None:
        self.store: dict[tuple[str, Any], dict] = {}

    def replace(self, payload: dict) -> None:
        self.store = {key: fast_deepcopy(state)
                      for key, state in payload.items()}

    def get(self, entity: str, key: Any) -> dict | None:
        state = self.store.get((entity, key))
        return fast_deepcopy(state) if state is not None else None

    def put(self, entity: str, key: Any, state: dict) -> None:
        self.store[(entity, key)] = fast_deepcopy(state)

    def create(self, entity: str, key: Any, state: dict) -> None:
        self.put(entity, key, state)

    def exists(self, entity: str, key: Any) -> bool:
        return (entity, key) in self.store

    def delete(self, entity: str, key: Any) -> None:
        self.store.pop((entity, key), None)

    def apply_writes(self, writes: dict) -> None:
        for (entity, key), state in writes.items():
            self.put(entity, key, state)


class RecordingStore:
    """Write-capture overlay for the single-key phase: reads hit the
    replica (through this store's own writes first), writes land in the
    replica *and* in :attr:`writes` so the parent can install them into
    the authoritative store."""

    def __init__(self, replica: ReplicaStore) -> None:
        self._replica = replica
        self.writes: dict[tuple[str, Any], dict] = {}

    def get(self, entity: str, key: Any) -> dict | None:
        return self._replica.get(entity, key)

    def put(self, entity: str, key: Any, state: dict) -> None:
        self._replica.put(entity, key, state)
        self.writes[(entity, key)] = fast_deepcopy(state)

    def create(self, entity: str, key: Any, state: dict) -> None:
        self.put(entity, key, state)

    def exists(self, entity: str, key: Any) -> bool:
        return self._replica.exists(entity, key)


def _worker_main(conn: Any, index: int,
                 entities: dict[str, CompiledEntity],
                 check_state_serializable: bool) -> None:  # pragma: no cover
    """Child-process main loop: decode one frame, act, reply.

    Untraced by coverage (it runs in a forked process); its behaviour is
    exercised end-to-end by the process-spawner smoke and parity tests.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns shutdown
    executor = OperatorExecutor(
        entities, check_state_serializable=check_state_serializable)
    replica = ReplicaStore()
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            return  # parent died or tore us down
        message = decode_frame(frame)
        if isinstance(message, Shutdown):
            return
        if isinstance(message, Seed):
            replica.replace(message.payload)
        elif isinstance(message, Deliver):
            out: list[Event] = []
            for event in message.events:
                view = AriaStateView(replica, event.txn)
                out.extend(executor.handle(event, view))
            if out:
                try:
                    conn.send_bytes(encode_frame(
                        Out(out, incarnation=message.incarnation)))
                except (BrokenPipeError, OSError):
                    return
        elif isinstance(message, ApplyWrites):
            replica.apply_writes(message.writes)
            if message.ack:
                try:
                    conn.send_bytes(encode_frame(
                        Ack(message.seq, incarnation=message.incarnation)))
                except (BrokenPipeError, OSError):
                    return
        elif isinstance(message, ExecuteSingleKey):
            recording = RecordingStore(replica)
            replies: list[Event] = []
            for event in message.events:
                replies.extend(executor.handle(event, recording))
            try:
                conn.send_bytes(encode_frame(SingleKeyDone(
                    message.seq, replies=replies, writes=recording.writes,
                    incarnation=message.incarnation)))
            except (BrokenPipeError, OSError):
                return
        # CaptureSlot/InstallSlot never reach the child: slot migration
        # runs against the parent's authoritative store (see proxy).


class ProcessWorkerProxy:
    """Parent-side stand-in for a worker process.

    Mirrors the :class:`~repro.runtimes.stateflow.worker.Worker` surface
    (``deliver``/``apply_writes``/``execute_single_key``/slot migration/
    failure model) so the StateFlow runtime's hooks work unchanged.

    Messaging is **coalesced**: ``deliver`` calls buffer into an outbox
    that a zero-delay flush turns into a single :class:`Deliver` frame —
    an epoch's worth of execution events crosses the pipe as one frame,
    one pickle, instead of one Python object copy per message.
    """

    def __init__(self, index: int, kernel: Any,
                 committed: Any,
                 entities: dict[str, CompiledEntity],
                 emit: Callable[[Event], None],
                 *, check_state_serializable: bool = False,
                 peers: Callable[[], list["ProcessWorkerProxy"]]
                 = lambda: []):
        self.index = index
        self.sim = kernel
        self.alive = True
        self.retired = False
        self.incarnation = 0
        self.events_processed = 0
        self.writes_applied = 0
        self.slots_captured = 0
        self.slots_installed = 0
        self.stale_executions_dropped = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self._committed = committed
        #: This worker's slice of the authoritative store — the object
        #: commit-phase writes and slot migration mutate, same as the
        #: simulator Worker's ``store``.
        self.store: StateBackend = committed.partition(index)
        self._entities = entities
        self._emit = emit
        self._check_serializable = check_state_serializable
        self._peers = peers
        self._seq = 0
        self._pending: dict[int, Callable[[Any], None]] = {}
        self._outbox: list[Event] = []
        self._flush_scheduled = False
        self._process: Any = None
        self._conn: Any = None
        self._spawn()

    # -- child lifecycle -------------------------------------------------
    def _spawn(self) -> None:
        parent_conn, child_conn = _MP_CONTEXT.Pipe(duplex=True)
        process = _MP_CONTEXT.Process(
            target=_worker_main,
            args=(child_conn, self.index, self._entities,
                  self._check_serializable),
            name=f"stateflow-worker-{self.index}", daemon=True)
        process.start()
        child_conn.close()
        self._process = process
        self._conn = parent_conn
        self.sim.register_connection(parent_conn, self._on_raw)
        # Seed on the next kernel turn, not inline: at construction time
        # the committed store may still be empty (preload runs after the
        # runtime builds its workers), and during recovery the restore
        # that must precede the seed happens later in the same
        # synchronous recover() call.
        self.sim.schedule(0, self._reseed)

    def _teardown(self) -> None:
        if self._conn is not None:
            self.sim.unregister_connection(self._conn)
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None
        if self._process is not None:
            process = self._process
            self._process = None
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - last resort
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=5.0)
        self._pending.clear()
        self._outbox.clear()
        self._flush_scheduled = False

    def _reseed(self) -> None:
        if not self.alive or self._conn is None:
            return
        payload = materialize_snapshot(self._committed.snapshot())
        self._send(Seed(payload, incarnation=self.incarnation))

    # -- wire plumbing ---------------------------------------------------
    def _send(self, message: Any) -> None:
        if self._conn is None:
            return
        frame = encode_frame(message)
        try:
            self._conn.send_bytes(frame)
        except (BrokenPipeError, OSError):
            # Child died: the coordinator's failure detector will notice
            # the missing acks and drive recovery; nothing to do here.
            return
        self.frames_sent += 1
        self.bytes_sent += len(frame)

    def _on_raw(self, payload: bytes) -> None:
        message = decode_frame(payload)
        self.frames_received += 1
        if getattr(message, "incarnation", self.incarnation) \
                != self.incarnation:
            return  # response from a pre-recovery incarnation
        if not self.alive:
            return
        if isinstance(message, Out):
            self.events_processed += len(message.events)
            for event in message.events:
                self._emit(event)
        elif isinstance(message, (Ack, SingleKeyDone)):
            handler = self._pending.pop(message.seq, None)
            if handler is not None:
                handler(message)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- Worker API: execution phase ------------------------------------
    def deliver(self, event: Event) -> None:
        if not self.alive or self._conn is None:
            return
        self._outbox.append(event)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.sim.schedule(0, self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self.alive or not self._outbox:
            self._outbox.clear()
            return
        events, self._outbox = self._outbox, []
        self._send(Deliver(events, incarnation=self.incarnation))

    # -- Worker API: single-key phase -----------------------------------
    def execute_single_key(self, events: list[Event],
                           on_done: Callable[[list[Event]], None],
                           *, incarnation: int | None = None) -> None:
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return
        seq = self._next_seq()

        def finish(message: SingleKeyDone) -> None:
            self.events_processed += len(events)
            # The child executed against its replica; the write-backs
            # must land in the parent's authoritative store too.
            if message.writes:
                self.store.apply_writes(message.writes)
            on_done(message.replies)

        self._pending[seq] = finish
        self._send(ExecuteSingleKey(events, seq=seq,
                                    incarnation=self.incarnation))

    # -- Worker API: commit phase ---------------------------------------
    def apply_writes(self, writes: dict, on_done: Callable[[], None],
                     *, incarnation: int | None = None) -> None:
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return
        # Authoritative store first (parent-side, synchronous): snapshot
        # cuts and recovery read this store, exactly as in the simulator.
        self.store.apply_writes(writes)
        self.writes_applied += len(writes)
        # Replicate the bucket to every live child so all replicas track
        # the full committed store; only the owner's copy carries an ack.
        for peer in self._peers():
            if peer is not self and peer.alive:
                peer.replicate_writes(writes)
        seq = self._next_seq()
        self._pending[seq] = lambda message: on_done()
        self._send(ApplyWrites(writes, seq=seq,
                               incarnation=self.incarnation, ack=True))

    def replicate_writes(self, writes: dict) -> None:
        """Install another owner's committed bucket into this worker's
        child replica (no ack, no authoritative-store touch)."""
        if not self.alive:
            return
        self._send(ApplyWrites(writes, seq=0,
                               incarnation=self.incarnation, ack=False))

    # -- Worker API: slot migration (parent-side) -----------------------
    def capture_slot(self, slot: int, on_done: Callable[[Any], None],
                     *, incarnation: int | None = None,
                     mode: str = "full") -> None:
        """Children replicate the *full* store, so migration never has
        to move data between processes: capture reads the authoritative
        slice in the parent and acks on the next kernel turn (preserving
        the hooks' asynchronous shape)."""
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return
        token = self.incarnation

        def capture() -> None:
            if not self.alive or token != self.incarnation:
                return
            self.slots_captured += 1
            on_done(self.store.capture_slot(slot, mode))

        self.sim.schedule(0, capture)

    def install_slot(self, slot: int, fragment: Any,
                     on_done: Callable[[], None],
                     *, incarnation: int | None = None) -> None:
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return
        token = self.incarnation

        def install() -> None:
            if not self.alive or token != self.incarnation:
                return
            self.store.install_slot(slot, fragment)
            self.slots_installed += 1
            on_done()

        self.sim.schedule(0, install)

    # -- failure model ---------------------------------------------------
    def kill(self) -> None:
        """Real crash: the OS process dies, in-flight work and the
        replica die with it."""
        self.alive = False
        self._teardown()

    def restart(self) -> None:
        self._teardown()
        self.alive = not self.retired
        self.incarnation += 1
        if self.alive:
            self._spawn()

    # -- elasticity ------------------------------------------------------
    def retire(self) -> None:
        self.retired = True
        self.alive = False
        self._teardown()

    def revive(self) -> None:
        if not self.retired:
            return
        self.retired = False
        self.alive = True
        self.incarnation += 1
        self._spawn()

    # -- shutdown --------------------------------------------------------
    def shutdown(self) -> None:
        """Orderly close (runtime.close()): ask the child to exit, then
        reap it."""
        if self._conn is not None:
            self._send(Shutdown())
        self.alive = False
        self._teardown()
