"""Aria-style deterministic concurrency control (paper Section 3).

"We achieve consistency by implementing an extension of Aria [35], a
deterministic transaction protocol."  Following Aria (Lu et al., VLDB
2020):

- transactions execute in *batches* against the batch-start snapshot,
  buffering writes and recording read/write sets;
- at the commit barrier, per-key *reservations* are resolved in favour of
  the smallest transaction id (TID);
- a transaction aborts on a WAW conflict (lost write reservation) or a
  RAW conflict (it read a key a smaller-TID transaction wrote);
- with Aria's *deterministic reordering* optimisation, a RAW conflict is
  tolerated unless the transaction also has a WAR conflict (its write is
  read by a smaller-TID transaction) — pure WAR patterns commit by
  logically reordering the batch;
- aborted transactions re-enter the next batch with their original
  priority, so they eventually win their reservations (no starvation).

This module is pure protocol logic — no simulation, no I/O — so it is
directly unit- and property-testable.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Hashable

from ...ir.events import TxnContext

Key = tuple[str, Hashable]  # (entity, key)


class TxnOutcome(Enum):
    COMMIT = "commit"
    ABORT_WAW = "abort-waw"
    ABORT_RAW = "abort-raw"
    #: Cross-batch conflict under pipelined epochs: the transaction read
    #: a key that a batch committed *after* this batch's snapshot wrote.
    #: Its reads are stale, and no reordering can save it — the writer
    #: batch already externalized — so it re-executes.
    ABORT_STALE = "abort-stale"


@dataclass(slots=True)
class ConflictReport:
    """Commit-phase decision for one batch."""

    commits: list[int] = field(default_factory=list)
    aborts: dict[int, TxnOutcome] = field(default_factory=dict)

    @property
    def abort_count(self) -> int:
        return len(self.aborts)


@dataclass(slots=True)
class BatchMember:
    """One transaction's contribution to conflict detection."""

    tid: int
    read_set: frozenset[Key]
    write_set: frozenset[Key]
    #: Failed transactions (user exception) reserve nothing and always
    #: "commit" (with no writes); they never force others to abort.
    failed: bool = False

    @classmethod
    def from_context(cls, ctx: TxnContext, *, failed: bool = False,
                     ) -> "BatchMember":
        return cls(tid=ctx.tid,
                   read_set=frozenset(ctx.read_set),
                   write_set=frozenset() if failed
                   else frozenset(ctx.write_set),
                   failed=failed)


def build_reservations(members: list[BatchMember],
                       ) -> tuple[dict[Key, int], dict[Key, int]]:
    """Smallest-TID read and write reservation tables for a batch."""
    read_res: dict[Key, int] = {}
    write_res: dict[Key, int] = {}
    for member in members:
        if member.failed:
            continue
        for key in member.read_set:
            current = read_res.get(key)
            if current is None or member.tid < current:
                read_res[key] = member.tid
        for key in member.write_set:
            current = write_res.get(key)
            if current is None or member.tid < current:
                write_res[key] = member.tid
    return read_res, write_res


def decide(members: list[BatchMember], *, reordering: bool = True,
           stale_keys: frozenset[Key] | set[Key] = frozenset(),
           ) -> ConflictReport:
    """Aria's commit decision for a batch.

    Without reordering: abort iff WAW or RAW.
    With reordering:    abort iff WAW or (RAW and WAR).

    ``stale_keys`` is the pipelined-epoch extension: the union of write
    footprints of every batch that committed between this batch's
    snapshot and its own commit barrier.  A member that read any of them
    executed against a stale snapshot and aborts (``ABORT_STALE``) — even
    a *failed* member, because its failure may itself be an artifact of
    the stale read.  Cross-batch WAW needs no check: writes install in
    batch order, so a blind overwrite is already serialized correctly.
    """
    read_res, write_res = build_reservations(members)
    report = ConflictReport()
    for member in members:
        if stale_keys and not stale_keys.isdisjoint(member.read_set):
            report.aborts[member.tid] = TxnOutcome.ABORT_STALE
            continue
        if member.failed:
            report.commits.append(member.tid)
            continue
        waw = any(write_res.get(key, member.tid) < member.tid
                  for key in member.write_set)
        raw = any(write_res.get(key, member.tid) < member.tid
                  for key in member.read_set)
        war = any(read_res.get(key, member.tid) < member.tid
                  for key in member.write_set)
        if waw:
            report.aborts[member.tid] = TxnOutcome.ABORT_WAW
        elif raw and (war or not reordering):
            report.aborts[member.tid] = TxnOutcome.ABORT_RAW
        else:
            report.commits.append(member.tid)
    return report


def serializable_order(members: list[BatchMember],
                       report: ConflictReport) -> list[int]:
    """An equivalent serial order for the batch's committed transactions.

    With reordering, committed RAW transactions logically execute *before*
    the writers they read under; a topological order by TID with RAW
    transactions first realises this.  Used by tests to check
    serializability, not by the runtime itself.
    """
    committed = [m for m in members if m.tid in set(report.commits)
                 and not m.failed]
    # Every committed reader of a key saw the batch-start value, so it
    # serializes *before* the (unique, WAW-free) committed writer of that
    # key: topologically order by the reader -> writer edges.  Aria's
    # commit rules guarantee this graph is acyclic.
    writer_of: dict[Key, int] = {}
    for member in committed:
        for key in member.write_set:
            writer_of[key] = member.tid
    successors: dict[int, set[int]] = {m.tid: set() for m in committed}
    indegree: dict[int, int] = {m.tid: 0 for m in committed}
    for member in committed:
        for key in member.read_set:
            writer = writer_of.get(key)
            if writer is not None and writer != member.tid:
                if writer not in successors[member.tid]:
                    successors[member.tid].add(writer)
                    indegree[writer] += 1
    # Smallest-TID-first topological order via a heap: O((n + e) log n)
    # instead of the O(n^2 log n) pop(0)-and-resort loop this replaces.
    ready = [tid for tid, degree in indegree.items() if degree == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        tid = heapq.heappop(ready)
        order.append(tid)
        for successor in successors[tid]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                heapq.heappush(ready, successor)
    if len(order) != len(committed):  # pragma: no cover - theorem guard
        raise ValueError("reader->writer graph of a committed batch "
                         "must be acyclic")
    return order


@dataclass(slots=True)
class AriaStats:
    """Cumulative protocol statistics (exposed by the runtime/benches)."""

    batches: int = 0
    transactions: int = 0
    commits: int = 0
    aborts_waw: int = 0
    aborts_raw: int = 0
    #: Cross-batch stale-read aborts (pipelined epochs only).
    aborts_stale: int = 0
    retries: int = 0
    fallback_runs: int = 0
    #: Transactions that took the single-key path (no reservations).
    single_key: int = 0
    #: Single-key transactions whose key the autoscaler currently
    #: classifies as *hot* — the zipfian head served by the fast path.
    single_key_hot: int = 0
    #: Pipelined-epoch telemetry: how many batches were in flight at
    #: each seal ({depth: seals observed at that depth}) ...
    depth_hist: dict[int, int] = field(default_factory=dict)
    #: ... and how long execution-complete batches sat waiting for the
    #: ordered commit region (the pipeline's structural stall).
    stall_ms: float = 0.0
    #: Batch-latency telemetry for the autoscaler: cumulative
    #: open->close latency over ``closed_batches`` closed batches.
    closed_batches: int = 0
    batch_latency_ms: float = 0.0
    #: Commit-locus telemetry: committed transactions per state slot and
    #: per key (cumulative; the autoscaler windows these by deltas).
    #: Populated only while an autoscaler is attached — the commit path
    #: stays allocation-free otherwise.
    slot_commits: dict[int, int] = field(default_factory=dict)
    key_commits: dict[Key, int] = field(default_factory=dict)

    def observe(self, report: ConflictReport) -> None:
        self.batches += 1
        self.transactions += len(report.commits) + report.abort_count
        self.commits += len(report.commits)
        for outcome in report.aborts.values():
            if outcome is TxnOutcome.ABORT_WAW:
                self.aborts_waw += 1
            elif outcome is TxnOutcome.ABORT_STALE:
                self.aborts_stale += 1
            else:
                self.aborts_raw += 1

    def observe_seal(self, inflight_depth: int) -> None:
        """Record the pipeline depth (batches in flight) at a seal."""
        self.depth_hist[inflight_depth] = (
            self.depth_hist.get(inflight_depth, 0) + 1)

    def observe_close(self, latency_ms: float) -> None:
        """Record one batch's open->close latency."""
        self.closed_batches += 1
        self.batch_latency_ms += latency_ms

    def observe_locus(self, slot: int, key: Key) -> None:
        """Record the state locus of one committed transaction."""
        self.slot_commits[slot] = self.slot_commits.get(slot, 0) + 1
        self.key_commits[key] = self.key_commits.get(key, 0) + 1

    @property
    def abort_rate(self) -> float:
        if self.transactions == 0:
            return 0.0
        return (self.aborts_waw + self.aborts_raw
                + self.aborts_stale) / self.transactions
