"""StateFlow: transactional dataflow runtime (coordinator + workers,
Aria-style deterministic transactions, consistent snapshots)."""

from ..state import (
    CowStateBackend,
    DictStateBackend,
    PartitionedSnapshot,
    PartitionedStore,
    SlotAssignment,
    StateBackend,
    make_state_backend,
)
from .aria import AriaStats, BatchMember, ConflictReport, TxnOutcome, decide
from .coordinator import (
    Coordinator,
    CoordinatorConfig,
    RescaleRecord,
    TxnRecord,
)
from .runtime import StateflowConfig, StateflowRuntime, default_kafka_config
from .snapshots import Snapshot, SnapshotStore
from .state_backend import AriaStateView, CommittedStore
from .worker import Worker

__all__ = [
    "AriaStateView",
    "CowStateBackend",
    "DictStateBackend",
    "PartitionedSnapshot",
    "PartitionedStore",
    "StateBackend",
    "make_state_backend",
    "AriaStats",
    "BatchMember",
    "CommittedStore",
    "ConflictReport",
    "Coordinator",
    "CoordinatorConfig",
    "RescaleRecord",
    "SlotAssignment",
    "Snapshot",
    "SnapshotStore",
    "StateflowConfig",
    "StateflowRuntime",
    "TxnOutcome",
    "TxnRecord",
    "Worker",
    "decide",
    "default_kafka_config",
]
