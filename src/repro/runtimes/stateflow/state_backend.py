"""StateFlow's state backend: committed store + transactional views.

Two layers:

- :class:`CommittedStore` — the authoritative, snapshot-able operator
  state (what Chandy–Lamport-style snapshots persist).
- :class:`AriaStateView` — the per-transaction view used during Aria's
  execution phase: reads come from the batch-start snapshot (the committed
  store, since batch writes only apply at commit) plus the transaction's
  own buffered writes; writes/creates are buffered in the travelling
  :class:`~repro.ir.events.TxnContext`.
"""

from __future__ import annotations

import copy
from typing import Any

from ...core.errors import EntityNotFoundError
from ...ir.events import TxnContext


class CommittedStore:
    """Authoritative entity state, keyed by ``(entity, key)``."""

    def __init__(self) -> None:
        self._data: dict[tuple[str, Any], dict[str, Any]] = {}

    # -- StateAccess protocol -------------------------------------------
    def get(self, entity: str, key: Any) -> dict[str, Any] | None:
        state = self._data.get((entity, key))
        return dict(state) if state is not None else None

    def put(self, entity: str, key: Any, state: dict[str, Any]) -> None:
        self._data[(entity, key)] = dict(state)

    def create(self, entity: str, key: Any, state: dict[str, Any]) -> None:
        self.put(entity, key, state)

    # -- snapshot support -------------------------------------------------
    def snapshot(self) -> dict[tuple[str, Any], dict[str, Any]]:
        """Deep copy of all state (the snapshot payload)."""
        return copy.deepcopy(self._data)

    def restore(self, snapshot: dict[tuple[str, Any], dict[str, Any]]) -> None:
        self._data = copy.deepcopy(snapshot)

    def keys(self) -> list[tuple[str, Any]]:
        return list(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def apply_writes(self, writes: dict[tuple[str, Any], dict[str, Any]]) -> None:
        """Install a committed transaction's buffered writes."""
        for (entity, key), state in writes.items():
            self.put(entity, key, state)


class AriaStateView:
    """A transaction's window onto the store during the execution phase.

    Reads: own buffered writes first, then the committed (batch-start)
    state.  Writes: buffered into the transaction context, never touching
    the committed store.  Every access is recorded for conflict detection.
    """

    def __init__(self, committed: CommittedStore, txn: TxnContext):
        self._committed = committed
        self._txn = txn

    def get(self, entity: str, key: Any) -> dict[str, Any] | None:
        self._txn.record_read(entity, key)
        buffered = self._txn.write_set.get((entity, key))
        if buffered is not None:
            return dict(buffered)
        return self._committed.get(entity, key)

    def put(self, entity: str, key: Any, state: dict[str, Any]) -> None:
        self._txn.record_write(entity, key, dict(state))

    def create(self, entity: str, key: Any, state: dict[str, Any]) -> None:
        if (self._committed.get(entity, key) is not None
                or (entity, key) in self._txn.write_set):
            raise EntityNotFoundError(
                f"entity {entity}/{key!r} already exists")
        self._txn.record_create(entity, key, dict(state))
