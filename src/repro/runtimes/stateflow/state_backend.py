"""StateFlow's state backend: committed store + transactional views.

Two layers:

- the committed store — the authoritative, snapshot-able operator state
  (what Chandy–Lamport-style snapshots persist).  Since the state-backend
  refactor this is any :class:`~repro.runtimes.state.StateBackend`
  (``dict`` or copy-on-write ``cow``), usually one partition of a
  :class:`~repro.runtimes.state.PartitionedStore` owned by a single
  worker; :class:`CommittedStore` remains as the dict-backed default.
- :class:`AriaStateView` — the per-transaction view used during Aria's
  execution phase: reads come from the batch-start snapshot (the committed
  store, since batch writes only apply at commit) plus the transaction's
  own buffered writes; writes/creates are buffered in the travelling
  :class:`~repro.ir.events.TxnContext`.
"""

from __future__ import annotations

from typing import Any

from ...core.errors import EntityAlreadyExistsError
from ...ir.events import TxnContext
from ..state import DictStateBackend, StateBackend


class CommittedStore(DictStateBackend):
    """Authoritative entity state, keyed by ``(entity, key)`` — the
    dict-backed default committed store (see module docstring)."""


class AriaStateView:
    """A transaction's window onto the store during the execution phase.

    Reads: own buffered writes first, then the committed (batch-start)
    state.  Writes: buffered into the transaction context, never touching
    the committed store.  Every access is recorded for conflict detection.
    """

    def __init__(self, committed: StateBackend, txn: TxnContext):
        self._committed = committed
        self._txn = txn

    def get(self, entity: str, key: Any) -> dict[str, Any] | None:
        self._txn.record_read(entity, key)
        buffered = self._txn.write_set.get((entity, key))
        if buffered is not None:
            return dict(buffered)
        return self._committed.get(entity, key)

    def put(self, entity: str, key: Any, state: dict[str, Any]) -> None:
        self._txn.record_write(entity, key, dict(state))

    def create(self, entity: str, key: Any, state: dict[str, Any]) -> None:
        # The duplicate-key check is a read of the key's existence:
        # record it so conflict detection (including the pipelined
        # cross-batch stale check) sees creates that raced a writer.
        self._txn.record_read(entity, key)
        if (self._committed.get(entity, key) is not None
                or (entity, key) in self._txn.write_set):
            raise EntityAlreadyExistsError(
                f"entity {entity}/{key!r} already exists")
        self._txn.record_create(entity, key, dict(state))
