"""A StateFlow worker: one core executing operator partitions.

Workers own partitions of every operator (partitioning by entity key):
each worker holds its own partition of the
:class:`~repro.runtimes.state.PartitionedStore`, executes state-machine
blocks against the transaction's
:class:`~repro.runtimes.stateflow.state_backend.AriaStateView`, and
exchanges events over direct channels — the "internal function-to-function
communication" that lets StateFlow avoid Kafka round trips (Section 4).
Commit-phase ``apply_writes`` therefore only ever touches the owning
worker's partition backend.
"""

from __future__ import annotations

from typing import Any, Callable

from ...ir.events import Event
from ...substrates.simulation import CpuPool, Simulation
from ..executor import OperatorExecutor
from ..state import CowStateBackend, StateBackend
from .state_backend import AriaStateView


class Worker:
    """One single-core StateFlow worker."""

    def __init__(self, index: int, sim: Simulation,
                 executor: OperatorExecutor, store: StateBackend,
                 emit: Callable[[Event], None],
                 *, exec_service_ms: float, state_op_ms: float,
                 committed_reader: StateBackend | None = None):
        self.index = index
        self.sim = sim
        self.cpu = CpuPool(sim, 1, name=f"worker-{index}")
        self.alive = True
        #: Retired workers left the cluster through a rescale: they stay
        #: dead across recoveries (``restart`` skips them) until a later
        #: grow revives them.
        self.retired = False
        #: Bumped by every :meth:`restart` (i.e. every coordinator
        #: ``recover()``): store-mutating messages carry the incarnation
        #: they were addressed to, so a delivery delayed past a recovery
        #: cannot land on the restored store and double-apply a batch
        #: that replay is about to re-execute.  Slot-migration messages
        #: ride the same fence: an install delayed past a recovery (or a
        #: superseded rescale attempt) must not clobber restored state.
        self.incarnation = 0
        self.events_processed = 0
        self.writes_applied = 0
        self.slots_captured = 0
        self.slots_installed = 0
        #: Execution-phase deliveries dropped because their batch's
        #: pinned snapshot view was already released (batch abandoned by
        #: a recovery while the event was in flight).
        self.stale_executions_dropped = 0
        self._executor = executor
        #: This worker's own partition of committed state (it is the only
        #: writer; the coordinator only touches it for snapshot/restore).
        self.store = store
        #: Read-only view of the whole committed store for Aria's
        #: execution phase.  Routing sends every keyed event to its
        #: owner, so reads stay local in practice — but constructors
        #: execute before their key (hence owner) is known, and their
        #: duplicate-key check must see all partitions.
        self._committed_reader = (committed_reader if committed_reader
                                  is not None else store)
        self._emit = emit
        self._exec_service_ms = exec_service_ms
        self._state_op_ms = state_op_ms

    # ------------------------------------------------------------------
    def _committed_view(self, event: Event) -> StateBackend | None:
        """The committed-state window for *event*'s execution: the live
        reader, unless the event's batch was sealed while an older batch
        was still committing — then reads go through the version-pinned
        view of the batch's snapshot (``txn.base``), so mid-flight
        commit-phase writes of older batches stay invisible.  ``None``
        means the pinned view is gone (the batch was abandoned by a
        recovery and its pins released): the event is stale and must be
        dropped, not executed against torn state."""
        txn = event.txn
        if txn is None or txn.base is None:
            return self._committed_reader
        resolve = getattr(self._committed_reader, "view", None)
        if resolve is None:
            return self._committed_reader
        return resolve(txn.base)

    def deliver(self, event: Event) -> None:
        """Entry point: an event arrived over a channel.  Dead workers
        drop everything (the failure model)."""
        if not self.alive:
            return

        def process() -> None:
            if not self.alive:
                return
            reader = self._committed_view(event)
            if reader is None:
                self.stale_executions_dropped += 1
                return
            self.events_processed += 1
            view = AriaStateView(reader, event.txn)
            for outbound in self._executor.handle(event, view):
                self._emit(outbound)

        self.cpu.submit(self._exec_service_ms, process)

    # ------------------------------------------------------------------
    def execute_single_key(self, events: list[Event],
                           on_done: Callable[[list[Event]], None],
                           *, incarnation: int | None = None) -> None:
        """Single-key phase: run *events* serially, in the given
        (TID) order, directly against committed state.  Single-key
        functions have unsplit state machines, so each produces exactly
        one REPLY and touches only its own partition — no reservations,
        no cross-worker traffic."""
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return  # addressed to a pre-recovery incarnation
        token = self.incarnation

        def process() -> None:
            if not self.alive or token != self.incarnation:
                return
            replies: list[Event] = []
            for event in events:
                self.events_processed += 1
                replies.extend(self._executor.handle(event, self.store))
            on_done(replies)

        self.cpu.submit(self._exec_service_ms * max(len(events), 1), process)

    # ------------------------------------------------------------------
    def apply_writes(self, writes: dict[tuple[str, Any], dict[str, Any]],
                     on_done: Callable[[], None],
                     *, incarnation: int | None = None) -> None:
        """Commit phase: install a batch's write sets for the partitions
        this worker owns — only this worker's partition backend is
        touched."""
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return  # addressed to a pre-recovery incarnation
        token = self.incarnation

        def install() -> None:
            if not self.alive or token != self.incarnation:
                return
            self.store.apply_writes(writes)
            self.writes_applied += len(writes)
            on_done()

        self.cpu.submit(self._state_op_ms * max(len(writes), 1), install)

    # ------------------------------------------------------------------
    def _migration_cost_ms(self, slot: int) -> float:
        """CPU to capture/install one slot: O(1) for the cow backend
        (the snapshot is a frozen layer chain), O(keys) for the dict
        backend (deep copy)."""
        backend = self.store.slot_backend(slot)
        if isinstance(backend, CowStateBackend):
            return self._state_op_ms
        return self._state_op_ms * max(len(backend), 1)

    def capture_slot(self, slot: int, on_done: Callable[[Any], None],
                     *, incarnation: int | None = None,
                     mode: str = "full") -> None:
        """Migration source side: snapshot one owned slot and hand the
        fragment to *on_done* (the runtime ships it to the new owner).
        Runs under the coordinator's rescale barrier, so the slot is
        quiescent while it is captured.  ``mode="delta"`` captures only
        the writes since the last durable cut (incremental snapshots) —
        the simulated CPU cost stays the full-capture model either way,
        so full and incremental runs remain trace-identical (the saving
        is accounted in shipped bytes, not simulated time)."""
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return  # addressed to a pre-recovery incarnation
        token = self.incarnation

        def capture() -> None:
            if not self.alive or token != self.incarnation:
                return
            self.slots_captured += 1
            on_done(self.store.capture_slot(slot, mode))

        self.cpu.submit(self._migration_cost_ms(slot), capture)

    def install_slot(self, slot: int, fragment: Any,
                     on_done: Callable[[], None],
                     *, incarnation: int | None = None) -> None:
        """Migration destination side: restore the shipped fragment into
        the slot and ack.  The incarnation fence drops installs delayed
        past a recovery (their fragment predates the restored state)."""
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return
        token = self.incarnation

        def install() -> None:
            if not self.alive or token != self.incarnation:
                return
            self.store.install_slot(slot, fragment)
            self.slots_installed += 1
            on_done()

        self.cpu.submit(self._migration_cost_ms(slot), install)

    # -- failure model ------------------------------------------------------
    def kill(self) -> None:
        self.alive = False

    def restart(self) -> None:
        self.alive = not self.retired
        self.incarnation += 1

    # -- elasticity ---------------------------------------------------------
    def retire(self) -> None:
        """Leave the cluster (rescale shrink): permanently dead until a
        later grow calls :meth:`revive`."""
        self.retired = True
        self.alive = False

    def revive(self) -> None:
        """Rejoin the cluster (rescale grow after an earlier shrink)."""
        if not self.retired:
            return
        self.retired = False
        self.alive = True
        self.incarnation += 1
