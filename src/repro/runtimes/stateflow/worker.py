"""A StateFlow worker: one core executing operator partitions.

Workers own partitions of every operator (partitioning by entity key):
each worker holds its own partition of the
:class:`~repro.runtimes.state.PartitionedStore`, executes state-machine
blocks against the transaction's
:class:`~repro.runtimes.stateflow.state_backend.AriaStateView`, and
exchanges events over direct channels — the "internal function-to-function
communication" that lets StateFlow avoid Kafka round trips (Section 4).
Commit-phase ``apply_writes`` therefore only ever touches the owning
worker's partition backend.
"""

from __future__ import annotations

from typing import Any, Callable

from ...ir.events import Event
from ...substrates.simulation import CpuPool, Simulation
from ..executor import OperatorExecutor
from ..state import StateBackend
from .state_backend import AriaStateView


class Worker:
    """One single-core StateFlow worker."""

    def __init__(self, index: int, sim: Simulation,
                 executor: OperatorExecutor, store: StateBackend,
                 emit: Callable[[Event], None],
                 *, exec_service_ms: float, state_op_ms: float,
                 committed_reader: StateBackend | None = None):
        self.index = index
        self.sim = sim
        self.cpu = CpuPool(sim, 1, name=f"worker-{index}")
        self.alive = True
        #: Bumped by every :meth:`restart` (i.e. every coordinator
        #: ``recover()``): store-mutating messages carry the incarnation
        #: they were addressed to, so a delivery delayed past a recovery
        #: cannot land on the restored store and double-apply a batch
        #: that replay is about to re-execute.
        self.incarnation = 0
        self.events_processed = 0
        self.writes_applied = 0
        self._executor = executor
        #: This worker's own partition of committed state (it is the only
        #: writer; the coordinator only touches it for snapshot/restore).
        self.store = store
        #: Read-only view of the whole committed store for Aria's
        #: execution phase.  Routing sends every keyed event to its
        #: owner, so reads stay local in practice — but constructors
        #: execute before their key (hence owner) is known, and their
        #: duplicate-key check must see all partitions.
        self._committed_reader = (committed_reader if committed_reader
                                  is not None else store)
        self._emit = emit
        self._exec_service_ms = exec_service_ms
        self._state_op_ms = state_op_ms

    # ------------------------------------------------------------------
    def deliver(self, event: Event) -> None:
        """Entry point: an event arrived over a channel.  Dead workers
        drop everything (the failure model)."""
        if not self.alive:
            return

        def process() -> None:
            if not self.alive:
                return
            self.events_processed += 1
            view = AriaStateView(self._committed_reader, event.txn)
            for outbound in self._executor.handle(event, view):
                self._emit(outbound)

        self.cpu.submit(self._exec_service_ms, process)

    # ------------------------------------------------------------------
    def execute_single_key(self, events: list[Event],
                           on_done: Callable[[list[Event]], None],
                           *, incarnation: int | None = None) -> None:
        """Single-key phase: run *events* serially, in the given
        (TID) order, directly against committed state.  Single-key
        functions have unsplit state machines, so each produces exactly
        one REPLY and touches only its own partition — no reservations,
        no cross-worker traffic."""
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return  # addressed to a pre-recovery incarnation
        token = self.incarnation

        def process() -> None:
            if not self.alive or token != self.incarnation:
                return
            replies: list[Event] = []
            for event in events:
                self.events_processed += 1
                replies.extend(self._executor.handle(event, self.store))
            on_done(replies)

        self.cpu.submit(self._exec_service_ms * max(len(events), 1), process)

    # ------------------------------------------------------------------
    def apply_writes(self, writes: dict[tuple[str, Any], dict[str, Any]],
                     on_done: Callable[[], None],
                     *, incarnation: int | None = None) -> None:
        """Commit phase: install a batch's write sets for the partitions
        this worker owns — only this worker's partition backend is
        touched."""
        if not self.alive:
            return
        if incarnation is not None and incarnation != self.incarnation:
            return  # addressed to a pre-recovery incarnation
        token = self.incarnation

        def install() -> None:
            if not self.alive or token != self.incarnation:
                return
            self.store.apply_writes(writes)
            self.writes_applied += len(writes)
            on_done()

        self.cpu.submit(self._state_op_ms * max(len(writes), 1), install)

    # -- failure model ------------------------------------------------------
    def kill(self) -> None:
        self.alive = False

    def restart(self) -> None:
        self.alive = True
        self.incarnation += 1
