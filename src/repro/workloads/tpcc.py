"""Partial TPC-C as stateful entities (paper: StateFlow executes "partly
TPC-C").

We implement the NewOrder and Payment transactions over Warehouse,
District, Customer, and Stock entities — enough to exercise multi-entity
transactions, loops over remote calls (NewOrder iterates the order
lines), and cross-partition conflicts.  Order lines are carried as lists
of entity refs; the ``line: Stock = stocks[i]`` annotation pattern tells
the compiler the element type.
"""

from __future__ import annotations

from ..core.entity import entity, transactional
from ..core.refs import EntityRef


@entity
class Warehouse:
    def __init__(self, w_id: str, tax: int):
        self.w_id: str = w_id
        self.tax: int = tax
        self.ytd: int = 0

    def __key__(self):
        return self.w_id

    def collect(self, amount: int) -> int:
        self.ytd += amount
        return self.ytd


@entity
class District:
    def __init__(self, d_id: str, tax: int):
        self.d_id: str = d_id
        self.tax: int = tax
        self.ytd: int = 0
        self.next_o_id: int = 1

    def __key__(self):
        return self.d_id

    def collect(self, amount: int) -> int:
        self.ytd += amount
        return self.ytd

    def next_order_id(self) -> int:
        order_id: int = self.next_o_id
        self.next_o_id += 1
        return order_id


@entity
class Stock:
    def __init__(self, s_id: str, quantity: int, price: int):
        self.s_id: str = s_id
        self.quantity: int = quantity
        self.price: int = price
        self.ytd: int = 0

    def __key__(self):
        return self.s_id

    def take(self, amount: int) -> int:
        """Allocate stock, restocking by 91 when the level would drop
        below 10 (the TPC-C rule); returns the line cost."""
        if self.quantity - amount < 10:
            self.quantity += 91
        self.quantity -= amount
        self.ytd += amount
        return self.price * amount


@entity
class Customer:
    def __init__(self, c_id: str, credit_limit: int):
        self.c_id: str = c_id
        self.balance: int = 0
        self.credit_limit: int = credit_limit
        self.ytd_payment: int = 0
        self.order_count: int = 0

    def __key__(self):
        return self.c_id

    def spend(self, amount: int) -> int:
        self.balance += amount
        self.order_count += 1
        return self.balance

    @transactional
    def payment(self, amount: int, warehouse: Warehouse,
                district: District) -> bool:
        """TPC-C Payment: credit the customer, debit warehouse/district
        year-to-date totals — three entities, atomically."""
        self.balance -= amount
        self.ytd_payment += amount
        w_total: int = warehouse.collect(amount)
        d_total: int = district.collect(amount)
        return w_total >= 0 and d_total >= 0

    @transactional
    def new_order(self, district: District, stocks: list,
                  quantities: list) -> int:
        """TPC-C NewOrder (simplified): draw an order id from the
        district, then take every order line from its stock entity.
        Returns the order total, or -1 when the credit limit blocks it.

        The loop over remote ``Stock.take`` calls exercises the
        compiler's loop splitting with per-iteration state.
        """
        order_id: int = district.next_order_id()
        total: int = 0
        i: int = 0
        while i < len(stocks):
            line: Stock = stocks[i]
            amount: int = quantities[i]
            cost: int = line.take(amount)
            total = total + cost
            i = i + 1
        if self.balance + total > self.credit_limit:
            return -1
        spent: int = self.spend(total)
        return total if spent <= self.credit_limit else total


TPCC_ENTITIES = [Warehouse, District, Stock, Customer]


def stock_key(warehouse: str, item: int) -> str:
    return f"{warehouse}:item-{item:04d}"


def sample_dataset(warehouses: int = 1, districts_per_wh: int = 2,
                   customers_per_district: int = 5, items: int = 20,
                   ) -> dict[str, list[tuple]]:
    """Constructor rows for a small TPC-C universe (for preloading)."""
    rows: dict[str, list[tuple]] = {
        "Warehouse": [], "District": [], "Stock": [], "Customer": []}
    for w in range(warehouses):
        w_id = f"wh-{w}"
        rows["Warehouse"].append((w_id, 7))
        for item in range(items):
            rows["Stock"].append((stock_key(w_id, item), 100, 10 + item))
        for d in range(districts_per_wh):
            d_id = f"{w_id}:d-{d}"
            rows["District"].append((d_id, 9))
            for c in range(customers_per_district):
                rows["Customer"].append((f"{d_id}:c-{c}", 1_000_000))
    return rows


def order_line_refs(warehouse: str, item_indices: list[int]) -> list[EntityRef]:
    return [EntityRef("Stock", stock_key(warehouse, i))
            for i in item_indices]
