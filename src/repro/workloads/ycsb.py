"""YCSB / YCSB+T workloads (paper Section 4).

"We are using workloads A and B from the original YCSB benchmark.  A is
update-heavy — 50% reads 50% updates and B is read-heavy — 95% reads 5%
updates.  In addition, we use the transactional workload T from YCSB+T,
which atomically transfers an amount from one entity's bank account to
another (2 reads and 2 writes).  For the throughput test, we defined a
mixed workload M (45% reads 45% updates 10% transfers)."

The benchmark table is modelled as one stateful entity class,
:class:`Account`, whose ``transfer`` method is the YCSB+T transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.entity import entity, transactional
from ..core.refs import EntityRef
from .distributions import KeyDistribution, make_distribution


@entity
class Account:
    """One YCSB row / YCSB+T bank account."""

    def __init__(self, account_id: str, balance: int):
        self.account_id: str = account_id
        self.balance: int = balance
        self.payload: str = ""

    def __key__(self):
        return self.account_id

    def read(self) -> int:
        """YCSB read: return the row."""
        return self.balance

    def write(self, value: str) -> bool:
        """YCSB update: overwrite the payload field."""
        self.payload = value
        return True

    def add(self, delta: int) -> int:
        """Increment helper (used by exactly-once tests: commutative, so
        the final balance certifies each request applied exactly once)."""
        self.balance += delta
        return self.balance

    def deposit(self, amount: int) -> int:
        self.balance += amount
        return self.balance

    @transactional
    def transfer(self, amount: int, other: Account) -> bool:
        """YCSB+T: atomically move *amount* to *other* (2 reads, 2
        writes across two partitions)."""
        if self.balance < amount:
            return False
        self.balance -= amount
        new_balance: int = other.deposit(amount)
        return new_balance >= 0


#: Operation mixes: (read, update, transfer) shares.
WORKLOAD_MIXES: dict[str, tuple[float, float, float]] = {
    "A": (0.50, 0.50, 0.00),
    "B": (0.95, 0.05, 0.00),
    "T": (0.00, 0.00, 1.00),
    "M": (0.45, 0.45, 0.10),
}


@dataclass(slots=True)
class Operation:
    """One generated request."""

    kind: str            # "read" | "update" | "transfer"
    ref: EntityRef
    method: str
    args: tuple

    @property
    def label(self) -> str:
        return self.kind


class YcsbWorkload:
    """Generates YCSB operations over ``record_count`` accounts."""

    def __init__(self, name: str, record_count: int = 1000,
                 distribution: str = "zipfian", seed: int = 11,
                 theta: float = 0.99, initial_balance: int = 1_000_000,
                 transfer_amount: int = 1):
        if name not in WORKLOAD_MIXES:
            raise ValueError(
                f"unknown YCSB workload {name!r}; pick from "
                f"{sorted(WORKLOAD_MIXES)}")
        self.name = name
        self.record_count = record_count
        self.distribution_name = distribution
        self.mix = WORKLOAD_MIXES[name]
        self.initial_balance = initial_balance
        self.transfer_amount = transfer_amount
        self._keys: KeyDistribution = make_distribution(
            distribution, record_count, seed=seed, theta=theta)
        self._op_rng = self._keys.rng  # one seeded stream for both choices
        self._update_counter = 0

    # -- dataset ----------------------------------------------------------
    @staticmethod
    def account_key(index: int) -> str:
        return f"acct-{index:06d}"

    def dataset_rows(self) -> list[tuple[str, int]]:
        """Constructor arguments for pre-loading all accounts."""
        return [(self.account_key(i), self.initial_balance)
                for i in range(self.record_count)]

    def total_balance(self) -> int:
        """Invariant: transfers conserve this sum."""
        return self.record_count * self.initial_balance

    def ref(self, index: int) -> EntityRef:
        return EntityRef("Account", self.account_key(index))

    # -- operation stream --------------------------------------------------
    def next_operation(self) -> Operation:
        read_share, update_share, _ = self.mix
        draw = self._op_rng.random()
        index = self._keys.next_index()
        if draw < read_share:
            return Operation(kind="read", ref=self.ref(index),
                             method="read", args=())
        if draw < read_share + update_share:
            self._update_counter += 1
            return Operation(kind="update", ref=self.ref(index),
                             method="write",
                             args=(f"value-{self._update_counter}",))
        other = self._keys.next_index()
        while other == index:
            other = self._keys.next_index()
        return Operation(kind="transfer", ref=self.ref(index),
                         method="transfer",
                         args=(self.transfer_amount, self.ref(other)))

    def operations(self, count: int) -> list[Operation]:
        return [self.next_operation() for _ in range(count)]
