"""Open-loop benchmark client (the paper's "benchmark clients").

Drives a simulated runtime with Poisson arrivals at a target request rate
— YCSB's target-throughput mode — recording per-operation end-to-end
latency on the runtime's virtual clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..ir.events import Event
from ..substrates.simulation import MetricRecorder
from .ycsb import YcsbWorkload


@dataclass(slots=True)
class LoadResult:
    """Outcome of one load run."""

    recorder: MetricRecorder
    sent: int
    completed: int
    errors: int
    duration_ms: float
    rps: float

    def percentile(self, pct: float, label: str | None = None) -> float:
        return self.recorder.percentile(pct, label)

    def mean(self, label: str | None = None) -> float:
        return self.recorder.mean(label)

    @property
    def completion_rate(self) -> float:
        return self.completed / self.sent if self.sent else 0.0

    @property
    def achieved_rps(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.completed / (self.duration_ms / 1000.0)


@dataclass(slots=True)
class DriverConfig:
    rps: float = 100.0
    duration_ms: float = 20_000.0
    warmup_ms: float = 2_000.0
    #: Extra virtual time allowed for in-flight requests to finish.
    drain_ms: float = 5_000.0
    #: Stop as soon as every sent request has completed instead of
    #: sitting out the full drain window.  Essential on the wall-clock
    #: substrate, where an idle drain is real seconds, not free virtual
    #: time.
    stop_when_drained: bool = False
    seed: int = 23


class WorkloadDriver:
    """Submits a YCSB operation stream to a simulated runtime.

    The runtime must expose ``sim`` (the simulation) and
    ``submit(ref, method, args, on_reply)`` — both the StateFun-style and
    StateFlow runtimes do.
    """

    def __init__(self, runtime, workload: YcsbWorkload,
                 config: DriverConfig | None = None):
        self.runtime = runtime
        self.workload = workload
        self.config = config or DriverConfig()
        self.recorder = MetricRecorder()
        self.sent = 0
        self.completed = 0
        self.errors = 0
        self._arrivals = random.Random(self.config.seed)
        self._started_at = 0.0

    # ------------------------------------------------------------------
    def _interarrival_ms(self) -> float:
        return self._arrivals.expovariate(self.config.rps) * 1000.0

    def _submit_one(self) -> None:
        operation = self.workload.next_operation()
        submitted_at = self.runtime.sim.now
        label = operation.label
        self.sent += 1

        def on_reply(reply: Event) -> None:
            self.completed += 1
            if reply.error is not None:
                self.errors += 1
            if submitted_at - self._started_at >= self.config.warmup_ms:
                self.recorder.record(self.runtime.sim.now - submitted_at,
                                     self.runtime.sim.now, label=label)

        self.runtime.submit(operation.ref, operation.method, operation.args,
                            on_reply=on_reply)

    def run(self) -> LoadResult:
        """Generate arrivals for ``duration_ms`` of virtual time, then let
        in-flight requests drain; returns latency statistics (samples
        after warm-up only)."""
        sim = self.runtime.sim
        self._started_at = sim.now
        end_at = sim.now + self.config.duration_ms

        def arrive() -> None:
            if sim.now >= end_at:
                return
            self._submit_one()
            sim.schedule(self._interarrival_ms(), arrive)

        sim.schedule(self._interarrival_ms(), arrive)
        if self.config.stop_when_drained:
            sim.run_until(
                lambda: sim.now >= end_at and self.completed >= self.sent,
                max_time=end_at + self.config.drain_ms)
        else:
            sim.run(until=end_at + self.config.drain_ms)
        return LoadResult(
            recorder=self.recorder,
            sent=self.sent,
            completed=self.completed,
            errors=self.errors,
            duration_ms=self.config.duration_ms,
            rps=self.config.rps)
