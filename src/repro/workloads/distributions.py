"""Key-access distributions for the YCSB workloads.

"For the latency tests, we use Zipfian and uniform key distributions"
(Section 4).  The Zipfian generator follows the standard YCSB
implementation (Gray's algorithm with precomputed zeta constants) with the
usual skew parameter theta = 0.99.
"""

from __future__ import annotations

import bisect
import math
import random


class KeyDistribution:
    """Common interface: ``next_index()`` in ``[0, item_count)``."""

    name = "abstract"

    def __init__(self, item_count: int, seed: int = 7):
        if item_count < 1:
            raise ValueError("need at least one item")
        self.item_count = item_count
        self.rng = random.Random(seed)

    def next_index(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class UniformDistribution(KeyDistribution):
    """Every key equally likely."""

    name = "uniform"

    def next_index(self) -> int:
        return self.rng.randrange(self.item_count)


class ZipfianDistribution(KeyDistribution):
    """YCSB-style Zipfian over ``item_count`` keys.

    Rank 0 is the hottest key; with theta=0.99 and 1000 keys the top key
    draws roughly 9-10 % of accesses.  Key ranks are scattered over the
    key space by a multiplicative hash (YCSB's "scrambled" flavour is
    optional via ``scramble=True``) so hot keys do not cluster in one
    partition.

    Gray's rejection-free formula only covers ``theta`` in (0, 1); for
    ``theta >= 1`` (the heavy-skew end of the autoscale ramp, where the
    hot key carries tens of percent of traffic) sampling falls back to
    exact inversion of the precomputed CDF — one ``random()`` plus a
    bisect per draw, equally deterministic under a seeded RNG.
    """

    name = "zipfian"

    def __init__(self, item_count: int, seed: int = 7,
                 theta: float = 0.99, scramble: bool = False):
        super().__init__(item_count, seed)
        if theta <= 0:
            raise ValueError("theta must be > 0")
        self.theta = theta
        self.scramble = scramble
        self._zetan = self._zeta(item_count, theta)
        self._cdf: list[float] | None = None
        if theta < 1:
            self._alpha = 1.0 / (1.0 - theta)
            self._zeta2 = self._zeta(2, theta)
            if item_count <= 2:
                # Gray's eta formula degenerates for tiny key spaces; the
                # two-branch fast path below already covers ranks 0 and 1.
                self._eta = 1.0
            else:
                self._eta = ((1 - (2.0 / item_count) ** (1 - theta))
                             / (1 - self._zeta2 / self._zetan))
        else:
            self._alpha = 0.0
            self._zeta2 = 0.0
            self._eta = 0.0
            total = 0.0
            cdf = []
            for rank in range(1, item_count + 1):
                total += 1.0 / (rank ** theta) / self._zetan
                cdf.append(total)
            cdf[-1] = 1.0  # seal float drift so u=0.999... always lands
            self._cdf = cdf

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_index(self) -> int:
        u = self.rng.random()
        if self._cdf is not None:
            rank = bisect.bisect_right(self._cdf, u)
        else:
            uz = u * self._zetan
            if uz < 1.0:
                rank = 0
            elif uz < 1.0 + 0.5 ** self.theta:
                rank = 1
            else:
                rank = int(self.item_count
                           * (self._eta * u - self._eta + 1) ** self._alpha)
        rank = min(rank, self.item_count - 1)
        if not self.scramble:
            return rank
        return (rank * 2654435761) % self.item_count

    def expected_top_share(self) -> float:
        """Theoretical probability of the hottest key (rank 0)."""
        return 1.0 / self._zetan


def make_distribution(name: str, item_count: int, seed: int = 7,
                      theta: float = 0.99) -> KeyDistribution:
    """Factory: ``"zipfian"`` or ``"uniform"``."""
    if name == "zipfian":
        return ZipfianDistribution(item_count, seed, theta)
    if name == "uniform":
        return UniformDistribution(item_count, seed)
    raise ValueError(f"unknown distribution {name!r}")
