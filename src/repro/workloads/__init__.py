"""Benchmark workloads: YCSB A/B/T/M, key distributions, load driver,
partial TPC-C."""

from .distributions import (
    KeyDistribution,
    UniformDistribution,
    ZipfianDistribution,
    make_distribution,
)
from .generator import DriverConfig, LoadResult, WorkloadDriver
from .tpcc import (
    TPCC_ENTITIES,
    Customer,
    District,
    Stock,
    Warehouse,
    order_line_refs,
    sample_dataset,
    stock_key,
)
from .ycsb import WORKLOAD_MIXES, Account, Operation, YcsbWorkload

__all__ = [
    "Account",
    "Customer",
    "District",
    "DriverConfig",
    "KeyDistribution",
    "LoadResult",
    "Operation",
    "Stock",
    "TPCC_ENTITIES",
    "UniformDistribution",
    "WORKLOAD_MIXES",
    "Warehouse",
    "WorkloadDriver",
    "YcsbWorkload",
    "ZipfianDistribution",
    "make_distribution",
    "order_line_refs",
    "sample_dataset",
    "stock_key",
]
