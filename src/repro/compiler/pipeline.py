"""The compiler pipeline front door (paper Section 2.1).

``compile_program`` runs the whole chain on a set of ``@entity`` classes:

1. pass 1 — per-class static analysis (:mod:`.analysis`);
2. pass 2 — inter-entity call graph (:mod:`.callgraph`);
3. whole-program validation (:mod:`.validation`);
4. normalization + function splitting (:mod:`.normalize`, :mod:`.splitting`);
5. state-machine derivation (:mod:`.state_machine`);
6. IR assembly (:class:`~repro.ir.dataflow.StatefulDataflow`);
7. code generation (:mod:`.codegen`).

The result bundles the engine-independent IR with the locally executable
compiled entities.  ``recompile_from_ir`` performs only steps 4–7 starting
from a deserialized IR (deployment on "a different system").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.descriptors import EntityDescriptor
from ..core.entity import EntityRegistry, REGISTRY
from ..ir.dataflow import EGRESS, INGRESS, Operator, StatefulDataflow
from .analysis import analyze_class
from .callgraph import CallGraph, build_call_graph
from .codegen import CompiledEntity, compile_entity
from .splitting import SplitResult, split_method
from .state_machine import StateMachine
from .tailcalls import eliminate_tail_calls
from .validation import validate_program


@dataclass(slots=True)
class CompiledProgram:
    """Output of the pipeline: IR + executable artefacts."""

    dataflow: StatefulDataflow
    entities: dict[str, CompiledEntity]
    call_graph: CallGraph
    splits: dict[str, dict[str, SplitResult]] = field(default_factory=dict)

    def entity(self, name: str) -> CompiledEntity:
        return self.entities[name]

    def split(self, entity: str, method: str) -> SplitResult:
        return self.splits[entity][method]


def _build_dataflow(descriptors: dict[str, EntityDescriptor],
                    graph: CallGraph,
                    machines: dict[str, dict[str, StateMachine]],
                    parallelism: int) -> StatefulDataflow:
    dataflow = StatefulDataflow()
    for name, descriptor in descriptors.items():
        dataflow.add_operator(Operator(
            name=name, descriptor=descriptor,
            machines=machines[name], parallelism=parallelism))
    for name in descriptors:
        dataflow.add_edge(INGRESS, name, "client invocations")
        dataflow.add_edge(name, EGRESS, "replies")
    for site in graph.sites:
        if site.is_self_call:
            continue
        dataflow.add_edge(
            site.caller_entity, site.callee_entity,
            f"{site.caller_entity}.{site.caller_method} -> "
            f"{site.callee_entity}.{site.callee_method}")
        # Return path of the remote call.
        dataflow.add_edge(
            site.callee_entity, site.caller_entity,
            f"return {site.callee_entity}.{site.callee_method}")
    return dataflow


def compile_descriptors(descriptors: dict[str, EntityDescriptor],
                        *, split_all_control_flow: bool = False,
                        parallelism: int = 1,
                        classes: dict[str, type] | None = None,
                        eliminate_tail_recursion: bool = True,
                        ) -> CompiledProgram:
    """Steps 2-7 of the pipeline, given already-analyzed descriptors."""
    if eliminate_tail_recursion:
        for descriptor in descriptors.values():
            eliminate_tail_calls(descriptor)
    graph = build_call_graph(descriptors)
    validate_program(descriptors, graph)
    needs_split = graph.methods_needing_split()

    splits: dict[str, dict[str, SplitResult]] = {}
    machines: dict[str, dict[str, StateMachine]] = {}
    for name, descriptor in descriptors.items():
        splits[name] = {}
        machines[name] = {}
        for method_name, method in descriptor.methods.items():
            if method.source_ast is None:  # pragma: no cover - defensive
                continue
            result = split_method(
                descriptor, method_name, descriptors, needs_split,
                split_all_control_flow=split_all_control_flow)
            splits[name][method_name] = result
            machines[name][method_name] = StateMachine.from_split(result)

    dataflow = _build_dataflow(descriptors, graph, machines, parallelism)
    compiled_entities = {
        name: compile_entity(descriptor, splits[name], machines[name],
                             cls=(classes or {}).get(name))
        for name, descriptor in descriptors.items()
    }
    return CompiledProgram(dataflow=dataflow, entities=compiled_entities,
                           call_graph=graph, splits=splits)


def compile_program(classes: Iterable[type] | None = None,
                    *, registry: EntityRegistry | None = None,
                    split_all_control_flow: bool = False,
                    parallelism: int = 1,
                    eliminate_tail_recursion: bool = True,
                    ) -> CompiledProgram:
    """Compile ``@entity`` classes into IR + executable dataflow.

    With no arguments, compiles everything in the global registry.
    ``eliminate_tail_recursion`` turns purely tail-recursive methods into
    loops (Section 5) instead of rejecting them.
    """
    if classes is None:
        source_registry = registry if registry is not None else REGISTRY
        class_list = source_registry.classes()
    else:
        class_list = list(classes)
    descriptors = {cls.__name__: analyze_class(cls) for cls in class_list}
    class_map = {cls.__name__: cls for cls in class_list}
    return compile_descriptors(
        descriptors, split_all_control_flow=split_all_control_flow,
        parallelism=parallelism, classes=class_map,
        eliminate_tail_recursion=eliminate_tail_recursion)


def recompile_from_ir(dataflow: StatefulDataflow,
                      *, split_all_control_flow: bool = False,
                      ) -> CompiledProgram:
    """Rebuild executable artefacts from a (deserialized) IR.

    The IR carries each entity's source; analysis and splitting re-run so
    the code objects exist in this process.  This is what a target system
    does after receiving the portable IR.
    """
    descriptors = {
        name: analyze_class(source=operator.descriptor.source,
                            class_name=name)
        for name, operator in dataflow.operators.items()
    }
    # Preserve the transactional markers recorded in the shipped IR (the
    # runtime attribute set by @transactional is not visible in source
    # shipped without decorators).
    for name, operator in dataflow.operators.items():
        for method_name, method in operator.descriptor.methods.items():
            if method.is_transactional and method_name in descriptors[name].methods:
                descriptors[name].methods[method_name].is_transactional = True
    program = compile_descriptors(
        descriptors, split_all_control_flow=split_all_control_flow,
        parallelism=max(op.parallelism for op in dataflow) if dataflow.operators else 1)
    return program
