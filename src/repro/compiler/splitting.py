"""Function splitting (paper Section 2.4).

"The algorithm traverses the statements of a function definition and the
function is split either when a remote call occurs or on a control-flow
structure."  This module builds, for one method, the set of
:class:`~repro.compiler.blocks.FunctionBlock` pieces and the edges between
them.  The paper's running example::

    def buy_item(self, amount: int, item: Item):
        total_price: int = amount * item.price()
        is_removed: bool = item.update_stock(amount)
        return total_price

splits into ``buy_item_0`` (evaluates the arguments of the remote call and
suspends) and ``buy_item_1`` (resumes with the remote return value).

Control flow: an ``if`` yields condition/true-path/false-path blocks; a
``for`` yields iterable-evaluation, body-path and after-loop blocks — the
splitting recurses into the sub-paths (Section 2.4, "Control Flow").  By
default we only split control flow that actually contains remote calls
(local-only constructs execute natively inside one block); pass
``split_all_control_flow=True`` for the paper-literal behaviour — the
ABL-SPLIT ablation benchmark compares the two.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..core.descriptors import EntityDescriptor
from ..core.errors import CompilationError, UnsupportedConstructError
from . import control_flow as cf
from .blocks import (
    CALL_ARGS_VAR,
    CALL_TARGET_VAR,
    CONDITION_VAR,
    RETURN_VALUE_VAR,
    BranchTerminator,
    ConstructTerminator,
    FunctionBlock,
    InvokeTerminator,
    JumpTerminator,
    ReturnTerminator,
)
from .normalize import Normalizer, RemoteCall, contains_remote_call


@dataclass(slots=True)
class SplitResult:
    """The split form of one method."""

    entity_name: str
    method_name: str
    entry: str
    blocks: dict[str, FunctionBlock] = field(default_factory=dict)

    @property
    def was_split(self) -> bool:
        return len(self.blocks) > 1

    def block(self, block_id: str) -> FunctionBlock:
        return self.blocks[block_id]

    def block_ids(self) -> list[str]:
        return list(self.blocks)

    def to_dict(self) -> dict:
        return {
            "entity": self.entity_name,
            "method": self.method_name,
            "entry": self.entry,
            "blocks": {bid: blk.to_dict() for bid, blk in self.blocks.items()},
        }


class MethodSplitter:
    """Splits a single (normalized) method body into function blocks."""

    def __init__(self, descriptor: EntityDescriptor, method_name: str,
                 entities: dict[str, EntityDescriptor],
                 split_methods: set[tuple[str, str]],
                 *, split_all_control_flow: bool = False):
        self._descriptor = descriptor
        self._method_name = method_name
        self._entities = entities
        self._split_methods = split_methods
        self._split_all = split_all_control_flow
        self._normalizer = Normalizer(descriptor, method_name, entities,
                                      split_methods)
        self._blocks: list[FunctionBlock] = []
        self._loop_stack: list[tuple[FunctionBlock, FunctionBlock]] = []
        self._loop_counter = 0

    # ------------------------------------------------------------------
    def split(self) -> SplitResult:
        method = self._descriptor.methods[self._method_name]
        if method.source_ast is None:
            raise CompilationError(
                "method has no source AST", entity=self._descriptor.name,
                method=self._method_name)
        body = self._normalizer.normalize_body(list(method.source_ast.body))
        entry = self._new_block()
        open_block = self._lower(body, entry)
        if open_block is not None:
            self._finish_return(open_block, ast.Constant(value=None))
        self._prune_and_rename()
        result = SplitResult(
            entity_name=self._descriptor.name,
            method_name=self._method_name,
            entry=self._blocks[0].block_id,
            blocks={block.block_id: block for block in self._blocks},
        )
        for block in result.blocks.values():
            block.analyze_dataflow()
        return result

    # ------------------------------------------------------------------
    def _new_block(self) -> FunctionBlock:
        block = FunctionBlock(block_id=f"b{len(self._blocks)}",
                              statements=[])
        self._blocks.append(block)
        return block

    def _classify_stmt(self, statement: ast.stmt) -> tuple[RemoteCall, str | None] | None:
        """Detect the normalized remote-call statement forms.

        Returns ``(call, result_var)`` for ``x = <remote>()`` and
        ``(call, None)`` for a bare ``<remote>()`` expression statement.
        """
        detector = self._normalizer.detector
        if (isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and isinstance(statement.value, ast.Call)):
            call = detector.classify(statement.value)
            if call is not None:
                return call, statement.targets[0].id
        if (isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and isinstance(statement.value, ast.Call)):
            call = detector.classify(statement.value)
            if call is not None:
                return call, statement.target.id
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Call):
            call = detector.classify(statement.value)
            if call is not None:
                return call, None
        return None

    def _observe(self, statement: ast.stmt) -> None:
        """Keep the detector's type environment in step while lowering."""
        detector = self._normalizer.detector
        if (isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)):
            detector.observe_assignment(statement.targets[0].id,
                                        statement.value)
        elif (isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.value is not None):
            detector.observe_assignment(statement.target.id,
                                        statement.value,
                                        statement.annotation)

    # ------------------------------------------------------------------
    def _lower(self, statements: list[ast.stmt],
               current: FunctionBlock) -> FunctionBlock | None:
        """Append *statements* to *current*, splitting as needed.

        Returns the block left "open" when the statement list falls
        through, or ``None`` if every path terminated (return/break/...).
        """
        for index, statement in enumerate(statements):
            remote = self._classify_stmt(statement)
            if remote is not None:
                current = self._lower_remote(statement, remote, current)
                continue
            if isinstance(statement, ast.Return):
                self._finish_return(
                    current, statement.value or ast.Constant(value=None))
                return None
            if isinstance(statement, ast.Break):
                _, after = self._loop_stack[-1]
                current.terminator = JumpTerminator(target=after.block_id)
                return None
            if isinstance(statement, ast.Continue):
                header, _ = self._loop_stack[-1]
                current.terminator = JumpTerminator(target=header.block_id)
                return None
            if isinstance(statement, ast.If) and (
                    self._needs_cf_split(statement.body + statement.orelse)
                    or (self._loop_stack and _contains_loose_escape(
                        statement.body + statement.orelse))):
                # Split when the if has remote calls, or when it carries a
                # break/continue out of a loop that is itself being split
                # (the escape must become an explicit Jump).
                current = self._lower_if(statement, current)
                if current is None:
                    return None
                continue
            if isinstance(statement, ast.While) and self._needs_cf_split(
                    statement.body):
                current = self._lower_while(statement, current)
                continue
            if isinstance(statement, ast.For) and self._needs_cf_split(
                    statement.body):
                current = self._lower_for(statement, current)
                continue
            self._observe(statement)
            current.statements.append(statement)
        return current

    def _needs_cf_split(self, statements: list[ast.stmt]) -> bool:
        if self._split_all:
            return True
        return contains_remote_call(statements, self._normalizer.detector)

    # -- remote calls ----------------------------------------------------
    def _lower_remote(self, statement: ast.stmt, info: tuple[RemoteCall, str | None],
                      current: FunctionBlock) -> FunctionBlock:
        call, result_var = info
        node = call.node
        args_tuple = cf.tuple_expression(list(node.args))
        current.statements.append(
            cf.assign_statement(CALL_ARGS_VAR, args_tuple))
        continuation = self._new_block()
        if call.is_constructor:
            current.terminator = ConstructTerminator(
                entity_type=call.entity_type,
                continuation=continuation.block_id,
                result_var=result_var)
            if result_var is not None:
                self._normalizer.detector.env.bind(result_var,
                                                   call.entity_type)
            return continuation
        receiver = call.receiver
        if receiver is None:  # pragma: no cover - defensive
            raise UnsupportedConstructError(
                "remote method call without receiver",
                entity=self._descriptor.name, method=self._method_name)
        if call.is_self_call:
            # Invoke on this same operator/key; target resolved at runtime.
            receiver_src = "self"
        else:
            current.statements.append(
                cf.assign_statement(CALL_TARGET_VAR, receiver))
            receiver_src = ast.unparse(receiver)
        current.terminator = InvokeTerminator(
            entity_type=call.entity_type,
            method=call.method,
            receiver=receiver_src,
            continuation=continuation.block_id,
            result_var=result_var,
            is_self_call=call.is_self_call)
        if result_var is not None:
            # Bind the result variable to the callee's return type so a
            # returned entity ref remains usable for further remote calls.
            callee = self._entities.get(call.entity_type)
            return_type = None
            if callee is not None and call.method in callee.methods:
                return_type = callee.methods[call.method].return_type
            self._normalizer.detector.env.bind(result_var, return_type)
        return continuation

    # -- control flow ------------------------------------------------------
    def _lower_if(self, statement: ast.If,
                  current: FunctionBlock) -> FunctionBlock | None:
        current.statements.append(
            cf.assign_statement(CONDITION_VAR, statement.test))
        true_block = self._new_block()
        false_block = self._new_block() if statement.orelse else None
        join: FunctionBlock | None = None
        current.terminator = BranchTerminator(
            true_target=true_block.block_id,
            false_target="",  # patched below
        )
        true_end = self._lower(list(statement.body), true_block)
        false_end: FunctionBlock | None
        if false_block is not None:
            false_end = self._lower(list(statement.orelse), false_block)
        else:
            false_end = None
        if true_end is None and false_block is not None and false_end is None:
            # Both paths terminated; no join block needed.
            current.terminator.false_target = false_block.block_id
            return None
        join = self._new_block()
        if false_block is not None:
            current.terminator.false_target = false_block.block_id
            if false_end is not None:
                false_end.terminator = JumpTerminator(target=join.block_id)
        else:
            current.terminator.false_target = join.block_id
        if true_end is not None:
            true_end.terminator = JumpTerminator(target=join.block_id)
        return join

    def _lower_while(self, statement: ast.While,
                     current: FunctionBlock) -> FunctionBlock:
        header = self._new_block()
        current.terminator = JumpTerminator(target=header.block_id)
        header.statements.append(
            cf.assign_statement(CONDITION_VAR, statement.test))
        body_block = self._new_block()
        after = self._new_block()
        header.terminator = BranchTerminator(
            true_target=body_block.block_id,
            false_target=after.block_id)
        self._loop_stack.append((header, after))
        body_end = self._lower(list(statement.body), body_block)
        self._loop_stack.pop()
        if body_end is not None:
            body_end.terminator = JumpTerminator(target=header.block_id)
        return after

    def _lower_for(self, statement: ast.For,
                   current: FunctionBlock) -> FunctionBlock:
        loop_id = self._loop_counter
        self._loop_counter += 1
        current.statements.extend(
            cf.loop_init_statements(loop_id, statement.iter))
        header = self._new_block()
        current.terminator = JumpTerminator(target=header.block_id)
        header.statements.append(
            cf.assign_statement(CONDITION_VAR, cf.loop_condition(loop_id)))
        body_block = self._new_block()
        after = self._new_block()
        header.terminator = BranchTerminator(
            true_target=body_block.block_id,
            false_target=after.block_id)
        body_block.statements.extend(
            cf.loop_bind_statements(loop_id, statement.target))
        self._loop_stack.append((header, after))
        body_end = self._lower(list(statement.body), body_block)
        self._loop_stack.pop()
        if body_end is not None:
            body_end.terminator = JumpTerminator(target=header.block_id)
        return after

    # -- returns -----------------------------------------------------------
    def _finish_return(self, block: FunctionBlock, value: ast.expr) -> None:
        block.statements.append(cf.assign_statement(RETURN_VALUE_VAR, value))
        block.terminator = ReturnTerminator()

    # -- cleanup -----------------------------------------------------------
    def _prune_and_rename(self) -> None:
        """Collapse empty jump-only blocks, drop unreachable ones, and give
        survivors the paper-style names ``<method>_<i>``."""
        by_id = {block.block_id: block for block in self._blocks}

        def resolve(block_id: str, seen: frozenset[str] = frozenset()) -> str:
            block = by_id[block_id]
            if (not block.statements
                    and isinstance(block.terminator, JumpTerminator)
                    and block_id not in seen):
                return resolve(block.terminator.target, seen | {block_id})
            return block_id

        entry_id = resolve(self._blocks[0].block_id)
        # Rewrite all terminator targets through the resolution map.
        for block in self._blocks:
            terminator = block.terminator
            if isinstance(terminator, JumpTerminator):
                terminator.target = resolve(terminator.target)
            elif isinstance(terminator, BranchTerminator):
                terminator.true_target = resolve(terminator.true_target)
                terminator.false_target = resolve(terminator.false_target)
            elif isinstance(terminator, (InvokeTerminator, ConstructTerminator)):
                terminator.continuation = resolve(terminator.continuation)
        # Keep only blocks reachable from the (resolved) entry.
        reachable: list[FunctionBlock] = []
        seen: set[str] = set()
        stack = [entry_id]
        while stack:
            block_id = stack.pop()
            if block_id in seen:
                continue
            seen.add(block_id)
            block = by_id[block_id]
            reachable.append(block)
            terminator = block.terminator
            if isinstance(terminator, JumpTerminator):
                stack.append(terminator.target)
            elif isinstance(terminator, BranchTerminator):
                stack.append(terminator.true_target)
                stack.append(terminator.false_target)
            elif isinstance(terminator, (InvokeTerminator, ConstructTerminator)):
                stack.append(terminator.continuation)
        # Stable order: creation order of reachable blocks, entry first.
        ordered = [b for b in self._blocks if b.block_id in seen]
        ordered.remove(by_id[entry_id])
        ordered.insert(0, by_id[entry_id])
        rename = {block.block_id: f"{self._method_name}_{index}"
                  for index, block in enumerate(ordered)}
        for block in ordered:
            block.block_id = rename[block.block_id]
            terminator = block.terminator
            if isinstance(terminator, JumpTerminator):
                terminator.target = rename[terminator.target]
            elif isinstance(terminator, BranchTerminator):
                terminator.true_target = rename[terminator.true_target]
                terminator.false_target = rename[terminator.false_target]
            elif isinstance(terminator, (InvokeTerminator, ConstructTerminator)):
                terminator.continuation = rename[terminator.continuation]
        self._blocks = ordered


def _contains_loose_escape(statements: list[ast.stmt]) -> bool:
    """True if *statements* contain a break/continue that escapes to an
    enclosing loop (i.e. not captured by a loop nested inside them)."""
    for statement in statements:
        if isinstance(statement, (ast.Break, ast.Continue)):
            return True
        if isinstance(statement, ast.If):
            if _contains_loose_escape(statement.body + statement.orelse):
                return True
    return False


def split_method(descriptor: EntityDescriptor, method_name: str,
                 entities: dict[str, EntityDescriptor],
                 split_methods: set[tuple[str, str]],
                 *, split_all_control_flow: bool = False) -> SplitResult:
    """Split one method of *descriptor* into function blocks."""
    splitter = MethodSplitter(descriptor, method_name, entities,
                              split_methods,
                              split_all_control_flow=split_all_control_flow)
    return splitter.split()
