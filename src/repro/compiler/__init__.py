"""Compiler pipeline: stateful entities -> stateful dataflow IR.

The pipeline (paper Section 2) is exposed through
:func:`compile_program`; the individual passes are importable for tests,
tooling, and the compiler-explorer example.
"""

from .analysis import analyze_class, parse_class_ast
from .blocks import (
    BranchTerminator,
    ConstructTerminator,
    FunctionBlock,
    InvokeTerminator,
    JumpTerminator,
    ReturnTerminator,
    def_use,
)
from .callgraph import CallGraph, CallSite, build_call_graph
from .codegen import (
    CompiledBlock,
    CompiledEntity,
    CompiledMethod,
    StepOutcome,
    compile_entity,
    materialize_class,
)
from .normalize import Normalizer, RemoteCallDetector
from .pipeline import (
    CompiledProgram,
    compile_descriptors,
    compile_program,
    recompile_from_ir,
)
from .splitting import MethodSplitter, SplitResult, split_method
from .state_machine import StateMachine, StateNode
from .tailcalls import eliminate_tail_calls
from .validation import validate_program

__all__ = [
    "BranchTerminator",
    "CallGraph",
    "CallSite",
    "CompiledBlock",
    "CompiledEntity",
    "CompiledMethod",
    "CompiledProgram",
    "ConstructTerminator",
    "FunctionBlock",
    "InvokeTerminator",
    "JumpTerminator",
    "MethodSplitter",
    "Normalizer",
    "RemoteCallDetector",
    "ReturnTerminator",
    "SplitResult",
    "StateMachine",
    "StateNode",
    "StepOutcome",
    "analyze_class",
    "build_call_graph",
    "compile_descriptors",
    "compile_entity",
    "compile_program",
    "def_use",
    "eliminate_tail_calls",
    "materialize_class",
    "parse_class_ast",
    "recompile_from_ir",
    "split_method",
    "validate_program",
]
