"""Second static-analysis pass: the inter-entity function call graph.

"In the second round of analysis, classes that interact with each other are
identified in order to create a function call graph" (Section 2.1).  For
every method we determine which local names are entity-typed (parameters,
entity-typed state attributes, annotated locals, constructor results), then
find every call through such a name.  The resulting graph:

- tells the splitter which calls are *remote* and therefore split points;
- is checked for cycles, because unbounded recursion cannot be unrolled
  into a finite state machine (Sections 2.2 and 5) and is rejected;
- yields the set of methods that *need splitting* — those that perform any
  remote interaction, directly or through same-entity helper methods.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..core.descriptors import EntityDescriptor
from ..core.errors import RecursionNotSupportedError
from ..core.types import TypeEnvironment, annotation_name


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call from ``caller_entity.caller_method`` to
    ``callee_entity.callee_method`` found at *lineno*."""

    caller_entity: str
    caller_method: str
    callee_entity: str
    callee_method: str
    lineno: int
    is_self_call: bool = False
    is_constructor: bool = False


@dataclass(slots=True)
class CallGraph:
    """Function call graph across all analysed entities."""

    entities: dict[str, EntityDescriptor]
    sites: list[CallSite] = field(default_factory=list)

    def edges(self) -> set[tuple[str, str]]:
        """Method-level edges as ``Entity.method`` name pairs."""
        return {(f"{s.caller_entity}.{s.caller_method}",
                 f"{s.callee_entity}.{s.callee_method}") for s in self.sites}

    def callees_of(self, entity: str, method: str) -> list[CallSite]:
        return [s for s in self.sites
                if s.caller_entity == entity and s.caller_method == method]

    def interacting_entities(self) -> set[tuple[str, str]]:
        """Entity-level edges (caller entity, callee entity)."""
        return {(s.caller_entity, s.callee_entity) for s in self.sites
                if not s.is_self_call}

    def check_no_recursion(self) -> None:
        """Raise :class:`RecursionNotSupportedError` on any call cycle."""
        adjacency: dict[str, set[str]] = {}
        for caller, callee in self.edges():
            adjacency.setdefault(caller, set()).add(callee)
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[str, int] = {}

        def visit(node: str, path: list[str]) -> None:
            color[node] = GREY
            path.append(node)
            for nxt in adjacency.get(node, ()):
                if color.get(nxt, WHITE) == GREY:
                    cycle = path[path.index(nxt):] + [nxt]
                    raise RecursionNotSupportedError(
                        "recursive call chain detected: "
                        + " -> ".join(cycle)
                        + "; recursion would unroll into an infinite state "
                        "machine and is not supported")
                if color.get(nxt, WHITE) == WHITE:
                    visit(nxt, path)
            path.pop()
            color[node] = BLACK

        for node in list(adjacency):
            if color.get(node, WHITE) == WHITE:
                visit(node, [])

    def methods_needing_split(self) -> set[tuple[str, str]]:
        """Methods with remote interaction, directly or transitively
        through same-entity helper calls."""
        needs: set[tuple[str, str]] = set()
        for site in self.sites:
            if not site.is_self_call:
                needs.add((site.caller_entity, site.caller_method))
        # Propagate through self-calls: a method calling a local helper
        # that needs splitting also needs splitting (the helper call
        # becomes an invoke on the same operator).
        changed = True
        while changed:
            changed = False
            for site in self.sites:
                caller = (site.caller_entity, site.caller_method)
                callee = (site.callee_entity, site.callee_method)
                if site.is_self_call and callee in needs and caller not in needs:
                    needs.add(caller)
                    changed = True
        return needs


def build_type_environment(descriptor: EntityDescriptor, method_name: str,
                           entity_names: frozenset[str]) -> TypeEnvironment:
    """Seed a method's type environment with entity-typed parameters."""
    env = TypeEnvironment(entity_names)
    method = descriptor.methods[method_name]
    for param in method.params:
        env.bind(param.name, param.type_name)
    return env


def entity_typed_state(descriptor: EntityDescriptor,
                       entity_names: frozenset[str]) -> dict[str, str]:
    """State attributes of *descriptor* that hold entity references."""
    return {f.name: f.type_name for f in descriptor.state
            if f.type_name in entity_names}


class _CallCollector(ast.NodeVisitor):
    """Walks one method body, tracking entity-typed locals and recording
    call sites through them."""

    def __init__(self, descriptor: EntityDescriptor, method_name: str,
                 entities: dict[str, EntityDescriptor]):
        self._descriptor = descriptor
        self._method_name = method_name
        self._entities = entities
        names = frozenset(entities)
        self._env = build_type_environment(descriptor, method_name, names)
        self._state_refs = entity_typed_state(descriptor, names)
        self.sites: list[CallSite] = []

    # -- type-environment maintenance ------------------------------------
    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            self._env.bind(node.target.id, annotation_name(node.annotation))

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            target = node.targets[0].id
            value_type = self._infer(node.value)
            self._env.bind(target, value_type)

    def _infer(self, expr: ast.expr) -> str | None:
        """Shallow type inference: constructor calls and aliases."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in self._entities:
                return expr.func.id
        if isinstance(expr, ast.Name):
            return self._env.entity_type_of(expr.id)
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"):
            return self._state_refs.get(expr.attr)
        return None

    # -- call detection ----------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._entities:
            # Constructor call: Item("apple", 5)
            self.sites.append(CallSite(
                caller_entity=self._descriptor.name,
                caller_method=self._method_name,
                callee_entity=func.id,
                callee_method="__init__",
                lineno=node.lineno,
                is_constructor=True,
            ))
            return
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self":
                if func.attr in self._descriptor.methods:
                    self.sites.append(CallSite(
                        caller_entity=self._descriptor.name,
                        caller_method=self._method_name,
                        callee_entity=self._descriptor.name,
                        callee_method=func.attr,
                        lineno=node.lineno,
                        is_self_call=True,
                    ))
                return
            entity_type = self._env.entity_type_of(receiver.id)
            if entity_type is not None:
                self.sites.append(CallSite(
                    caller_entity=self._descriptor.name,
                    caller_method=self._method_name,
                    callee_entity=entity_type,
                    callee_method=func.attr,
                    lineno=node.lineno,
                ))
            return
        if (isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"):
            entity_type = self._state_refs.get(receiver.attr)
            if entity_type is not None:
                self.sites.append(CallSite(
                    caller_entity=self._descriptor.name,
                    caller_method=self._method_name,
                    callee_entity=entity_type,
                    callee_method=func.attr,
                    lineno=node.lineno,
                ))

    # Nested defs would capture a different scope; forbidden elsewhere, so
    # do not descend into them here.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # pragma: no cover
        return

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return


def build_call_graph(entities: dict[str, EntityDescriptor]) -> CallGraph:
    """Run the second analysis pass over every method of every entity."""
    graph = CallGraph(entities=entities)
    for descriptor in entities.values():
        for method_name, method in descriptor.methods.items():
            if method.source_ast is None:
                continue
            collector = _CallCollector(descriptor, method_name, entities)
            for statement in method.source_ast.body:
                collector.visit(statement)
            graph.sites.extend(collector.sites)
            method.calls = [(s.callee_entity, s.callee_method)
                            for s in collector.sites]
            method.entity_params = {
                p.name: p.type_name for p in method.params
                if p.type_name in entities}
    return graph
