"""AST helpers for desugaring control flow during function splitting.

A ``for`` loop over a Python list (the subset the paper supports) is
unrolled into explicit iterator/index bookkeeping so the state machine can
"keep track of the current iteration for loop control structures, by
enriching the state machine with additional state" (Section 2.5).  The
loop counter lives in ordinary compiler temporaries (``_iter_N``/
``_idx_N``) inside the travelling variable store, so a loop suspended at a
remote call resumes at the right iteration.
"""

from __future__ import annotations

import ast

ITER_PREFIX = "_iter_"
INDEX_PREFIX = "_idx_"


def _name(identifier: str, *, store: bool = False) -> ast.Name:
    return ast.Name(id=identifier,
                    ctx=ast.Store() if store else ast.Load())


def loop_init_statements(loop_id: int, iterable: ast.expr) -> list[ast.stmt]:
    """``_iter_N = list(<iterable>); _idx_N = 0``"""
    materialise = ast.Assign(
        targets=[_name(f"{ITER_PREFIX}{loop_id}", store=True)],
        value=ast.Call(func=_name("list"), args=[iterable], keywords=[]))
    reset = ast.Assign(
        targets=[_name(f"{INDEX_PREFIX}{loop_id}", store=True)],
        value=ast.Constant(value=0))
    for node in (materialise, reset):
        ast.fix_missing_locations(node)
    return [materialise, reset]


def loop_condition(loop_id: int) -> ast.expr:
    """``_idx_N < len(_iter_N)``"""
    expr = ast.Compare(
        left=_name(f"{INDEX_PREFIX}{loop_id}"),
        ops=[ast.Lt()],
        comparators=[ast.Call(func=_name("len"),
                              args=[_name(f"{ITER_PREFIX}{loop_id}")],
                              keywords=[])])
    ast.fix_missing_locations(expr)
    return expr


def loop_bind_statements(loop_id: int, target: ast.expr) -> list[ast.stmt]:
    """``<target> = _iter_N[_idx_N]; _idx_N = _idx_N + 1``

    The index is advanced eagerly so ``continue`` can jump straight back
    to the loop header without a separate increment block.
    """
    bind = ast.Assign(
        targets=[target],
        value=ast.Subscript(
            value=_name(f"{ITER_PREFIX}{loop_id}"),
            slice=_name(f"{INDEX_PREFIX}{loop_id}"),
            ctx=ast.Load()))
    advance = ast.Assign(
        targets=[_name(f"{INDEX_PREFIX}{loop_id}", store=True)],
        value=ast.BinOp(left=_name(f"{INDEX_PREFIX}{loop_id}"),
                        op=ast.Add(), right=ast.Constant(value=1)))
    for node in (bind, advance):
        ast.fix_missing_locations(node)
    return [bind, advance]


def assign_statement(name: str, value: ast.expr) -> ast.stmt:
    """``<name> = <value>`` with locations fixed (payload assignments)."""
    node = ast.Assign(targets=[_name(name, store=True)], value=value)
    ast.fix_missing_locations(node)
    return node


def tuple_expression(items: list[ast.expr]) -> ast.expr:
    node = ast.Tuple(elts=items, ctx=ast.Load())
    ast.fix_missing_locations(node)
    return node
