"""Function blocks: the unit a split method is divided into.

Section 2.4 of the paper splits an imperative method into multiple function
definitions — ``buy_item`` becomes ``buy_item_0``, ``buy_item_1``, ... Each
block here carries its statements (as AST), the variables it reads and
defines (the paper: "each function that was split takes as arguments the
variables it references in its body and returns the variables it defines"),
and exactly one *terminator* describing how control leaves the block:

- :class:`ReturnTerminator` — the method completes with a value;
- :class:`JumpTerminator` — unconditional local transition;
- :class:`BranchTerminator` — conditional transition (if / loop headers);
- :class:`InvokeTerminator` — a remote call to another entity's method; the
  event leaves this operator and the continuation resumes when the callee's
  return value flows back;
- :class:`ConstructTerminator` — remote creation of a new entity instance.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Any, Union

#: Names used to pass terminator payloads out of a block's execution.
RETURN_VALUE_VAR = "__ret__"
CONDITION_VAR = "__cond__"
CALL_ARGS_VAR = "__call_args__"
CALL_TARGET_VAR = "__call_target__"

#: Local-variable names dropped from the travelling variable store after a
#: block executes (payloads and the reconstructed instance).
INTERNAL_NAMES = frozenset({
    RETURN_VALUE_VAR, CONDITION_VAR, CALL_ARGS_VAR, CALL_TARGET_VAR,
    "self", "__builtins__", "__block__", "__outcome__",
})

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass(slots=True)
class ReturnTerminator:
    """Block ends the method; the block code assigned ``__ret__``."""

    kind: str = field(default="return", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind}


@dataclass(slots=True)
class JumpTerminator:
    """Unconditional transition to *target* (stays on this operator)."""

    target: str
    kind: str = field(default="jump", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "target": self.target}


@dataclass(slots=True)
class BranchTerminator:
    """Conditional transition; the block code assigned ``__cond__``."""

    true_target: str
    false_target: str
    kind: str = field(default="branch", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "true_target": self.true_target,
                "false_target": self.false_target}


@dataclass(slots=True)
class InvokeTerminator:
    """Remote method call; block code assigned ``__call_target__`` (an
    :class:`~repro.core.refs.EntityRef`) and ``__call_args__`` (a tuple).

    ``continuation`` is the block that resumes once the callee returns;
    ``result_var`` is the caller-local variable bound to the return value
    (``None`` when the result is discarded).
    """

    entity_type: str
    method: str
    receiver: str
    continuation: str
    result_var: str | None = None
    is_self_call: bool = False
    kind: str = field(default="invoke", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "entity_type": self.entity_type,
                "method": self.method, "receiver": self.receiver,
                "continuation": self.continuation,
                "result_var": self.result_var,
                "is_self_call": self.is_self_call}


@dataclass(slots=True)
class ConstructTerminator:
    """Remote entity construction (``item = Item("x", 5)`` inside a
    method); block code assigned ``__call_args__``."""

    entity_type: str
    continuation: str
    result_var: str | None = None
    kind: str = field(default="construct", init=False)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "entity_type": self.entity_type,
                "continuation": self.continuation,
                "result_var": self.result_var}


Terminator = Union[ReturnTerminator, JumpTerminator, BranchTerminator,
                   InvokeTerminator, ConstructTerminator]


def terminator_from_dict(data: dict[str, Any]) -> Terminator:
    """Rebuild a terminator from its :meth:`to_dict` form."""
    kind = data["kind"]
    if kind == "return":
        return ReturnTerminator()
    if kind == "jump":
        return JumpTerminator(target=data["target"])
    if kind == "branch":
        return BranchTerminator(true_target=data["true_target"],
                                false_target=data["false_target"])
    if kind == "invoke":
        return InvokeTerminator(entity_type=data["entity_type"],
                                method=data["method"],
                                receiver=data["receiver"],
                                continuation=data["continuation"],
                                result_var=data.get("result_var"),
                                is_self_call=data.get("is_self_call", False))
    if kind == "construct":
        return ConstructTerminator(entity_type=data["entity_type"],
                                   continuation=data["continuation"],
                                   result_var=data.get("result_var"))
    raise ValueError(f"unknown terminator kind {kind!r}")


@dataclass(slots=True, eq=False)
class FunctionBlock:
    """One split piece of a method (e.g. ``buy_item_0``)."""

    block_id: str
    statements: list[ast.stmt]
    terminator: Terminator | None = None
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()

    def source(self) -> str:
        """Python source of the block's statements (for docs/debugging)."""
        module = ast.Module(body=list(self.statements), type_ignores=[])
        return ast.unparse(module)

    def analyze_dataflow(self) -> None:
        """Populate ``reads``/``writes`` with the block's def/use sets."""
        self.reads, self.writes = def_use(self.statements)

    def to_dict(self) -> dict[str, Any]:
        assert self.terminator is not None
        return {
            "block_id": self.block_id,
            "source": self.source(),
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "terminator": self.terminator.to_dict(),
        }


class _DefUseVisitor(ast.NodeVisitor):
    """Computes which names a statement list reads before defining, and
    which it defines, in source order."""

    def __init__(self) -> None:
        self.defined: set[str] = set()
        self.read_first: set[str] = set()

    def _load(self, name: str) -> None:
        if name not in self.defined and name not in _BUILTIN_NAMES:
            self.read_first.add(name)

    def _store(self, name: str) -> None:
        self.defined.add(name)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._load(node.id)
        elif isinstance(node.ctx, (ast.Store, ast.Del)):
            self._store(node.id)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # x += 1 both reads and writes x.
        self.visit(node.value)
        if isinstance(node.target, ast.Name):
            self._load(node.target.id)
            self._store(node.target.id)
        else:
            self.visit(node.target)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        self.visit(node.target)
        # The annotation itself is not a runtime read.

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self.visit(node.iter)
        self.visit(node.target)
        for cond in node.ifs:
            self.visit(cond)


def def_use(statements: list[ast.stmt]) -> tuple[frozenset[str], frozenset[str]]:
    """Return ``(reads, writes)`` for a statement list.

    *reads* are names loaded before any local definition (the block's
    inputs); *writes* are names the block defines (its outputs).  ``self``
    is excluded from both: the instance is reconstructed by the runtime.
    """
    visitor = _DefUseVisitor()
    for statement in statements:
        visitor.visit(statement)
    reads = frozenset(visitor.read_first) - {"self"}
    writes = frozenset(visitor.defined) - {"self"}
    return reads, writes
