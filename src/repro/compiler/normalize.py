"""Normalization: hoist remote calls out of arbitrary expressions.

The splitter (Section 2.4) wants remote calls to appear only as standalone
statements of the form ``x = item.update_stock(amount)``.  Programmers,
however, write ``total = amount * item.price()`` — the remote call buried
inside an expression.  This pass rewrites every statement so that each
remote call is evaluated into a fresh compiler temporary (``_t0``, ``_t1``,
...) immediately before the statement that uses it, preserving Python's
left-to-right evaluation order::

    total_price: int = amount * item.price()
        ==>
    _t0 = item.price()
    total_price = amount * _t0

``while`` conditions containing remote calls are desugared into
``while True: ...; if not cond: break`` so the condition is re-evaluated
(and its remote calls re-issued) on every iteration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..core.descriptors import EntityDescriptor
from ..core.errors import UnsupportedConstructError
from ..core.types import TypeEnvironment, annotation_name
from .callgraph import build_type_environment, entity_typed_state

TEMP_PREFIX = "_t"


@dataclass(frozen=True, slots=True)
class RemoteCall:
    """A detected remote interaction inside an expression."""

    entity_type: str
    method: str
    receiver: ast.expr | None  # None for constructor calls
    node: ast.Call
    is_constructor: bool = False
    is_self_call: bool = False


class RemoteCallDetector:
    """Decides whether a ``Call`` node is a remote entity interaction,
    given the evolving type environment of the enclosing method."""

    def __init__(self, descriptor: EntityDescriptor, method_name: str,
                 entities: dict[str, EntityDescriptor],
                 split_methods: set[tuple[str, str]]):
        self._descriptor = descriptor
        self._entities = entities
        self._split_methods = split_methods
        names = frozenset(entities)
        self.env = build_type_environment(descriptor, method_name, names)
        self._state_refs = entity_typed_state(descriptor, names)

    @property
    def entities(self) -> dict[str, EntityDescriptor]:
        return self._entities

    def classify(self, node: ast.Call) -> RemoteCall | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in self._entities:
                return RemoteCall(entity_type=func.id, method="__init__",
                                  receiver=None, node=node,
                                  is_constructor=True)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self":
                callee = (self._descriptor.name, func.attr)
                if callee in self._split_methods:
                    return RemoteCall(entity_type=self._descriptor.name,
                                      method=func.attr, receiver=receiver,
                                      node=node, is_self_call=True)
                return None
            entity_type = self.env.entity_type_of(receiver.id)
            if entity_type is not None:
                return RemoteCall(entity_type=entity_type, method=func.attr,
                                  receiver=receiver, node=node)
            return None
        if (isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"):
            entity_type = self._state_refs.get(receiver.attr)
            if entity_type is not None:
                return RemoteCall(entity_type=entity_type, method=func.attr,
                                  receiver=receiver, node=node)
        return None

    def observe_assignment(self, target: str, value: ast.expr,
                           annotation: ast.expr | None = None) -> None:
        """Keep the type environment current while scanning statements."""
        if annotation is not None:
            self.env.bind(target, annotation_name(annotation))
            return
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id in self._entities:
                self.env.bind(target, value.func.id)
                return
        if isinstance(value, ast.Name):
            alias = self.env.entity_type_of(value.id)
            self.env.bind(target, alias)
            return
        self.env.bind(target, None)


def contains_remote_call(statements: list[ast.stmt],
                         detector: RemoteCallDetector) -> bool:
    """True if any statement (recursively) performs a remote interaction.

    Uses a snapshot of the detector's environment; bindings created inside
    *statements* are tracked locally so nested constructor results count.
    """
    probe = _EnvProbe(detector)
    for statement in statements:
        if probe.scan(statement):
            return True
    return False


class _EnvProbe:
    """Read-only remote-call scan with a private copy of the env."""

    def __init__(self, detector: RemoteCallDetector):
        self._detector = detector
        self._saved_env = detector.env

    def scan(self, statement: ast.stmt) -> bool:
        detector = self._detector
        original = detector.env
        detector.env = original.copy()
        try:
            return self._scan_stmt(statement)
        finally:
            detector.env = original

    def _scan_stmt(self, statement: ast.stmt) -> bool:
        found = False
        for node in ast.walk(statement):
            if isinstance(node, ast.Call):
                if self._detector.classify(node) is not None:
                    found = True
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._detector.observe_assignment(target.id, node.value)
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.value is not None:
                    self._detector.observe_assignment(
                        node.target.id, node.value, node.annotation)
        return found


class Normalizer:
    """Rewrites one method body into remote-call-normal form."""

    def __init__(self, descriptor: EntityDescriptor, method_name: str,
                 entities: dict[str, EntityDescriptor],
                 split_methods: set[tuple[str, str]]):
        self._entity_name = descriptor.name
        self._method_name = method_name
        self.detector = RemoteCallDetector(descriptor, method_name, entities,
                                           split_methods)
        self._counter = 0

    # -- public entry -----------------------------------------------------
    def normalize_body(self, statements: list[ast.stmt]) -> list[ast.stmt]:
        result: list[ast.stmt] = []
        for statement in statements:
            result.extend(self._normalize_stmt(statement))
        return result

    # -- helpers -----------------------------------------------------------
    def _fresh_temp(self) -> str:
        name = f"{TEMP_PREFIX}{self._counter}"
        self._counter += 1
        return name

    def _error(self, message: str, node: ast.AST) -> UnsupportedConstructError:
        return UnsupportedConstructError(
            message, entity=self._entity_name, method=self._method_name,
            lineno=getattr(node, "lineno", None))

    def _has_remote(self, expr: ast.expr) -> bool:
        return any(isinstance(node, ast.Call)
                   and self.detector.classify(node) is not None
                   for node in ast.walk(expr))

    # -- expression hoisting -------------------------------------------------
    def _hoist(self, expr: ast.expr, *, keep_top: bool = False,
               ) -> tuple[list[ast.stmt], ast.expr]:
        """Extract remote calls from *expr*; returns (pre-statements,
        rewritten expression).  With ``keep_top`` a remote call at the very
        top of the expression is left in place (the splitter handles it)."""
        if not self._has_remote(expr):
            return [], expr

        # Constructs where hoisting would change evaluation semantics.
        if isinstance(expr, ast.BoolOp):
            pre, first = self._hoist(expr.values[0])
            for operand in expr.values[1:]:
                if self._has_remote(operand):
                    raise self._error(
                        "remote calls in short-circuit positions of "
                        "and/or are not supported; assign the call result "
                        "to a variable first", operand)
            return pre, ast.copy_location(
                ast.BoolOp(op=expr.op, values=[first] + expr.values[1:]), expr)
        if isinstance(expr, ast.IfExp):
            raise self._error(
                "remote calls inside conditional expressions are not "
                "supported; use an if statement", expr)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            raise self._error(
                "remote calls inside comprehensions are not supported; "
                "use an explicit for loop", expr)
        if isinstance(expr, ast.Lambda):
            raise self._error(
                "remote calls inside lambda are not supported", expr)

        if isinstance(expr, ast.Call):
            pre: list[ast.stmt] = []
            func = expr.func
            if isinstance(func, ast.Attribute) and self._has_remote(func.value):
                # Chained remote receivers: a.f().g() — evaluate a.f()
                # into a temp first, then call .g() on the temp.
                recv_pre, new_receiver = self._hoist(func.value)
                pre.extend(recv_pre)
                func = ast.copy_location(ast.Attribute(
                    value=new_receiver, attr=func.attr, ctx=func.ctx), func)
                expr = ast.copy_location(ast.Call(
                    func=func, args=expr.args, keywords=expr.keywords), expr)
                ast.fix_missing_locations(expr)
            classified = self.detector.classify(expr)
            new_args: list[ast.expr] = []
            for arg in expr.args:
                arg_pre, new_arg = self._hoist(arg)
                pre.extend(arg_pre)
                new_args.append(new_arg)
            new_keywords: list[ast.keyword] = []
            for keyword in expr.keywords:
                kw_pre, new_value = self._hoist(keyword.value)
                pre.extend(kw_pre)
                new_keywords.append(ast.keyword(arg=keyword.arg,
                                                value=new_value))
            if classified is not None and new_keywords:
                raise self._error(
                    "keyword arguments on remote calls are not supported",
                    expr)
            new_call = ast.copy_location(
                ast.Call(func=expr.func, args=new_args,
                         keywords=new_keywords), expr)
            if classified is None:
                return pre, new_call
            if keep_top:
                return pre, new_call
            temp = self._fresh_temp()
            self._bind_call_result(temp, classified)
            assign = ast.copy_location(ast.Assign(
                targets=[ast.Name(id=temp, ctx=ast.Store())],
                value=new_call), expr)
            ast.fix_missing_locations(assign)
            return pre + [assign], ast.copy_location(
                ast.Name(id=temp, ctx=ast.Load()), expr)

        # Generic recursion over child expressions, preserving order.
        pre: list[ast.stmt] = []

        def rewrite(child: ast.expr) -> ast.expr:
            child_pre, new_child = self._hoist(child)
            pre.extend(child_pre)
            return new_child

        new_expr = _map_child_exprs(expr, rewrite)
        return pre, new_expr

    def _bind_call_result(self, name: str, call: RemoteCall) -> None:
        """Bind *name* to the callee's return type so chained remote
        interactions through returned entity refs stay detectable."""
        if call.is_constructor:
            self.detector.env.bind(name, call.entity_type)
            return
        descriptor = self.detector.entities.get(call.entity_type)
        return_type = None
        if descriptor is not None and call.method in descriptor.methods:
            return_type = descriptor.methods[call.method].return_type
        self.detector.env.bind(name, return_type)

    # -- statement normalization ----------------------------------------------
    def _normalize_stmt(self, statement: ast.stmt) -> list[ast.stmt]:
        if isinstance(statement, ast.Assign):
            if len(statement.targets) != 1:
                if self._has_remote(statement.value):
                    raise self._error(
                        "chained assignment of a remote call result is not "
                        "supported", statement)
                return [statement]
            target = statement.targets[0]
            pre, value = self._hoist(
                statement.value,
                keep_top=isinstance(target, ast.Name))
            statement = ast.copy_location(
                ast.Assign(targets=statement.targets, value=value), statement)
            ast.fix_missing_locations(statement)
            if isinstance(target, ast.Name):
                self.detector.observe_assignment(target.id, value)
            return pre + [statement]

        if isinstance(statement, ast.AnnAssign):
            if statement.value is None:
                return [statement]
            keep = isinstance(statement.target, ast.Name)
            pre, value = self._hoist(statement.value, keep_top=keep)
            if isinstance(statement.target, ast.Name):
                self.detector.observe_assignment(
                    statement.target.id, value, statement.annotation)
            # Keep the AnnAssign so the splitter re-observes the
            # annotation; codegen downgrades it to a plain assignment.
            new_stmt: ast.stmt = ast.copy_location(ast.AnnAssign(
                target=statement.target, annotation=statement.annotation,
                value=value, simple=statement.simple), statement)
            ast.fix_missing_locations(new_stmt)
            return pre + [new_stmt]

        if isinstance(statement, ast.AugAssign):
            pre, value = self._hoist(statement.value)
            new_stmt = ast.copy_location(ast.AugAssign(
                target=statement.target, op=statement.op, value=value),
                statement)
            ast.fix_missing_locations(new_stmt)
            return pre + [new_stmt]

        if isinstance(statement, ast.Expr):
            pre, value = self._hoist(statement.value, keep_top=True)
            new_stmt = ast.copy_location(ast.Expr(value=value), statement)
            ast.fix_missing_locations(new_stmt)
            return pre + [new_stmt]

        if isinstance(statement, ast.Return):
            if statement.value is None:
                return [statement]
            pre, value = self._hoist(statement.value)
            new_stmt = ast.copy_location(ast.Return(value=value), statement)
            ast.fix_missing_locations(new_stmt)
            return pre + [new_stmt]

        if isinstance(statement, ast.If):
            pre, test = self._hoist(statement.test)
            new_if = ast.copy_location(ast.If(
                test=test,
                body=self.normalize_body(statement.body),
                orelse=self.normalize_body(statement.orelse)), statement)
            ast.fix_missing_locations(new_if)
            return pre + [new_if]

        if isinstance(statement, ast.While):
            body = self.normalize_body(statement.body)
            if statement.orelse:
                raise self._error("while/else is not supported", statement)
            if self._has_remote(statement.test):
                # Re-evaluate the (remote) condition each iteration.
                pre, test = self._hoist(statement.test)
                breaker = ast.If(
                    test=ast.UnaryOp(op=ast.Not(), operand=test),
                    body=[ast.Break()], orelse=[])
                new_while = ast.While(
                    test=ast.Constant(value=True),
                    body=pre + [breaker] + body, orelse=[])
                new_while = ast.copy_location(new_while, statement)
                ast.fix_missing_locations(new_while)
                return [new_while]
            new_while = ast.copy_location(ast.While(
                test=statement.test, body=body, orelse=[]), statement)
            ast.fix_missing_locations(new_while)
            return [new_while]

        if isinstance(statement, ast.For):
            if statement.orelse:
                raise self._error("for/else is not supported", statement)
            pre, iterable = self._hoist(statement.iter)
            new_for = ast.copy_location(ast.For(
                target=statement.target, iter=iterable,
                body=self.normalize_body(statement.body), orelse=[]),
                statement)
            ast.fix_missing_locations(new_for)
            return pre + [new_for]

        if isinstance(statement, (ast.Break, ast.Continue, ast.Pass)):
            return [statement]

        if isinstance(statement, (ast.Assert, ast.Raise)):
            if any(self._has_remote(child)
                   for child in ast.walk(statement)
                   if isinstance(child, ast.expr)):
                raise self._error(
                    "remote calls inside assert/raise are not supported",
                    statement)
            return [statement]

        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            raise self._error(
                "nested function/class definitions are not supported in "
                "entity methods", statement)

        if isinstance(statement, (ast.Try, ast.With, ast.Match)):
            for node in ast.walk(statement):
                if (isinstance(node, ast.Call)
                        and self.detector.classify(node) is not None):
                    raise self._error(
                        f"remote calls inside {type(statement).__name__.lower()} "
                        "blocks are not supported", statement)
            return [statement]

        if isinstance(statement, (ast.Global, ast.Nonlocal)):
            raise self._error(
                "global/nonlocal are not supported in entity methods",
                statement)

        return [statement]


def _map_child_exprs(expr: ast.expr, fn) -> ast.expr:
    """Shallow-copy *expr* applying *fn* to each direct child expression
    (in evaluation order, which matches field order for Python ASTs)."""
    new_expr = ast.copy_location(type(expr)(**{
        name: _map_field(value, fn)
        for name, value in ast.iter_fields(expr)
    }), expr)
    ast.fix_missing_locations(new_expr)
    return new_expr


def _map_field(value, fn):
    if isinstance(value, ast.expr):
        return fn(value)
    if isinstance(value, list):
        return [_map_field(item, fn) for item in value]
    return value
