"""Tail-call elimination: recursion -> loops (paper Section 5).

"From a compiler perspective, since a program can be CPS-transformed,
recursion can be translated into loops via tail-call elimination [8]."
The state machine cannot unroll unbounded recursion, but a method whose
*only* self-recursion is in tail position is equivalent to a loop::

    def countdown(self, n: int) -> int:
        if n <= 0:
            return 0
        return self.countdown(n - 1)

becomes::

    def countdown(self, n: int) -> int:
        while True:
            if n <= 0:
                return 0
            (n,) = (n - 1,)
            continue
            return None  # fall-through of the original body

after which splitting proceeds normally (and the loop may still contain
remote calls, which split as usual).  Methods with non-tail recursion are
left untouched and still rejected by the recursion check.
"""

from __future__ import annotations

import ast

from ..core.descriptors import EntityDescriptor


def _is_self_tail_call(node: ast.Return, method_name: str) -> bool:
    call = node.value
    return (isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == method_name
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self")


class _TailCallScanner(ast.NodeVisitor):
    """Finds self tail calls and whether any sits inside a nested loop
    (where ``continue`` would target the wrong loop)."""

    def __init__(self, method_name: str):
        self.method_name = method_name
        self.tail_calls = 0
        self.tail_call_in_loop = False
        self.non_tail_self_calls = 0
        self._loop_depth = 0
        self._return_values: set[int] = set()

    def visit_Return(self, node: ast.Return) -> None:
        if _is_self_tail_call(node, self.method_name):
            self.tail_calls += 1
            if self._loop_depth > 0:
                self.tail_call_in_loop = True
            # Do not descend: the call in tail position is accounted for.
            return
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr == self.method_name
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            self.non_tail_self_calls += 1
        self.generic_visit(node)


class _TailCallRewriter(ast.NodeTransformer):
    """Replaces ``return self.m(a, b)`` with rebinding + continue."""

    def __init__(self, method_name: str, param_names: list[str]):
        self.method_name = method_name
        self.param_names = param_names

    def visit_Return(self, node: ast.Return) -> list[ast.stmt] | ast.Return:
        if not _is_self_tail_call(node, self.method_name):
            return node
        call = node.value
        assert isinstance(call, ast.Call)
        if len(call.args) != len(self.param_names) or call.keywords:
            return node  # arity mismatch: leave for the recursion check
        rebind = ast.Assign(
            targets=[ast.Tuple(
                elts=[ast.Name(id=name, ctx=ast.Store())
                      for name in self.param_names],
                ctx=ast.Store())],
            value=ast.Tuple(elts=list(call.args), ctx=ast.Load()))
        statements: list[ast.stmt] = [rebind, ast.Continue()]
        for statement in statements:
            ast.copy_location(statement, node)
            ast.fix_missing_locations(statement)
        return statements

    # Nested scopes are rejected elsewhere; do not rewrite inside loops
    # (the scanner already vetoed such methods).
    def visit_FunctionDef(self, node):  # pragma: no cover - defensive
        return node


def eliminate_tail_calls(descriptor: EntityDescriptor) -> list[str]:
    """Rewrite every purely-tail-recursive method of *descriptor* into a
    loop, in place.  Returns the names of the transformed methods."""
    transformed = []
    for method in descriptor.methods.values():
        node = method.source_ast
        if node is None:
            continue
        scanner = _TailCallScanner(method.name)
        for statement in node.body:
            scanner.visit(statement)
        eligible = (scanner.tail_calls > 0
                    and not scanner.tail_call_in_loop
                    and scanner.non_tail_self_calls == 0)
        if not eligible:
            continue
        rewriter = _TailCallRewriter(method.name, method.param_names)
        new_body = [rewriter.visit(statement) for statement in node.body]
        flattened: list[ast.stmt] = []
        for item in new_body:
            if isinstance(item, list):
                flattened.extend(item)
            else:
                flattened.append(item)
        # Fall-through of the original body meant `return None`; inside
        # the loop it must stay a return, not another iteration.
        flattened.append(ast.Return(value=ast.Constant(value=None)))
        loop = ast.While(test=ast.Constant(value=True), body=flattened,
                         orelse=[])
        ast.copy_location(loop, node)
        ast.fix_missing_locations(loop)
        node.body = [loop]
        transformed.append(method.name)
    return transformed
